//! # JBS — JVM-Bypass Shuffling, reproduced in Rust
//!
//! A from-scratch reproduction of *"JVM-Bypass for Efficient Hadoop
//! Shuffling"* (Wang, Xu, Li, Yu — IPDPS 2013): the JBS plug-in shuffle
//! library (MOFSupplier + NetMerger), the stock Hadoop shuffle it is
//! measured against, a miniature Hadoop runtime, calibrated disk/network/
//! JVM models driving a deterministic discrete-event simulator, and a real
//! TCP dataplane that shuffles genuine bytes over loopback.
//!
//! This facade crate re-exports the workspace members under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`des`] | `jbs-des` | DES kernel: time, event queue, RNG, queueing resources, CPU meters, LRU |
//! | [`disk`] | `jbs-disk` | rotating-disk + page-cache model |
//! | [`jvm`] | `jbs-jvm` | JVM overhead model: stream costs, GC |
//! | [`net`] | `jbs-net` | protocol table (Table I), NICs, connection manager |
//! | [`mapred`] | `jbs-mapred` | MOF formats, k-way merge, job simulator |
//! | [`core`] | `jbs-core` | **the paper's contribution**: `JbsShuffle` + `HadoopShuffle` |
//! | [`transport`] | `jbs-transport` | real TCP MOFSupplier/NetMerger over loopback |
//! | [`workloads`] | `jbs-workloads` | Terasort + Tarazu workloads, generators, partitioners |
//! | [`obs`] | `jbs-obs` | structured tracing: spans/instants, ring recorder, `TraceQuery` |
//!
//! ## Quickstart
//!
//! ```
//! use jbs::core::{EngineKind, HadoopShuffle, JbsShuffle};
//! use jbs::mapred::{ClusterConfig, JobSimulator, JobSpec};
//! use jbs::net::Protocol;
//!
//! // Terasort 1 GiB on a small test cluster, stock Hadoop vs JBS.
//! let sim = JobSimulator::new(
//!     ClusterConfig::tiny(Protocol::IpoIb),
//!     JobSpec::terasort(1 << 30),
//! );
//! let hadoop = sim.run(&mut HadoopShuffle::new());
//! let jbs = sim.run(&mut JbsShuffle::new());
//! assert!(jbs.spilled_bytes == 0 && hadoop.bytes_shuffled == jbs.bytes_shuffled);
//! // The full paper testbed is ClusterConfig::paper_testbed(EngineKind::JbsOnRdma.protocol()).
//! # let _ = EngineKind::JbsOnRdma;
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for
//! paper-vs-measured results, and `crates/bench` for the binaries that
//! regenerate every table and figure.

pub use jbs_control as control;
pub use jbs_core as core;
pub use jbs_des as des;
pub use jbs_disk as disk;
pub use jbs_jvm as jvm;
pub use jbs_mapred as mapred;
pub use jbs_net as net;
pub use jbs_obs as obs;
pub use jbs_store_hybrid as store_hybrid;
pub use jbs_transport as transport;
pub use jbs_workloads as workloads;

/// Build the real-dataplane client configuration from a [`core::JbsConfig`]:
/// the same knob block drives both the simulator and the TCP NetMerger
/// (buffer size, connection cap, retry budget, backoff, deadlines).
pub fn transport_client_config(cfg: &core::JbsConfig) -> transport::ClientConfig {
    use std::time::Duration;
    let io_timeout = Duration::from_nanos(cfg.fetch_io_timeout.as_nanos());
    transport::ClientConfig {
        buffer_bytes: cfg.buffer_bytes,
        max_connections: cfg.max_connections,
        // The simulator's read-ahead depth doubles as the pipelining
        // window: buffers in flight per supplier connection.
        window: cfg.prefetch_batch.max(1) as usize,
        retry: transport::RetryPolicy {
            max_retries: cfg.fetch_retry_max,
            base_backoff: Duration::from_nanos(cfg.fetch_backoff_base.as_nanos()),
            max_backoff: Duration::from_nanos(cfg.fetch_backoff_max.as_nanos()),
            ..transport::RetryPolicy::default()
        },
        connect_timeout: io_timeout,
        read_timeout: io_timeout,
        write_timeout: io_timeout,
        checksum: cfg.checksum,
        breaker_threshold: cfg.breaker_threshold,
        ..transport::ClientConfig::default()
    }
}

/// Build the real-dataplane supplier options from a [`core::JbsConfig`]:
/// buffer size, prefetch depth, and the admission-control bounds that
/// shed excess load with `Busy` pushback instead of stalling. The
/// `drain_timeout` knob pairs with
/// [`transport::MofSupplierServer::drain`] at decommission time.
pub fn transport_server_options(cfg: &core::JbsConfig) -> transport::ServerOptions {
    transport::ServerOptions {
        buffer_bytes: cfg.buffer_bytes,
        prefetch_batch: u64::from(cfg.prefetch_batch),
        prefetch: cfg.pipelined_prefetch,
        max_connections: cfg.max_connections as u64,
        max_inflight_per_peer: cfg.max_inflight_per_peer,
        reactor_threads: cfg.reactor_threads,
        io_read_permits: cfg.io_read_permits,
        io_append_permits: cfg.io_append_permits,
        ..transport::ServerOptions::default()
    }
}

/// Build the supplier options *and* a hybrid-store configuration that
/// share one [`transport::IoScheduler`]: the supplier's staging reads
/// and the hybrid store's spill appends then arbitrate for the same
/// disk through the scheduler's two permit classes, which is the whole
/// point of the scheduler — a spill burst queues on append permits
/// instead of stealing the head position from the prefetcher.
pub fn transport_supplier_stack(
    cfg: &core::JbsConfig,
) -> (transport::ServerOptions, store_hybrid::HybridConfig) {
    let sched = std::sync::Arc::new(transport::IoScheduler::new(
        cfg.io_read_permits,
        cfg.io_append_permits,
    ));
    let mut options = transport_server_options(cfg);
    options.iosched = Some(std::sync::Arc::clone(&sched));
    let mut hybrid = hybrid_store_config(cfg);
    hybrid.spill_gate = Some(sched);
    (options, hybrid)
}

/// Build the cluster control plane's registry configuration from a
/// [`core::JbsConfig`]: heartbeat spacing, the missed-beat expiry
/// multiple, and the replication factor map onto
/// [`control::RegistryConfig`]. The registry pushes its view into a
/// [`transport::RouteTable`] (wired via
/// [`transport::ClientConfig::routes`]) — the data plane never calls
/// the registry directly.
pub fn control_registry_config(cfg: &core::JbsConfig) -> control::RegistryConfig {
    control::RegistryConfig {
        heartbeat_interval_nanos: cfg.heartbeat_interval.as_nanos(),
        unhealthy_after_missed: cfg.unhealthy_after_missed,
        replication: cfg.replication_factor,
        ..control::RegistryConfig::default()
    }
}

/// Build a hybrid-store configuration from a [`core::JbsConfig`]: the
/// memory budget, spill watermarks, huge-partition limit, and
/// crash-consistency knobs map onto [`store_hybrid::HybridConfig`].
/// Pair the result with [`transport::ServerOptions::hybrid`] via
/// [`store_hybrid::HybridStore::new`] to give a supplier a memory tier;
/// with `durable_spill` on, pin `data_dir` so a restarted supplier can
/// rebuild from it with [`store_hybrid::HybridStore::recover`].
pub fn hybrid_store_config(cfg: &core::JbsConfig) -> store_hybrid::HybridConfig {
    store_hybrid::HybridConfig {
        memory_budget: cfg.hybrid_memory_budget as usize,
        high_watermark: cfg.memory_spill_high_watermark,
        low_watermark: cfg.memory_spill_low_watermark,
        huge_partition_limit: cfg.huge_partition_limit as usize,
        durable_spill: cfg.durable_spill,
        manifest_sync_interval: cfg.manifest_sync_interval,
        ..store_hybrid::HybridConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jbs_config_drives_the_real_dataplane() {
        let cfg = core::JbsConfig {
            fetch_retry_max: 7,
            buffer_bytes: 64 << 10,
            ..core::JbsConfig::default()
        };
        let tc = transport_client_config(&cfg);
        assert_eq!(tc.retry.max_retries, 7);
        assert_eq!(tc.buffer_bytes, 64 << 10);
        assert_eq!(tc.window, cfg.prefetch_batch as usize);
        assert_eq!(tc.max_connections, cfg.max_connections);
        assert_eq!(
            tc.read_timeout.as_nanos() as u64,
            cfg.fetch_io_timeout.as_nanos()
        );
        // The configured client actually works.
        let client = transport::NetMergerClient::with_client_config(tc);
        assert_eq!(client.fetch_stats().retries, 0);
    }

    #[test]
    fn jbs_config_drives_supplier_admission_control() {
        let cfg = core::JbsConfig {
            max_inflight_per_peer: 33,
            buffer_bytes: 64 << 10,
            checksum: false,
            breaker_threshold: 0,
            ..core::JbsConfig::default()
        };
        let so = transport_server_options(&cfg);
        assert_eq!(so.max_inflight_per_peer, 33);
        assert_eq!(so.buffer_bytes, 64 << 10);
        assert_eq!(so.max_connections, cfg.max_connections as u64);
        let tc = transport_client_config(&cfg);
        assert!(!tc.checksum, "v2 pin propagates");
        assert_eq!(tc.breaker_threshold, 0, "breaker disable propagates");
    }

    #[test]
    fn jbs_config_drives_the_reactor_and_iosched() {
        let cfg = core::JbsConfig {
            reactor_threads: 3,
            io_read_permits: 9,
            io_append_permits: 5,
            ..core::JbsConfig::default()
        };
        let so = transport_server_options(&cfg);
        assert_eq!(so.reactor_threads, 3);
        assert_eq!(so.io_read_permits, 9);
        assert_eq!(so.io_append_permits, 5);
        assert!(!so.threaded, "event loop is the default serve mode");
        assert!(so.iosched.is_none(), "plain options build their own scheduler");
    }

    #[test]
    fn supplier_stack_shares_one_io_scheduler() {
        let (so, hc) = transport_supplier_stack(&core::JbsConfig::default());
        let sched = so.iosched.expect("stack wires a scheduler");
        let gate = hc.spill_gate.expect("stack wires the spill gate");
        // The gate and the scheduler are the same instance: an append
        // permit taken through the hybrid store's gate shows up in the
        // supplier scheduler's gauges.
        gate.acquire_append();
        assert_eq!(sched.stats().append_held, 1);
        gate.release_append();
        assert_eq!(sched.stats().append_held, 0);
        assert_eq!(sched.stats().read_permits, 4);
    }

    #[test]
    fn jbs_config_drives_the_control_plane() {
        let cfg = core::JbsConfig {
            heartbeat_interval: des::SimTime::from_millis(100),
            unhealthy_after_missed: 5,
            replication_factor: 3,
            ..core::JbsConfig::default()
        };
        let rc = control_registry_config(&cfg);
        assert_eq!(rc.heartbeat_interval_nanos, 100_000_000);
        assert_eq!(rc.unhealthy_after_missed, 5);
        assert_eq!(rc.replication, 3);
        // The configured registry expires at the mapped window.
        let addr = std::net::SocketAddr::from(([127, 0, 0, 1], 9));
        let registry = control::Registry::new(rc);
        registry.register(addr, 0);
        assert!(registry.tick(500_000_000).newly_unhealthy.is_empty());
        assert_eq!(registry.tick(500_000_001).newly_unhealthy, vec![addr]);
    }

    #[test]
    fn jbs_config_drives_the_hybrid_store() {
        let cfg = core::JbsConfig {
            hybrid_memory_budget: 1 << 20,
            memory_spill_high_watermark: 0.6,
            memory_spill_low_watermark: 0.3,
            huge_partition_limit: 128 << 10,
            ..core::JbsConfig::default()
        };
        let hc = hybrid_store_config(&cfg);
        assert_eq!(hc.memory_budget, 1 << 20);
        assert_eq!(hc.huge_partition_limit, 128 << 10);
        assert!(hc.validate().is_ok());
        // The configured store actually spills at the mapped watermarks.
        let store = store_hybrid::HybridStore::new(hc).unwrap();
        store.append(0, 0, &vec![7u8; 700 << 10]).unwrap();
        let stats = store.stats();
        assert!(stats.spill_trips >= 1, "0.6 watermark tripped: {stats:?}");
        assert!(stats.memory_bytes <= (1 << 20) * 3 / 10);
    }

    #[test]
    fn jbs_config_drives_crash_consistent_spills() {
        let dir = std::env::temp_dir().join(format!("jbs-lib-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = core::JbsConfig {
            hybrid_memory_budget: 1 << 10,
            huge_partition_limit: 1 << 10,
            durable_spill: true,
            manifest_sync_interval: 1,
            ..core::JbsConfig::default()
        };
        let mut hc = hybrid_store_config(&cfg);
        assert!(hc.durable_spill, "durability knob propagates");
        assert_eq!(hc.manifest_sync_interval, 1);
        hc.data_dir = Some(dir.join("data"));
        hc.remote_dir = Some(dir.join("remote"));
        // An oversize append lands durably; recover() from the same
        // directory rebuilds it byte-exact.
        let store = store_hybrid::HybridStore::new(hc.clone()).unwrap();
        let payload = vec![3u8; 4 << 10];
        store.append(5, 2, &payload).unwrap();
        store.close();
        drop(store);
        let (rec, report) = store_hybrid::HybridStore::recover(hc).unwrap();
        assert_eq!(report.recovered_bytes, payload.len() as u64);
        assert_eq!(
            rec.read_segment_range(5, 2, 0, 0).unwrap().as_deref(),
            Some(payload.as_slice())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
