//! A real distributed shuffle over loopback TCP: four MOFSupplier servers
//! (one per simulated "node"), Terasort-style records partitioned by a
//! sampled range partitioner, fetched and merged by a NetMerger per
//! reducer — genuine bytes, genuine sockets, verified sorted output.
//!
//! ```sh
//! cargo run --release --example real_shuffle
//! ```

use jbs::des::DetRng;
use jbs::mapred::merge::is_sorted;
use jbs::transport::client::SegmentRef;
use jbs::transport::{MofStore, MofSupplierServer, NetMergerClient};
use jbs::workloads::{gen_terasort_records, Partitioner, RangePartitioner};

const NODES: usize = 4;
const MAPS_PER_NODE: usize = 2;
const REDUCERS: usize = 3;
const RECORDS_PER_MAP: usize = 5_000;

fn main() {
    let mut rng = DetRng::new(2013);

    // "Map phase": generate records, build a Terasort range partitioner
    // from a sample, and write one MOF per MapTask on each node.
    let all_keys: Vec<Vec<u8>> = gen_terasort_records(2_000, &mut rng)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let partitioner = RangePartitioner::sampled(&all_keys, 500, REDUCERS, &mut rng);

    let mut servers = Vec::new();
    let mut total_records = 0usize;
    for node in 0..NODES {
        let mut store = MofStore::temp().expect("temp store");
        for m in 0..MAPS_PER_NODE {
            let records = gen_terasort_records(RECORDS_PER_MAP, &mut rng);
            total_records += records.len();
            store
                .write_mof((node * MAPS_PER_NODE + m) as u64, records, REDUCERS, |k| {
                    partitioner.partition(k)
                })
                .expect("write MOF");
        }
        let server = MofSupplierServer::start(store).expect("start supplier");
        println!("MOFSupplier for node {node} listening on {}", server.addr());
        servers.push(server);
    }

    // "Reduce phase": one NetMerger fetches and merges each reducer's input.
    let client = NetMergerClient::new();
    let mut grand_total = 0usize;
    let mut last_max_key: Option<Vec<u8>> = None;
    for reducer in 0..REDUCERS {
        let segs: Vec<SegmentRef> = servers
            .iter()
            .enumerate()
            .flat_map(|(node, s)| {
                (0..MAPS_PER_NODE).map(move |m| SegmentRef {
                    addr: s.addr(),
                    mof: (node * MAPS_PER_NODE + m) as u64,
                    reducer: reducer as u32,
                })
            })
            .collect();
        let merged = client.shuffle_and_merge(&segs).expect("shuffle");
        assert!(is_sorted(&merged), "reducer {reducer} output not sorted");
        // Range partitioning keeps outputs globally ordered across reducers.
        if let (Some(prev), Some((first, _))) = (&last_max_key, merged.first()) {
            assert!(first >= prev, "partition boundaries out of order");
        }
        last_max_key = merged.last().map(|(k, _)| k.clone());
        println!(
            "reducer {reducer}: merged {:>6} records from {} segments (sorted ✓)",
            merged.len(),
            segs.len()
        );
        grand_total += merged.len();
    }
    assert_eq!(grand_total, total_records, "records conserved");

    let stats = client.stats();
    println!(
        "\nshuffled {} records / {:.1} MB over {} cached connections \
         ({} established, {} reused)",
        grand_total,
        stats.bytes_fetched as f64 / (1 << 20) as f64,
        NODES,
        stats.connections_established,
        stats.connections_reused,
    );
    for s in servers {
        s.shutdown();
    }
    println!("all suppliers shut down cleanly");
}
