//! Tune the JBS transport buffer: sweep the buffer size and watch the
//! pipeline — the Fig. 11 experiment at adjustable scale.
//!
//! ```sh
//! cargo run --release --example buffer_tuning -- 64   # input GB, default 32
//! ```

use jbs::core::{EngineKind, JbsConfig};
use jbs::mapred::{ClusterConfig, JobSimulator, JobSpec};

fn main() {
    let gb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    println!("JBS transport-buffer sweep, Terasort {gb} GB, 22 slaves\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "buffer", "in-flight", "RDMA job (s)", "IPoIB job (s)"
    );

    let mut best = (u64::MAX, f64::INFINITY);
    let mut kb = 8u64;
    while kb <= 512 {
        let cfg = JbsConfig::with_buffer(kb << 10);
        let pool = cfg.pool_buffers();
        let mut row = Vec::new();
        for kind in [EngineKind::JbsOnRdma, EngineKind::JbsOnIpoIb] {
            let cluster = ClusterConfig::paper_testbed(kind.protocol());
            let sim = JobSimulator::new(cluster, JobSpec::terasort(gb << 30));
            let mut engine = kind.build_with(cfg.clone());
            row.push(sim.run(engine.as_mut()).job_time.as_secs_f64());
        }
        println!("{:>8}KB {:>12} {:>14.1} {:>14.1}", kb, pool, row[0], row[1]);
        if row[0] < best.1 {
            best = (kb, row[0]);
        }
        kb *= 2;
    }
    println!(
        "\nbest RDMA buffer: {} KB (the paper chose 128 KB as the JBS default)",
        best.0
    );
}
