//! Run the paper's application benchmarks (Tarazu suite + WordCount/Grep)
//! with Hadoop and JBS, showing which workloads JVM-bypass helps: the
//! shuffle-heavy ones, and not the map-side-combining ones.
//!
//! ```sh
//! cargo run --release --example tarazu_suite
//! ```

use jbs::core::EngineKind;
use jbs::mapred::{ClusterConfig, JobSimulator};
use jbs::workloads::Benchmark;

fn main() {
    println!("Tarazu suite + WordCount/Grep, 30 GB input, 22 slaves, InfiniBand\n");
    println!(
        "{:<15} {:>9} {:>14} {:>12} {:>12} {:>9}",
        "benchmark", "shuffle:", "Hadoop-IPoIB", "JBS-IPoIB", "JBS-RDMA", "best gain"
    );
    println!(
        "{:<15} {:>9} {:>14} {:>12} {:>12} {:>9}",
        "", "input", "(s)", "(s)", "(s)", "(%)"
    );

    for bench in Benchmark::figure12() {
        let spec = bench.paper_spec();
        let mut times = Vec::new();
        for kind in [
            EngineKind::HadoopOnIpoIb,
            EngineKind::JbsOnIpoIb,
            EngineKind::JbsOnRdma,
        ] {
            let cfg = ClusterConfig::paper_testbed(kind.protocol());
            let sim = JobSimulator::new(cfg, spec.clone());
            let mut engine = kind.build();
            times.push(sim.run(engine.as_mut()).job_time.as_secs_f64());
        }
        let gain = (times[0] - times[2]) / times[0] * 100.0;
        println!(
            "{:<15} {:>8.2}x {:>14.1} {:>12.1} {:>12.1} {:>9.1}",
            bench.label(),
            spec.shuffle_ratio,
            times[0],
            times[1],
            times[2],
            gain,
        );
    }
    println!(
        "\nShuffle-heavy benchmarks (SelfJoin..AdjacencyList) benefit from JVM-bypass;\n\
         WordCount and Grep shuffle almost nothing, so JBS changes little — exactly\n\
         the two benchmark classes of the paper's Sec. V-F."
    );
}
