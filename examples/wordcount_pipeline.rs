//! A complete, real MapReduce pipeline on the JBS dataplane:
//!
//!   synthetic text → WordCount map → external sort/spill → MOF files →
//!   MOFSupplier servers → NetMerger levitated merge → sum reduce,
//!
//! verified against a single-machine reference count. Everything here is
//! genuine computation on genuine bytes; the only simulated thing is
//! nothing.
//!
//! ```sh
//! cargo run --release --example wordcount_pipeline
//! ```

use jbs::des::DetRng;
use jbs::mapred::extsort::ExternalSorter;
use jbs::transport::client::SegmentRef;
use jbs::transport::{MofStore, MofSupplierServer, NetMergerClient};
use jbs::workloads::mapfns::{sum_reduce, wordcount_map};
use jbs::workloads::{gen_text, HashPartitioner, Partitioner};
use std::collections::HashMap;

const NODES: usize = 3;
const MAPS_PER_NODE: usize = 2;
const REDUCERS: usize = 2;
const TEXT_BYTES: usize = 200_000;

fn main() {
    let mut rng = DetRng::new(42);
    let partitioner = HashPartitioner::new(REDUCERS);
    let mut reference: HashMap<String, u64> = HashMap::new();
    let mut servers = Vec::new();

    // --- Map phase: real text, real map function, real external sort ----
    for node in 0..NODES {
        let mut store = MofStore::temp().expect("store");
        for m in 0..MAPS_PER_NODE {
            let doc = gen_text(TEXT_BYTES, &mut rng);
            for w in doc.split_whitespace() {
                *reference.entry(w.to_string()).or_insert(0) += 1;
            }
            // Map + combiner-less sort/spill with a deliberately tiny
            // buffer, to exercise the spill path.
            let spill_dir = std::env::temp_dir().join(format!(
                "jbs-wc-{}-{node}-{m}",
                std::process::id()
            ));
            let mut sorter = ExternalSorter::new(&spill_dir, 64 << 10).expect("sorter");
            for (k, v) in wordcount_map(&doc) {
                sorter.add(k, v).expect("add");
            }
            let (sorted, stats) = sorter.finish().expect("external sort");
            println!(
                "map {node}.{m}: {} records, {} spills ({} KB spilled)",
                stats.records,
                stats.spills,
                stats.spilled_bytes >> 10
            );
            store
                .write_mof((node * MAPS_PER_NODE + m) as u64, sorted, REDUCERS, |k| {
                    partitioner.partition(k)
                })
                .expect("write MOF");
            std::fs::remove_dir_all(&spill_dir).ok();
        }
        servers.push(MofSupplierServer::start(store).expect("supplier"));
    }

    // --- Shuffle + reduce: levitated merge feeding a streaming reducer --
    let client = NetMergerClient::new();
    let mut total_words = 0u64;
    let mut distinct = 0usize;
    for reducer in 0..REDUCERS {
        let segs: Vec<SegmentRef> = servers
            .iter()
            .enumerate()
            .flat_map(|(node, s)| {
                (0..MAPS_PER_NODE).map(move |m| SegmentRef {
                    addr: s.addr(),
                    mof: (node * MAPS_PER_NODE + m) as u64,
                    reducer: reducer as u32,
                })
            })
            .collect();
        let merged = client.levitated_merge(&segs).expect("levitated merge");

        // The classic reduce loop: consume runs of equal keys.
        let mut i = 0;
        while i < merged.len() {
            let key = &merged[i].0;
            let mut values = Vec::new();
            while i < merged.len() && &merged[i].0 == key {
                values.push(merged[i].1.clone());
                i += 1;
            }
            let count = sum_reduce(&values);
            let word = String::from_utf8_lossy(key).to_string();
            assert_eq!(
                Some(&count),
                reference.get(&word),
                "count mismatch for {word:?}"
            );
            total_words += count;
            distinct += 1;
        }
    }
    assert_eq!(distinct, reference.len(), "every word reduced exactly once");
    assert_eq!(total_words, reference.values().sum::<u64>());

    let stats = client.stats();
    println!(
        "\nreduced {distinct} distinct words ({total_words} total) — all counts \
         verified against the reference;\nshuffled {:.1} KB over {} connections \
         via the network-levitated merge",
        stats.bytes_fetched as f64 / 1024.0,
        stats.connections_established,
    );
    for s in servers {
        s.shutdown();
    }
}
