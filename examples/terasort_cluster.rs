//! Terasort across every Table-I test case: which transport wins, and by
//! how much, at a chosen input size.
//!
//! ```sh
//! cargo run --release --example terasort_cluster -- 128   # input in GB
//! ```

use jbs::core::EngineKind;
use jbs::mapred::{ClusterConfig, JobSimulator, JobSpec};

fn main() {
    let gb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    println!("Terasort {gb} GB on the 22-slave paper testbed\n");
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "test case", "job (s)", "map (s)", "shuffle", "cpu %", "spill GB"
    );

    let mut base = None;
    for kind in EngineKind::all() {
        let cfg = ClusterConfig::paper_testbed(kind.protocol());
        let sim = JobSimulator::new(cfg, JobSpec::terasort(gb << 30));
        let mut engine = kind.build();
        let r = sim.run(engine.as_mut());
        println!(
            "{:<20} {:>10.1} {:>10.1} {:>10.1} {:>8.1} {:>10.2}",
            kind.label(),
            r.job_time.as_secs_f64(),
            r.map_phase_end.as_secs_f64(),
            r.shuffle_all_ready.as_secs_f64(),
            r.mean_cpu_utilization(),
            r.spilled_bytes as f64 / (1u64 << 30) as f64,
        );
        if kind == EngineKind::HadoopOnIpoIb {
            base = Some(r.job_time.as_secs_f64());
        }
        if kind == EngineKind::JbsOnRdma {
            if let Some(b) = base {
                println!(
                    "\nJBS on RDMA vs Hadoop on IPoIB: {:.1}% faster",
                    (b - r.job_time.as_secs_f64()) / b * 100.0
                );
            }
        }
    }
}
