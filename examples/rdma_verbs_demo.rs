//! The JBS RDMA path on the software verbs layer: Fig. 6's connection
//! establishment, MOF registration into a protection domain, and
//! one-sided segment reads that never involve a supplier thread.
//!
//! ```sh
//! cargo run --release --example rdma_verbs_demo
//! ```

use jbs::des::DetRng;
use jbs::mapred::mof::MofWriter;
use jbs::transport::verbs::{RdmaMofSupplier, RdmaNetMerger};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};

const REDUCERS: usize = 4;
const RECORDS: usize = 20_000;

fn main() {
    // Build a real MOF.
    let mut rng = DetRng::new(7);
    let partitioner = HashPartitioner::new(REDUCERS);
    let mut writer = MofWriter::new();
    let records = gen_terasort_records(RECORDS, &mut rng);
    let mut buckets: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); REDUCERS];
    for (k, v) in records {
        buckets[partitioner.partition(&k)].push((k, v));
    }
    for mut bucket in buckets {
        bucket.sort();
        writer.begin_segment();
        for (k, v) in &bucket {
            writer.append(k, v);
        }
        writer.end_segment();
    }
    let (data, index) = writer.finish();
    println!(
        "MOF built: {} bytes, {} segments",
        data.len(),
        index.num_segments()
    );

    // MOFSupplier: register the MOF for one-sided access. Its event thread
    // only ever answers the catalog request; data moves without it.
    let supplier = RdmaMofSupplier::start();
    supplier.publish_mof(0, data.to_vec(), &index);

    // NetMerger: rdma_connect (Fig. 6 handshake), fetch the catalog once,
    // then pull every segment with 128 KB one-sided reads.
    let merger = RdmaNetMerger::new();
    let conn = merger.connect(&supplier.addr()).expect("rdma_connect");
    println!("queue pair established (alloc conn -> rdma_connect -> accept -> established)");

    let mut total = 0usize;
    for reducer in 0..REDUCERS as u32 {
        let seg = merger
            .fetch_segment(conn, 0, reducer, 128 << 10)
            .expect("one-sided fetch");
        let entry = index.entry(reducer as usize).unwrap();
        assert_eq!(seg.len() as u64, entry.part_len, "byte-exact");
        total += seg.len();
        println!(
            "reducer {reducer}: {} bytes fetched one-sided (offset {} in the region)",
            seg.len(),
            entry.offset
        );
    }
    println!(
        "\n{} bytes moved via {} one-sided reads — zero supplier threads on the data path,\n\
         which is why the paper's RDMA runs show the lowest CPU utilization (Fig. 10b)",
        total,
        supplier.one_sided_reads()
    );
}
