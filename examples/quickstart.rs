//! Quickstart: run one simulated Terasort job with the stock Hadoop
//! shuffle and with JVM-Bypass Shuffling, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jbs::core::{HadoopShuffle, JbsShuffle};
use jbs::mapred::{ClusterConfig, JobResult, JobSimulator, JobSpec};
use jbs::net::Protocol;

fn report(r: &JobResult) {
    println!(
        "{:<8}  job {:>7.1}s  (map {:>6.1}s, shuffle-ready {:>6.1}s)  \
         cpu {:>4.1}%  spilled {:>5.2} GB  connections {:>5}",
        r.engine,
        r.job_time.as_secs_f64(),
        r.map_phase_end.as_secs_f64(),
        r.shuffle_all_ready.as_secs_f64(),
        r.mean_cpu_utilization(),
        r.spilled_bytes as f64 / (1u64 << 30) as f64,
        r.connections_established,
    );
}

fn main() {
    // Terasort 64 GB on the paper's 22-slave testbed over InfiniBand.
    let input = 64u64 << 30;
    let cfg = ClusterConfig::paper_testbed(Protocol::IpoIb);
    let sim = JobSimulator::new(cfg, JobSpec::terasort(input));

    println!("Terasort {} GB, 22 slaves, IPoIB on InfiniBand\n", input >> 30);
    let hadoop = sim.run(&mut HadoopShuffle::new());
    report(&hadoop);
    let jbs = sim.run(&mut JbsShuffle::new());
    report(&jbs);

    let speedup = hadoop.job_time.as_secs_f64() / jbs.job_time.as_secs_f64();
    let cpu_cut = (hadoop.mean_cpu_utilization() - jbs.mean_cpu_utilization())
        / hadoop.mean_cpu_utilization()
        * 100.0;
    println!(
        "\nJVM-bypass: {:.2}x faster, {:.0}% lower CPU utilization, \
         {} fewer connections, zero reduce-side spills",
        speedup,
        cpu_cut,
        hadoop.connections_established - jbs.connections_established,
    );
}
