//! Offline stand-in for the `proptest` crate.
//!
//! This container builds without crates.io access, so the workspace
//! vendors the subset of proptest's API its property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range and tuple
//! strategies, [`collection::vec`], [`any`], `prop_map`, and
//! [`prelude::ProptestConfig`] case counts.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   printed via the assertion message; there is no minimization pass.
//! * **Deterministic seeding** — each test's RNG is seeded from a hash
//!   of its fully-qualified name (override with `PROPTEST_SEED`), so
//!   failures replay without a persistence file.
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Generate `Vec<S::Value>` with a length drawn from `size`
    /// (a `usize` for exact length, or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy producing uniform booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Types with a canonical strategy, as upstream's `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias for strategy modules (`prop::collection::vec`,
    /// `prop::bool::ANY`), mirroring upstream's prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Define property tests: each `arg in strategy` binding is regenerated
/// per case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Property assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(x in 3u64..17, (a, b) in (0u8..4, -2i64..2)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((-2..2).contains(&b));
        }

        /// Vec strategies honour exact and ranged sizes.
        #[test]
        fn vec_sizes(fixed in prop::collection::vec(any::<u8>(), 6),
                     ranged in prop::collection::vec(0u32..10, 1..5)) {
            prop_assert_eq!(fixed.len(), 6);
            prop_assert!((1..5).contains(&ranged.len()));
        }

        /// prop_map transforms generated values.
        #[test]
        fn mapping(even in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(even % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Explicit configs drive the case count (5 distinct runs at
        /// most; just check it executes).
        #[test]
        fn configured(flag in prop::bool::ANY) {
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("x::y");
        let mut b = crate::test_runner::rng_for("x::y");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
