//! Value-generation strategies: the composable core of the shim.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree and no shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Every half-open range of a uniformly sampleable type is a strategy.
impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// The strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
