//! Test configuration and deterministic seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG all strategies draw from.
pub type TestRng = StdRng;

/// Per-test configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The RNG for one named test: seeded from a hash of the test's
/// fully-qualified name so every run regenerates the same cases.
/// `PROPTEST_SEED` perturbs the seed to explore a different sequence.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a, folded with any explicit seed override.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_SEED") {
        if let Ok(s) = extra.parse::<u64>() {
            h ^= s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    StdRng::seed_from_u64(h)
}
