//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without crates.io access, so this crate vendors
//! the bench-target API JBS's `[[bench]]` files use: `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`/`iter_batched`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Semantics follow upstream's contract with cargo:
//!
//! * `cargo bench` passes `--bench`; the harness then warms up and runs
//!   timed samples, printing mean time per iteration and throughput.
//! * `cargo test` runs bench binaries **without** `--bench`; the
//!   harness detects that and runs every routine exactly once, so
//!   benches are smoke-tested by the tier-1 gate without burning time.
//!
//! There is no statistical analysis, plotting, or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim times routines
/// individually so the hint only exists for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            // Upstream contract: cargo passes --bench only under
            // `cargo bench`; under `cargo test` run routines once.
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed by one iteration of each benchmark.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            config: self.criterion.clone(),
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if self.criterion.bench_mode && bencher.iters > 0 {
            let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
            let rate = match self.throughput {
                Some(Throughput::Elements(n)) => {
                    format!(" ({:.2} Melem/s)", n as f64 / per_iter / 1e6)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(" ({:.2} MiB/s)", n as f64 / per_iter / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!(
                "{}/{}: {:>12.3} µs/iter{} [{} iters]",
                self.name,
                id,
                per_iter * 1e6,
                rate,
                bencher.iters
            );
        }
        self
    }

    /// Close the group (upstream writes reports here; the shim prints
    /// per-benchmark, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    config: Criterion,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Benchmark a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.config.bench_mode {
            black_box(routine());
            self.iters = 0;
            return;
        }
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        // Measurement: run until the budget is spent, at least
        // `sample_size` iterations.
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        let mut iters = 0u64;
        while Instant::now() < deadline || iters < self.config.sample_size as u64 {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Benchmark a routine with per-iteration setup excluded from the
    /// timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.config.bench_mode {
            black_box(routine(setup()));
            self.iters = 0;
            return;
        }
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let budget_start = Instant::now();
        while measured < self.config.measurement_time
            || iters < self.config.sample_size as u64
        {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
            // Do not let pathological setup spin forever.
            if budget_start.elapsed() > self.config.measurement_time * 10 {
                break;
            }
        }
        self.elapsed = measured;
        self.iters = iters;
    }
}

/// Define a benchmark group function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench binary's `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        // Unit tests never see --bench, so routines run exactly once.
        let mut c = Criterion::default().sample_size(50);
        assert!(!c.bench_mode);
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("once", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 7u32, |v| seen.push(v), BatchSize::SmallInput)
        });
        assert_eq!(seen, vec![7]);
    }
}
