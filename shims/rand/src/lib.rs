//! Offline stand-in for the `rand` crate.
//!
//! This container builds with no access to crates.io, so the workspace
//! vendors the *API subset* it actually uses: `RngCore`, `SeedableRng`,
//! `Rng::{gen_range, gen_bool}` over integer and float ranges, and
//! `rngs::StdRng`. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic for a given seed, which is all the
//! simulator's [`DetRng`]-style reproducibility needs. It is **not** a
//! cryptographic RNG and does not match upstream `StdRng`'s stream.

use std::ops::Range;

/// Core random-number generation, as in `rand_core`.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, as in `rand_core`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type a `Range` of which can be sampled uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. Panics when the range is empty,
    /// matching upstream.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Lemire's multiply-shift: unbiased enough for simulation.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + draw
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Convenience sampling over [`RngCore`], as in upstream `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid for
    /// simulation workloads. Stream differs from upstream `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rest = chunks.into_remainder();
            if !rest.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rest.copy_from_slice(&bytes[..rest.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(StdRng::seed_from_u64(9).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_rate() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
