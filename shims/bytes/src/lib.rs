//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds with no access to crates.io, so this crate
//! vendors the subset JBS uses for wire/MOF framing: big-endian
//! [`Buf`]/[`BufMut`] cursors, a growable [`BytesMut`], and an immutable
//! shared [`Bytes`]. Semantics match upstream where the two overlap
//! (in particular, `Buf` getters panic when the slice is too short —
//! callers bounds-check first, exactly as with the real crate).

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte source, big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_be_bytes(head.try_into().expect("8 bytes"))
    }
}

/// Write sink for big-endian framing.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Convert into an immutable, cheaply-clonable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            inner: Arc::from(self.inner),
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// An immutable, reference-counted byte string.
#[derive(Debug, Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether it is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Arc::from(v),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.inner[..] == other.inner[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_u8(7);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 16);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 42);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor, &[1, 2, 3]);
    }

    #[test]
    fn bytes_slices_and_clones() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn short_get_panics_like_upstream() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32();
    }
}
