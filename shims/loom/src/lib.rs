//! Offline stand-in for the `loom` model checker.
//!
//! The container builds with no access to crates.io, so — like the
//! `rand`/`proptest` shims — this crate vendors the *API subset* the
//! workspace uses: [`model`], `loom::thread::{spawn, yield_now}`, and
//! `loom::sync::{Arc, Mutex, atomic}`. Unlike those shims, a trivial
//! pass-through would be useless here (the whole point is exploring
//! interleavings), so this is a real, if bounded, model checker:
//!
//! * all managed threads are **serialized** behind a scheduler — exactly
//!   one runs at a time, and every sync operation (mutex acquire and
//!   release, every atomic access, spawn, join) is a *decision point*
//!   where the scheduler picks which runnable thread continues;
//! * [`model`] re-runs the closure under **depth-first schedule
//!   exploration**: each execution records how many threads were
//!   enabled at every decision point, and the next execution flips the
//!   last choice that has unexplored alternatives — classic DFS over
//!   the schedule tree, the same exploration loom performs (without
//!   loom's partial-order reduction, hence the iteration bound);
//! * a state where no thread is runnable but some are unfinished is
//!   reported as a **deadlock**, with the schedule that produced it;
//! * a panic on any managed thread aborts the execution and fails
//!   [`model`] with the schedule, so assertion failures in any
//!   interleaving surface as test failures.
//!
//! Differences from upstream loom, beyond the missing reduction: atomic
//! orderings are not weakened (every explored execution is sequentially
//! consistent), `UnsafeCell`/lazy statics are not modeled, and
//! exploration stops after `LOOM_MAX_ITERS` schedules (default 4096)
//! rather than proving exhaustion on unbounded models.

use std::cell::RefCell;
use std::sync::{Condvar, Mutex as StdMutex};

mod sched {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum Status {
        Runnable,
        BlockedOnLock(usize),
        BlockedOnJoin(usize),
        BlockedOnCondvar(usize),
        Finished,
    }

    pub struct State {
        pub threads: Vec<Status>,
        pub current: usize,
        /// Choice prefix driving this execution.
        pub schedule: Vec<usize>,
        /// Choices actually taken.
        pub taken: Vec<usize>,
        /// Enabled-thread count at each decision point.
        pub counts: Vec<usize>,
        pub step: usize,
        pub locks: Vec<bool>, // held?
        pub condvars: usize,
        pub failure: Option<String>,
        pub abort: bool,
    }

    pub struct Sched {
        pub state: StdMutex<State>,
        pub cv: Condvar,
    }

    impl Sched {
        pub fn new(schedule: Vec<usize>) -> std::sync::Arc<Sched> {
            std::sync::Arc::new(Sched {
                state: StdMutex::new(State {
                    threads: Vec::new(),
                    current: 0,
                    schedule,
                    taken: Vec::new(),
                    counts: Vec::new(),
                    step: 0,
                    locks: Vec::new(),
                    condvars: 0,
                    failure: None,
                    abort: false,
                }),
                cv: Condvar::new(),
            })
        }

        pub fn st(&self) -> std::sync::MutexGuard<'_, State> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn register_thread(&self) -> usize {
            let mut st = self.st();
            st.threads.push(Status::Runnable);
            st.threads.len() - 1
        }

        pub fn alloc_lock(&self) -> usize {
            let mut st = self.st();
            st.locks.push(false);
            st.locks.len() - 1
        }

        pub fn alloc_condvar(&self) -> usize {
            let mut st = self.st();
            st.condvars += 1;
            st.condvars - 1
        }

        /// Pick the next thread to run among the runnable ones,
        /// following (and recording) the exploration schedule. Flags a
        /// deadlock when nothing is runnable but threads remain.
        fn pick_next(&self, st: &mut State) {
            let enabled: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
            if enabled.is_empty() {
                if st.threads.iter().any(|s| *s != Status::Finished) {
                    let blocked: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| **s != Status::Finished)
                        .map(|(i, s)| format!("thread {i}: {s:?}"))
                        .collect();
                    st.failure = Some(format!(
                        "deadlock: no runnable thread ({}) under schedule {:?}",
                        blocked.join(", "),
                        st.taken
                    ));
                    st.abort = true;
                }
                return;
            }
            let step = st.step;
            let choice = st.schedule.get(step).copied().unwrap_or(0) % enabled.len();
            st.counts.push(enabled.len());
            st.taken.push(choice);
            st.step += 1;
            st.current = enabled[choice];
        }

        /// A decision point for a runnable thread: reschedule, then wait
        /// until this thread is chosen again.
        pub fn yield_point(&self, me: usize) {
            let mut st = self.st();
            if !st.abort {
                self.pick_next(&mut st);
            }
            self.cv.notify_all();
            while !st.abort && st.current != me {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let abort = st.abort;
            drop(st);
            // A guard dropped during unwinding lands here with the abort
            // flag set; panicking again would be a fatal double panic,
            // so only the first (non-unwinding) panic escalates.
            if abort && !std::thread::panicking() {
                panic!("loom: execution aborted (sibling thread failed or deadlock)");
            }
        }

        /// Block `me` with `status`, hand the CPU to someone else, and
        /// wait until `me` is runnable *and* scheduled again.
        pub fn block_and_wait(&self, me: usize, status: Status) {
            let mut st = self.st();
            st.threads[me] = status;
            if !st.abort {
                self.pick_next(&mut st);
            }
            self.cv.notify_all();
            while !(st.abort || st.threads[me] == Status::Runnable && st.current == me) {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let abort = st.abort;
            drop(st);
            if abort && !std::thread::panicking() {
                panic!("loom: execution aborted (sibling thread failed or deadlock)");
            }
        }

        pub fn lock_acquire(&self, me: usize, lock: usize) {
            loop {
                self.yield_point(me);
                let mut st = self.st();
                if !st.locks[lock] {
                    st.locks[lock] = true;
                    return;
                }
                drop(st);
                self.block_and_wait(me, Status::BlockedOnLock(lock));
            }
        }

        pub fn lock_release(&self, me: usize, lock: usize) {
            {
                let mut st = self.st();
                st.locks[lock] = false;
                for s in st.threads.iter_mut() {
                    if *s == Status::BlockedOnLock(lock) {
                        *s = Status::Runnable;
                    }
                }
            }
            self.yield_point(me);
        }

        /// Atomically block `me` on condvar `cv` *and* release `lock`
        /// (waking its blocked acquirers), then wait to be notified and
        /// rescheduled. The caller re-acquires the mutex afterwards,
        /// racing other acquirers exactly as a real condvar does. The
        /// atomicity is the point: a notify between "release" and
        /// "block" cannot be lost, only a notify before `wait` is
        /// entered at all — which is the lost-wakeup bug the deadlock
        /// detector then reports.
        pub fn condvar_wait(&self, me: usize, cv: usize, lock: usize) {
            let mut st = self.st();
            st.threads[me] = Status::BlockedOnCondvar(cv);
            st.locks[lock] = false;
            for s in st.threads.iter_mut() {
                if *s == Status::BlockedOnLock(lock) {
                    *s = Status::Runnable;
                }
            }
            if !st.abort {
                self.pick_next(&mut st);
            }
            self.cv.notify_all();
            while !(st.abort || st.threads[me] == Status::Runnable && st.current == me) {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let abort = st.abort;
            drop(st);
            if abort && !std::thread::panicking() {
                panic!("loom: execution aborted (sibling thread failed or deadlock)");
            }
        }

        /// Wake threads blocked on condvar `cv`: all of them, or (for
        /// `notify_one`) the lowest-index waiter — a deterministic
        /// choice, so exploration stays bounded. Notifying is itself a
        /// decision point.
        pub fn condvar_notify(&self, me: usize, cv: usize, all: bool) {
            {
                let mut st = self.st();
                for s in st.threads.iter_mut() {
                    if *s == Status::BlockedOnCondvar(cv) {
                        *s = Status::Runnable;
                        if !all {
                            break;
                        }
                    }
                }
            }
            self.yield_point(me);
        }

        pub fn join_wait(&self, me: usize, target: usize) {
            loop {
                {
                    let st = self.st();
                    if st.threads[target] == Status::Finished {
                        break;
                    }
                }
                self.block_and_wait(me, Status::BlockedOnJoin(target));
            }
        }

        /// Mark `me` finished (normally or by panic), wake joiners, and
        /// schedule whoever is next.
        pub fn finish(&self, me: usize, panicked: bool) {
            let mut st = self.st();
            st.threads[me] = Status::Finished;
            for s in st.threads.iter_mut() {
                if *s == Status::BlockedOnJoin(me) {
                    *s = Status::Runnable;
                }
            }
            if panicked && st.failure.is_none() {
                st.failure = Some(format!(
                    "a model thread panicked under schedule {:?}",
                    st.taken
                ));
                st.abort = true;
            }
            if st.threads.iter().any(|s| *s != Status::Finished) && !st.abort {
                self.pick_next(&mut st);
            }
            self.cv.notify_all();
        }
    }
}

use sched::{Sched, Status};

thread_local! {
    static CURRENT: RefCell<Option<(std::sync::Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (std::sync::Arc<Sched>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

/// Ends a managed thread even when its body panics.
struct FinishGuard {
    sched: std::sync::Arc<Sched>,
    tid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.sched.finish(self.tid, std::thread::panicking());
    }
}

/// Explore the interleavings of `f`. Panics (failing the enclosing
/// test) if any explored schedule deadlocks or panics.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = std::sync::Arc::new(f);
    let max_iters: usize = std::env::var("LOOM_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    let mut schedule: Vec<usize> = Vec::new();
    let mut iters = 0usize;
    loop {
        iters += 1;
        let sched = Sched::new(schedule.clone());
        let root_sched = std::sync::Arc::clone(&sched);
        let root_f = std::sync::Arc::clone(&f);
        let tid = sched.register_thread();
        debug_assert_eq!(tid, 0);
        let root = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((std::sync::Arc::clone(&root_sched), 0)));
            let _guard = FinishGuard {
                sched: root_sched,
                tid: 0,
            };
            root_f();
        });
        // Wait until every managed thread has finished.
        {
            let mut st = sched.st();
            while st.threads.iter().any(|s| *s != Status::Finished) && !st.abort {
                st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let _ = root.join();
        let (taken, counts, failure) = {
            let st = sched.st();
            (st.taken.clone(), st.counts.clone(), st.failure.clone())
        };
        if let Some(msg) = failure {
            panic!("loom: {msg} (iteration {iters})");
        }
        // DFS: advance the last choice that still has alternatives.
        let mut next = taken;
        loop {
            match next.last().copied() {
                None => {
                    return; // fully explored
                }
                Some(last) => {
                    let idx = next.len() - 1;
                    if last + 1 < counts.get(idx).copied().unwrap_or(1) {
                        if let Some(slot) = next.last_mut() {
                            *slot = last + 1;
                        }
                        break;
                    }
                    next.pop();
                }
            }
        }
        if iters >= max_iters {
            eprintln!(
                "loom: stopping after {iters} schedules (LOOM_MAX_ITERS); exploration incomplete"
            );
            return;
        }
        schedule = next;
    }
}

/// `loom::thread` — managed thread spawn/join.
pub mod thread {
    use super::*;

    /// Handle to a managed thread.
    pub struct JoinHandle<T> {
        tid: usize,
        result: std::sync::Arc<StdMutex<Option<T>>>,
        real: std::thread::JoinHandle<()>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its value.
        pub fn join(self) -> std::thread::Result<T> {
            let (sched, me) = current();
            sched.join_wait(me, self.tid);
            let _ = self.real.join();
            match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(v) => Ok(v),
                None => Err(Box::new("loom: joined thread panicked")),
            }
        }
    }

    /// Spawn a managed thread; it runs only when the scheduler picks it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, me) = current();
        let tid = sched.register_thread();
        let result = std::sync::Arc::new(StdMutex::new(None));
        let slot = std::sync::Arc::clone(&result);
        let child_sched = std::sync::Arc::clone(&sched);
        let real = std::thread::spawn(move || {
            CURRENT.with(|c| {
                *c.borrow_mut() = Some((std::sync::Arc::clone(&child_sched), tid));
            });
            let guard = FinishGuard {
                sched: std::sync::Arc::clone(&child_sched),
                tid,
            };
            // Run only once first scheduled.
            {
                let mut st = child_sched.st();
                while !st.abort && st.current != tid {
                    st = child_sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                if st.abort {
                    drop(st);
                    drop(guard);
                    return;
                }
            }
            let v = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            drop(guard);
        });
        // Spawning is itself a decision point: the child may or may not
        // run before the parent's next step.
        sched.yield_point(me);
        JoinHandle { tid, result, real }
    }

    /// A pure decision point.
    pub fn yield_now() {
        let (sched, me) = current();
        sched.yield_point(me);
    }
}

/// `loom::sync` — the modeled synchronization primitives.
pub mod sync {
    use super::*;
    pub use std::sync::Arc;

    /// A mutex whose acquire/release are scheduler decision points.
    pub struct Mutex<T> {
        id: std::sync::OnceLock<usize>,
        inner: StdMutex<T>,
    }

    /// Guard mirroring `std::sync::MutexGuard`.
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// A new unlocked mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: std::sync::OnceLock::new(),
                inner: StdMutex::new(value),
            }
        }

        fn id(&self) -> usize {
            *self.id.get_or_init(|| current().0.alloc_lock())
        }

        /// Acquire, exploring interleavings at the acquisition point.
        /// Always `Ok` (poisoning cannot happen: a panicking thread
        /// aborts the whole execution).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            let (sched, me) = current();
            let id = self.id();
            sched.lock_acquire(me, id);
            let inner = self
                .inner
                .try_lock()
                .unwrap_or_else(|_| panic!("loom: scheduler granted a held mutex"));
            Ok(MutexGuard {
                inner: Some(inner),
                lock: self,
            })
        }
    }

    impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard accessed after drop")
        }
    }

    impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard accessed after drop")
        }
    }

    impl<'a, T> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            // Release the data before the scheduler slot so the next
            // holder's `try_lock` cannot observe it still taken.
            self.inner.take();
            let (sched, me) = current();
            sched.lock_release(me, self.lock.id());
        }
    }

    /// A condition variable whose wait atomically releases the paired
    /// mutex — the primitive the hybrid store's spill-trigger handoff
    /// (writer trips the watermark, flusher wakes) is modeled with.
    /// `notify_one` deterministically wakes the lowest-index waiter.
    pub struct Condvar {
        id: std::sync::OnceLock<usize>,
    }

    impl Condvar {
        /// A new condvar with no waiters.
        pub fn new() -> Condvar {
            Condvar {
                id: std::sync::OnceLock::new(),
            }
        }

        fn id(&self) -> usize {
            *self.id.get_or_init(|| current().0.alloc_condvar())
        }

        /// Release `guard`'s mutex and sleep until notified, then
        /// re-acquire it (racing other acquirers, as with a real
        /// condvar). Always `Ok`; see [`Mutex::lock`] on poisoning.
        pub fn wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            let (sched, me) = current();
            let cv = self.id();
            let lock = guard.lock;
            // Drop the std-level guard first (mirroring MutexGuard::drop's
            // ordering), then skip that Drop: the scheduler-side release
            // happens atomically inside condvar_wait instead.
            guard.inner.take();
            std::mem::forget(guard);
            sched.condvar_wait(me, cv, lock.id());
            lock.lock()
        }

        /// Wake one waiter (the lowest-index one; deterministic).
        pub fn notify_one(&self) {
            let (sched, me) = current();
            let cv = self.id();
            sched.condvar_notify(me, cv, false);
        }

        /// Wake every waiter.
        pub fn notify_all(&self) {
            let (sched, me) = current();
            let cv = self.id();
            sched.condvar_notify(me, cv, true);
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    /// Scheduler-instrumented atomics. Every access is a decision
    /// point; all explored executions are sequentially consistent.
    pub mod atomic {
        use super::super::current;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($name:ident, $std:ty, $val:ty) => {
                /// Modeled atomic: each access is a scheduling point.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// A new atomic with `v` as initial value.
                    pub fn new(v: $val) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    fn point() {
                        let (sched, me) = current();
                        sched.yield_point(me);
                    }

                    /// Load (decision point).
                    pub fn load(&self, o: Ordering) -> $val {
                        Self::point();
                        self.inner.load(o)
                    }

                    /// Store (decision point).
                    pub fn store(&self, v: $val, o: Ordering) {
                        Self::point();
                        self.inner.store(v, o)
                    }

                    /// Swap (decision point).
                    pub fn swap(&self, v: $val, o: Ordering) -> $val {
                        Self::point();
                        self.inner.swap(v, o)
                    }
                }
            };
        }

        atomic_shim!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        impl AtomicU64 {
            /// Fetch-add (decision point).
            pub fn fetch_add(&self, v: u64, o: Ordering) -> u64 {
                Self::point();
                self.inner.fetch_add(v, o)
            }
        }

        impl AtomicUsize {
            /// Fetch-add (decision point).
            pub fn fetch_add(&self, v: usize, o: Ordering) -> usize {
                Self::point();
                self.inner.fetch_add(v, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

    #[test]
    fn mutex_counter_is_atomic_in_every_interleaving() {
        super::model(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        let mut g = c.lock().unwrap_or_else(|e| e.into_inner());
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap_or_else(|e| e.into_inner()), 2);
        });
    }

    #[test]
    fn explores_more_than_one_schedule() {
        let runs = std::sync::Arc::new(StdAtomicUsize::new(0));
        let r = std::sync::Arc::clone(&runs);
        super::model(move || {
            r.fetch_add(1, StdOrdering::Relaxed);
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let h = super::thread::spawn(move || f2.store(1, Ordering::SeqCst));
            let _saw = flag.load(Ordering::SeqCst); // may be 0 or 1
            h.join().unwrap();
        });
        assert!(
            runs.load(StdOrdering::Relaxed) > 1,
            "expected multiple interleavings, got {}",
            runs.load(StdOrdering::Relaxed)
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn abba_deadlock_is_found() {
        super::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = super::thread::spawn(move || {
                let _ga = a2.lock().unwrap_or_else(|e| e.into_inner());
                let _gb = b2.lock().unwrap_or_else(|e| e.into_inner());
            });
            let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
            let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
            drop((_gb, _ga));
            let _ = h.join();
        });
    }

    #[test]
    fn condvar_predicate_loop_hands_off_in_every_interleaving() {
        use super::sync::Condvar;
        super::model(|| {
            let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                // Predicate loop: immune to notify-before-wait.
                while *g == 0 {
                    g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                assert_eq!(*g, 1);
            });
            let (m, cv) = &*pair;
            {
                let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                *g = 1;
            }
            cv.notify_all();
            h.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn condvar_lost_wakeup_is_caught_as_deadlock() {
        use super::sync::Condvar;
        super::model(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                let g = m.lock().unwrap_or_else(|e| e.into_inner());
                // Unconditional wait, no predicate: in the schedule where
                // the notify lands first it is lost and this sleeps
                // forever — which exploration must report as a deadlock.
                let _g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
            });
            let (_, cv) = &*pair;
            cv.notify_one();
            let _ = h.join();
        });
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn assertion_failures_propagate() {
        super::model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let h = super::thread::spawn(move || v2.store(1, Ordering::SeqCst));
            // Wrong in the schedule where the child runs first.
            assert_eq!(v.load(Ordering::SeqCst), 0);
            h.join().unwrap();
        });
    }
}
