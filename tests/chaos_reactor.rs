//! Chaos test of the event-driven MOFSupplier: a multi-node shuffle
//! where every supplier serves from its reactor (epoll-style readiness
//! loop, zero-copy vectored transmits, permit-bounded disk workers)
//! under seeded resets, stalls past the read deadline, truncated
//! frames, and post-checksum payload corruption. The merged output must
//! be byte-exact against ground truth, the reactor must demonstrably
//! have served zero-copy, and a threaded supplier fed the identical
//! fault schedule must produce the identical bytes — the serve-loop
//! rewrite may change performance, never payloads.

use jbs::des::DetRng;
use jbs::mapred::merge::{is_sorted, sort_run, Record};
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, FaultKind, FaultPlan, Hook, MofStore, MofSupplierServer, NetMergerClient,
    RetryPolicy, ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use std::sync::Arc;
use std::time::Duration;

const REDUCERS: usize = 4;
const MAPS_PER_NODE: usize = 2;
const RECORDS_PER_MAP: usize = 600;

/// The reactor chaos plan: background resets, stalls longer than the
/// client's read deadline, truncated response frames, and payload
/// corruption injected *after* the CRC is computed — plus one forced
/// occurrence of each so the recovery counters are guaranteed to move.
fn reactor_plan(seed: u64) -> Arc<FaultPlan> {
    FaultPlan::builder(seed)
        .reset(Hook::ServerWriteResponse, 0.02)
        .stall(Hook::ServerWriteResponse, 0.02, Duration::from_millis(400))
        .truncate(Hook::ServerWriteResponse, 0.01)
        .corrupt_payload(Hook::ServerPayload, 0.02)
        .force(Hook::ServerWriteResponse, 3, FaultKind::Reset)
        .force(Hook::ServerWriteResponse, 7, FaultKind::Stall)
        .force(Hook::ServerWriteResponse, 11, FaultKind::Truncate)
        .force(Hook::ServerPayload, 2, FaultKind::CorruptPayload)
        .build()
}

/// Event-loop server options for the chaos cluster: small buffers so
/// every segment spans many chunks (many fault opportunities, deep
/// pipelines through the reactor), two reactor threads so cross-reactor
/// sharding is exercised too.
fn reactor_options(plan: Arc<FaultPlan>) -> ServerOptions {
    ServerOptions {
        buffer_bytes: 4 << 10,
        threaded: false,
        reactor_threads: 2,
        faults: Some(plan),
        ..ServerOptions::default()
    }
}

/// A client tuned to survive the plan: checksums on (corruption must be
/// detected, never merged), a read deadline shorter than the injected
/// stall, and a retry budget that rides out resets and truncations.
fn chaos_client() -> NetMergerClient {
    NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(30),
            max_backoff: Duration::from_millis(300),
            jitter_frac: 0.2,
        },
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_secs(1),
        integrity_retries: 32,
        ..ClientConfig::default()
    })
}

fn records_for_node(rng: &mut DetRng) -> Vec<Vec<Record>> {
    (0..MAPS_PER_NODE)
        .map(|_| gen_terasort_records(RECORDS_PER_MAP, rng))
        .collect()
}

#[test]
fn reactor_shuffle_survives_seeded_chaos_byte_exact() {
    let mut rng = DetRng::new(6808);
    let partitioner = HashPartitioner::new(REDUCERS);
    let mut all_records: Vec<Record> = Vec::new();

    let mut servers = Vec::new();
    let mut plans = Vec::new();
    for node in 0..3usize {
        let mut store = MofStore::temp().expect("store");
        for (m, records) in records_for_node(&mut rng).into_iter().enumerate() {
            all_records.extend(records.clone());
            store
                .write_mof((node * MAPS_PER_NODE + m) as u64, records, REDUCERS, |k| {
                    partitioner.partition(k)
                })
                .expect("write mof");
        }
        let plan = reactor_plan(6800 + node as u64);
        plans.push(Arc::clone(&plan));
        servers.push(
            MofSupplierServer::start_with_options(store, reactor_options(plan)).expect("server"),
        );
    }

    let segments_for = |reducer: usize| -> Vec<SegmentRef> {
        servers
            .iter()
            .enumerate()
            .flat_map(|(node, s)| {
                (0..MAPS_PER_NODE).map(move |m| SegmentRef {
                    addr: s.addr(),
                    mof: (node * MAPS_PER_NODE + m) as u64,
                    reducer: reducer as u32,
                })
            })
            .collect()
    };

    let client = chaos_client();
    let outputs: Vec<Vec<Record>> = (0..REDUCERS)
        .map(|r| {
            client
                .shuffle_and_merge(&segments_for(r))
                .expect("merge under reactor chaos")
        })
        .collect();

    // Byte-exact conservation: the union of reducer outputs equals the
    // generated records, faults notwithstanding.
    let mut got: Vec<Record> = outputs.iter().flatten().cloned().collect();
    let mut expect = all_records.clone();
    sort_run(&mut got);
    sort_run(&mut expect);
    assert_eq!(got.len(), expect.len(), "records lost or duplicated");
    assert_eq!(got, expect, "shuffled bytes differ from ground truth");
    for (r, out) in outputs.iter().enumerate() {
        assert!(is_sorted(out), "reducer {r} unsorted");
    }

    // The recovery machinery demonstrably fired against the reactor.
    // (Corruption *detection* is asserted by the focused test below —
    // here a corrupted frame can also die inside a window torn down by
    // a concurrent reset or stall, which is fine: byte-exactness above
    // already proves no corrupt byte reached the merge.)
    let fs = client.fetch_stats();
    assert!(fs.retries >= 1, "no retries recorded: {fs:?}");
    assert!(fs.resets >= 1, "no resets observed: {fs:?}");
    assert!(fs.timeouts >= 1, "no stall-driven timeouts: {fs:?}");

    // And the faults really were injected, not dodged.
    for plan in &plans {
        let ps = plan.stats();
        assert!(ps.resets >= 1, "plan injected no reset: {ps:?}");
        assert!(ps.stalls >= 1, "plan injected no stall: {ps:?}");
        assert!(
            ps.payload_corruptions >= 1,
            "plan injected no corruption: {ps:?}"
        );
    }

    // Reactor-mode coherence: the serve path was the zero-copy one (no
    // per-request payload memcpy), the disk workers staged through the
    // queue, and everything drains once traffic stops.
    for s in &servers {
        let mut snap = s.stats_snapshot();
        for _ in 0..400 {
            if snap.prefetch_queue_len == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            snap = s.stats_snapshot();
        }
        assert_eq!(snap.prefetch_queue_len, 0, "stage jobs stranded: {snap:?}");
        assert!(snap.requests >= 1 && snap.bytes >= 1, "{snap:?}");
        assert!(
            snap.zerocopy_bytes >= 1,
            "reactor never served zero-copy: {snap:?}"
        );
        assert!(
            snap.sync_stages + snap.prefetched_batches >= 1,
            "disk workers never staged: {snap:?}"
        );
        // Reactor serving leases slab buffers directly (`pool.lease`),
        // so the threaded get/put hit ledger stays flat; the lease
        // lifecycle invariant is that nothing stays pinned once the
        // response queues have flushed.
        let bp = snap.bufpool;
        assert_eq!(bp.outstanding, 0, "leases still pinned after drain: {bp:?}");
    }

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn reactor_detects_post_checksum_corruption() {
    // A corruption-only plan (no resets or stalls to tear windows down
    // mid-flight), so the client's integrity counters are deterministic:
    // every flipped payload byte must be caught by the CRC the reactor
    // sealed before the flip, re-fetched, and kept out of the merge.
    let mut rng = DetRng::new(555);
    let records = gen_terasort_records(2_000, &mut rng);
    let mut store = MofStore::temp().expect("store");
    store.write_mof(0, records, 1, |_| 0).expect("write mof");

    let plan = FaultPlan::builder(3)
        .corrupt_payload(Hook::ServerPayload, 0.05)
        .force(Hook::ServerPayload, 2, FaultKind::CorruptPayload)
        .build();
    let server = MofSupplierServer::start_with_options(
        store,
        ServerOptions {
            buffer_bytes: 4 << 10,
            threaded: false,
            faults: Some(Arc::clone(&plan)),
            ..ServerOptions::default()
        },
    )
    .expect("server");

    let client = chaos_client();
    let seg = SegmentRef {
        addr: server.addr(),
        mof: 0,
        reducer: 0,
    };
    let fetched = client.fetch_segment(seg).expect("fetch despite corruption");

    // Reference bytes from a fault-free threaded supplier over the same
    // records would require a second store; the cheaper ground truth is
    // the plan itself: corruption was injected, the client caught every
    // instance, and the fetched stream round-trips the record count.
    assert!(
        plan.stats().payload_corruptions >= 1,
        "plan injected no corruption: {:?}",
        plan.stats()
    );
    let fs = client.fetch_stats();
    assert!(
        fs.corrupt_frames + fs.corrupt_refetches >= 1,
        "corruption was never detected: {fs:?}"
    );

    // And a clean fetch of the same segment yields identical bytes —
    // the re-fetched chunks healed the stream.
    let clean = NetMergerClient::with_config(4 << 10, 8);
    let reference = clean.fetch_segment(seg).expect("clean fetch");
    assert_eq!(
        fetched, reference,
        "healed stream differs from ground truth"
    );

    server.shutdown();
}

#[test]
fn reactor_and_threaded_serve_identical_bytes_under_identical_chaos() {
    // The same MOFs behind an event-loop supplier and a threaded one,
    // each running the same seeded fault schedule: every reducer's
    // fetched bytes must be identical. The serve-loop rewrite may change
    // syscall counts, never payloads.
    let mut rng = DetRng::new(1313);
    let partitioner = HashPartitioner::new(REDUCERS);
    let records: Vec<Vec<Record>> = records_for_node(&mut rng);

    let store_for = || {
        let mut store = MofStore::temp().expect("store");
        for (m, recs) in records.clone().into_iter().enumerate() {
            store
                .write_mof(m as u64, recs, REDUCERS, |k| partitioner.partition(k))
                .expect("write mof");
        }
        store
    };

    let reactor = MofSupplierServer::start_with_options(
        store_for(),
        ServerOptions {
            buffer_bytes: 4 << 10,
            threaded: false,
            faults: Some(reactor_plan(99)),
            ..ServerOptions::default()
        },
    )
    .expect("reactor server");
    let threaded = MofSupplierServer::start_with_options(
        store_for(),
        ServerOptions {
            buffer_bytes: 4 << 10,
            threaded: true,
            faults: Some(reactor_plan(99)),
            ..ServerOptions::default()
        },
    )
    .expect("threaded server");

    let client = chaos_client();
    for reducer in 0..REDUCERS as u32 {
        for mof in 0..MAPS_PER_NODE as u64 {
            let via_reactor = client
                .fetch_segment(SegmentRef {
                    addr: reactor.addr(),
                    mof,
                    reducer,
                })
                .expect("reactor fetch");
            let via_threads = client
                .fetch_segment(SegmentRef {
                    addr: threaded.addr(),
                    mof,
                    reducer,
                })
                .expect("threaded fetch");
            assert_eq!(
                via_reactor, via_threads,
                "serve modes disagree on mof {mof} reducer {reducer}"
            );
        }
    }

    reactor.shutdown();
    threaded.shutdown();
}
