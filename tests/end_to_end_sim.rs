//! Cross-crate integration tests: full simulated jobs through every layer
//! (workloads → mapred simulator → shuffle engines → disk/net/jvm models),
//! checking conservation laws and cross-engine invariants.

use jbs::core::{EngineKind, HadoopShuffle, JbsShuffle};
use jbs::mapred::sim::ShuffleEngine;
use jbs::mapred::{ClusterConfig, JobResult, JobSimulator, JobSpec, ShufflePlan};
use jbs::net::Protocol;
use jbs::workloads::Benchmark;

fn tiny_sim(bytes: u64, protocol: Protocol) -> JobSimulator {
    JobSimulator::new(ClusterConfig::tiny(protocol), JobSpec::terasort(bytes))
}

#[test]
fn both_engines_conserve_shuffled_bytes() {
    let sim = tiny_sim(1 << 30, Protocol::IpoIb);
    let expect = 1i64 << 30;
    for r in [
        sim.run(&mut HadoopShuffle::new()),
        sim.run(&mut JbsShuffle::new()),
    ] {
        let diff = (r.bytes_shuffled as i64 - expect).unsigned_abs();
        assert!(diff < 64, "{}: shuffled {}", r.engine, r.bytes_shuffled);
    }
}

#[test]
fn engines_agree_on_the_map_phase() {
    // The map phase is engine-independent (JBS only replaces the shuffle).
    let sim = tiny_sim(1 << 30, Protocol::Rdma);
    let h = sim.run(&mut HadoopShuffle::new());
    let j = sim.run(&mut JbsShuffle::new());
    assert_eq!(h.map_phase_end, j.map_phase_end);
}

#[test]
fn every_table1_case_completes_every_benchmark() {
    for kind in EngineKind::all() {
        let cfg = ClusterConfig::tiny(kind.protocol());
        for bench in [Benchmark::Terasort, Benchmark::WordCount] {
            let sim = JobSimulator::new(cfg.clone(), bench.spec(256 << 20));
            let mut engine = kind.build();
            let r = sim.run(engine.as_mut());
            assert!(
                r.job_time > r.map_phase_end,
                "{} {:?}: no reduce phase",
                kind.label(),
                bench
            );
            assert!(r.reducer_done.iter().all(|&t| t <= r.job_time));
        }
    }
}

#[test]
fn jbs_never_spills_hadoop_does_under_pressure() {
    // 4 GiB over the tiny cluster: reducer inputs (~512 MB) overflow the
    // 700 MB shuffle buffer at the 66% trigger.
    let sim = tiny_sim(4 << 30, Protocol::IpoIb);
    let h = sim.run(&mut HadoopShuffle::new());
    let j = sim.run(&mut JbsShuffle::new());
    assert!(h.spilled_bytes > 0, "Hadoop should spill");
    assert_eq!(j.spilled_bytes, 0, "the levitated merge never spills");
}

#[test]
fn connection_counts_match_the_designs() {
    let sim = tiny_sim(1 << 30, Protocol::Rdma);
    let h = sim.run(&mut HadoopShuffle::new());
    let j = sim.run(&mut JbsShuffle::new());
    // Hadoop: one HTTP connection per segment fetch (16 MOFs x 8 reducers).
    assert_eq!(h.connections_established, 16 * 8);
    // JBS: at most one cached connection per node pair (4x4 incl. loopback).
    assert!(j.connections_established <= 16, "{}", j.connections_established);
    assert!(h.connections_established >= 8 * j.connections_established);
}

#[test]
fn deterministic_end_to_end_across_the_whole_stack() {
    let run = || -> (JobResult, JobResult) {
        let sim = tiny_sim(2 << 30, Protocol::RoCE);
        (
            sim.run(&mut HadoopShuffle::new()),
            sim.run(&mut JbsShuffle::new()),
        )
    };
    let (h1, j1) = run();
    let (h2, j2) = run();
    assert_eq!(h1.job_time, h2.job_time);
    assert_eq!(j1.job_time, j2.job_time);
    assert_eq!(h1.reducer_done, h2.reducer_done);
    assert_eq!(j1.reducer_done, j2.reducer_done);
}

#[test]
fn cpu_meters_cover_all_phases() {
    let sim = tiny_sim(1 << 30, Protocol::IpoIb);
    let r = sim.run(&mut JbsShuffle::new());
    let timeline = r.cpu_timeline();
    assert!(!timeline.is_empty());
    // Some bin in the map phase and some bin near the end must be busy.
    let map_bins = r.map_phase_end.as_secs_f64() as usize / 5;
    assert!(timeline[..map_bins.max(1)].iter().any(|&(_, u)| u > 0.0));
    assert!(timeline[map_bins.min(timeline.len() - 1)..]
        .iter()
        .any(|&(_, u)| u > 0.0));
    assert!(r.mean_cpu_utilization() > 0.0);
    assert!(r.mean_cpu_utilization() <= 100.0);
}

#[test]
fn more_nodes_speed_up_a_fixed_job() {
    // Strong scaling on the real testbed geometry (scaled input for test
    // speed): doubling nodes must cut the job time substantially.
    let spec = JobSpec::terasort(8 << 30);
    let small = JobSimulator::new(
        ClusterConfig::paper_testbed_scaled(Protocol::Rdma, 4),
        spec.clone(),
    )
    .run(&mut JbsShuffle::new());
    let large = JobSimulator::new(
        ClusterConfig::paper_testbed_scaled(Protocol::Rdma, 8),
        spec,
    )
    .run(&mut JbsShuffle::new());
    let speedup = small.job_time.as_secs_f64() / large.job_time.as_secs_f64();
    assert!(speedup > 1.4, "8 vs 4 nodes speedup {speedup}");
}

#[test]
fn shuffle_engines_handle_single_node_clusters() {
    let mut cfg = ClusterConfig::tiny(Protocol::Tcp1GigE);
    cfg.slaves = 1;
    let sim = JobSimulator::new(cfg, JobSpec::terasort(128 << 20));
    let h = sim.run(&mut HadoopShuffle::new());
    let j = sim.run(&mut JbsShuffle::new());
    // Everything is a loopback fetch; both must still complete.
    assert!(h.job_time > h.map_phase_end);
    assert!(j.job_time > j.map_phase_end);
}

#[test]
fn synthetic_plans_run_via_the_public_engine_api() {
    use jbs::mapred::sim::SimCluster;
    let mut cluster = SimCluster::new(ClusterConfig::tiny(Protocol::Rdma), 9);
    let plan = ShufflePlan::synthetic(4, 2, 2, 1 << 20, 100);
    cluster.warm_mofs(&plan);
    let out = JbsShuffle::new().run(&mut cluster, &plan);
    assert_eq!(out.ready.len(), 8);
    assert_eq!(out.bytes_fetched, plan.total_shuffle_bytes());
}
