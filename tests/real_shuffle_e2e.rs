//! End-to-end test of the real TCP dataplane: a full multi-node shuffle
//! over 127.0.0.1 with byte-exact verification against a reference sort.

use jbs::des::DetRng;
use jbs::mapred::merge::{is_sorted, sort_run, Record};
use jbs::transport::client::SegmentRef;
use jbs::transport::{MofStore, MofSupplierServer, NetMergerClient};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner, RangePartitioner};

struct MiniCluster {
    servers: Vec<MofSupplierServer>,
    /// All records ever generated (the ground truth).
    all_records: Vec<Record>,
    maps_per_node: usize,
    reducers: usize,
}

fn build_cluster<P: Partitioner>(
    nodes: usize,
    maps_per_node: usize,
    records_per_map: usize,
    reducers: usize,
    partitioner: &P,
    rng: &mut DetRng,
) -> MiniCluster {
    let mut servers = Vec::new();
    let mut all_records = Vec::new();
    for node in 0..nodes {
        let mut store = MofStore::temp().expect("store");
        for m in 0..maps_per_node {
            let records = gen_terasort_records(records_per_map, rng);
            all_records.extend(records.clone());
            store
                .write_mof((node * maps_per_node + m) as u64, records, reducers, |k| {
                    partitioner.partition(k)
                })
                .expect("write mof");
        }
        servers.push(MofSupplierServer::start(store).expect("server"));
    }
    MiniCluster {
        servers,
        all_records,
        maps_per_node,
        reducers,
    }
}

impl MiniCluster {
    fn segments_for(&self, reducer: usize) -> Vec<SegmentRef> {
        self.servers
            .iter()
            .enumerate()
            .flat_map(|(node, s)| {
                (0..self.maps_per_node).map(move |m| SegmentRef {
                    addr: s.addr(),
                    mof: (node * self.maps_per_node + m) as u64,
                    reducer: reducer as u32,
                })
            })
            .collect()
    }

    fn shuffle_all(&self, client: &NetMergerClient) -> Vec<Vec<Record>> {
        (0..self.reducers)
            .map(|r| client.shuffle_and_merge(&self.segments_for(r)).expect("merge"))
            .collect()
    }
}

#[test]
fn hash_partitioned_shuffle_is_byte_exact() {
    let mut rng = DetRng::new(77);
    let partitioner = HashPartitioner::new(4);
    let cluster = build_cluster(3, 2, 800, 4, &partitioner, &mut rng);
    let client = NetMergerClient::new();
    let outputs = cluster.shuffle_all(&client);

    // Byte-exact conservation: the union of reducer outputs equals the
    // generated records.
    let mut got: Vec<Record> = outputs.iter().flatten().cloned().collect();
    let mut expect = cluster.all_records.clone();
    sort_run(&mut got);
    sort_run(&mut expect);
    assert_eq!(got, expect);

    // Each reducer's stream is sorted and correctly partitioned.
    for (r, out) in outputs.iter().enumerate() {
        assert!(is_sorted(out), "reducer {r} unsorted");
        assert!(out.iter().all(|(k, _)| partitioner.partition(k) == r));
    }
}

#[test]
fn range_partitioned_shuffle_is_globally_sorted() {
    let mut rng = DetRng::new(78);
    let sample: Vec<Vec<u8>> = gen_terasort_records(1000, &mut rng)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let partitioner = RangePartitioner::sampled(&sample, 400, 3, &mut rng);
    let cluster = build_cluster(2, 2, 600, 3, &partitioner, &mut rng);
    let client = NetMergerClient::new();
    let outputs = cluster.shuffle_all(&client);

    // Concatenated reducer outputs form one globally sorted run — the
    // Terasort property.
    let concat: Vec<Record> = outputs.into_iter().flatten().collect();
    assert_eq!(concat.len(), cluster.all_records.len());
    assert!(is_sorted(&concat), "global order violated");
}

#[test]
fn consolidation_uses_one_connection_per_supplier() {
    let mut rng = DetRng::new(79);
    let partitioner = HashPartitioner::new(2);
    let cluster = build_cluster(4, 1, 300, 2, &partitioner, &mut rng);
    let client = NetMergerClient::new();
    let _ = cluster.shuffle_all(&client);
    let stats = client.stats();
    assert_eq!(
        stats.connections_established, 4,
        "one connection per node pair, reused across reducers and segments"
    );
    assert!(stats.connections_reused > 0);
    assert!(stats.bytes_fetched > 0);
}

#[test]
fn small_buffers_still_reassemble_exactly() {
    // An 4 KB transport buffer forces many chunked round trips per segment.
    let mut rng = DetRng::new(80);
    let partitioner = HashPartitioner::new(2);
    let cluster = build_cluster(2, 1, 500, 2, &partitioner, &mut rng);
    let tiny = NetMergerClient::with_config(4 << 10, 512);
    let big = NetMergerClient::with_config(1 << 20, 512);
    for r in 0..2 {
        let segs = cluster.segments_for(r);
        let a = tiny.shuffle_and_merge(&segs).unwrap();
        let b = big.shuffle_and_merge(&segs).unwrap();
        assert_eq!(a, b, "buffer size must not change the merged stream");
    }
}

#[test]
fn server_datacache_sees_grouped_requests() {
    let mut rng = DetRng::new(81);
    let partitioner = HashPartitioner::new(1);
    let cluster = build_cluster(1, 1, 4000, 1, &partitioner, &mut rng);
    // Small buffers so one segment takes many chunks through the server's
    // read-ahead.
    let client = NetMergerClient::with_config(8 << 10, 512);
    let out = client.shuffle_and_merge(&cluster.segments_for(0)).unwrap();
    assert_eq!(out.len(), 4000);
    let stats = cluster.servers[0].stats();
    let hits = stats.datacache_hits.load(std::sync::atomic::Ordering::Relaxed);
    let reqs = stats.requests.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        hits * 2 > reqs,
        "read-ahead should serve most chunks: {hits}/{reqs}"
    );
}
