//! The paper's headline claims, asserted as tests at reduced scale.
//!
//! These run the real experiment pipeline (the same code as the `fig*`
//! binaries) on a smaller cluster so `cargo test` stays fast; the full
//! 22-slave numbers live in EXPERIMENTS.md.

use jbs::core::{EngineKind, JbsConfig};
use jbs::mapred::{ClusterConfig, JobResult, JobSimulator, JobSpec};
use jbs::workloads::Benchmark;

const SLAVES: usize = 6;

fn run(kind: EngineKind, spec: JobSpec) -> JobResult {
    let cfg = ClusterConfig::paper_testbed_scaled(kind.protocol(), SLAVES);
    let sim = JobSimulator::new(cfg, spec);
    let mut engine = kind.build();
    sim.run(engine.as_mut())
}

fn run_with(kind: EngineKind, jbs: JbsConfig, spec: JobSpec) -> JobResult {
    let cfg = ClusterConfig::paper_testbed_scaled(kind.protocol(), SLAVES);
    let sim = JobSimulator::new(cfg, spec);
    let mut engine = kind.build_with(jbs);
    sim.run(engine.as_mut())
}

fn secs(r: &JobResult) -> f64 {
    r.job_time.as_secs_f64()
}

/// ~70 GB at 22 slaves ≈ 19 GB at 6 slaves: the disk-bound regime where
/// JBS's prefetching and spill-free merge dominate (Fig. 7's right side).
const LARGE: u64 = 40 << 30;
/// The cache-friendly regime (Fig. 7's left side).
const SMALL: u64 = 6 << 30;

#[test]
fn jbs_beats_hadoop_on_large_jobs_fig7() {
    let hadoop = run(EngineKind::HadoopOnIpoIb, JobSpec::terasort(LARGE));
    let jbs = run(EngineKind::JbsOnIpoIb, JobSpec::terasort(LARGE));
    let gain = (secs(&hadoop) - secs(&jbs)) / secs(&hadoop);
    assert!(
        gain > 0.10,
        "JBS-IPoIB vs Hadoop-IPoIB at large size: {:.1}% (paper: 14-22%)",
        gain * 100.0
    );
}

#[test]
fn high_speed_networks_help_hadoop_only_when_cached_fig7() {
    let small_1g = run(EngineKind::HadoopOn1GigE, JobSpec::terasort(SMALL));
    let small_ipoib = run(EngineKind::HadoopOnIpoIb, JobSpec::terasort(SMALL));
    let small_gain = (secs(&small_1g) - secs(&small_ipoib)) / secs(&small_1g);
    assert!(
        small_gain > 0.20,
        "IPoIB should speed small Hadoop jobs: {:.1}% (paper: ~55%)",
        small_gain * 100.0
    );

    let large_10g = run(EngineKind::HadoopOn10GigE, JobSpec::terasort(LARGE));
    let large_ipoib = run(EngineKind::HadoopOnIpoIb, JobSpec::terasort(LARGE));
    let large_gap =
        (secs(&large_10g) - secs(&large_ipoib)).abs() / secs(&large_10g);
    assert!(
        large_gap < 0.10,
        "at large sizes fast networks converge for Hadoop (disk-bound): gap {:.1}%",
        large_gap * 100.0
    );
}

#[test]
fn hadoop_ipoib_and_sdp_are_close_fig7a() {
    let ipoib = run(EngineKind::HadoopOnIpoIb, JobSpec::terasort(SMALL));
    let sdp = run(EngineKind::HadoopOnSdp, JobSpec::terasort(SMALL));
    let gap = (secs(&ipoib) - secs(&sdp)).abs() / secs(&ipoib);
    assert!(gap < 0.05, "IPoIB vs SDP gap {:.1}% (paper: 'very close')", gap * 100.0);
}

#[test]
fn rdma_beats_ipoib_for_jbs_fig8() {
    let ipoib = run(EngineKind::JbsOnIpoIb, JobSpec::terasort(SMALL));
    let rdma = run(EngineKind::JbsOnRdma, JobSpec::terasort(SMALL));
    assert!(
        secs(&rdma) < secs(&ipoib),
        "RDMA {:.1}s vs IPoIB {:.1}s",
        secs(&rdma),
        secs(&ipoib)
    );
    let roce = run(EngineKind::JbsOnRoce, JobSpec::terasort(SMALL));
    let tcp10 = run(EngineKind::JbsOn10GigE, JobSpec::terasort(SMALL));
    assert!(secs(&roce) < secs(&tcp10), "RoCE must beat TCP on the same wire");
}

#[test]
fn jbs_halves_cpu_utilization_fig10() {
    let hadoop = run(EngineKind::HadoopOnIpoIb, JobSpec::terasort(LARGE));
    let jbs = run(EngineKind::JbsOnIpoIb, JobSpec::terasort(LARGE));
    let cut = (hadoop.mean_cpu_utilization() - jbs.mean_cpu_utilization())
        / hadoop.mean_cpu_utilization();
    assert!(
        (0.25..0.75).contains(&cut),
        "CPU utilization reduction {:.1}% (paper: 48.1%)",
        cut * 100.0
    );
}

#[test]
fn buffer_sweet_spot_is_around_128kb_fig11() {
    let spec = JobSpec::terasort(SMALL);
    let t8 = secs(&run_with(
        EngineKind::JbsOnRdma,
        JbsConfig::with_buffer(8 << 10),
        spec.clone(),
    ));
    let t128 = secs(&run_with(
        EngineKind::JbsOnRdma,
        JbsConfig::with_buffer(128 << 10),
        spec.clone(),
    ));
    let t512 = secs(&run_with(
        EngineKind::JbsOnRdma,
        JbsConfig::with_buffer(512 << 10),
        spec,
    ));
    assert!(t128 < t8, "128KB {t128:.1}s must beat 8KB {t8:.1}s");
    assert!(
        t512 < t8 && (t512 - t128) / t128 > -0.10,
        "curve levels off past 128KB: 128KB {t128:.1}s, 512KB {t512:.1}s"
    );
}

#[test]
fn shuffle_heavy_benchmarks_gain_light_ones_do_not_fig12() {
    // Large enough that the shuffle-heavy intermediate data overflows the
    // 6 GB/node page cache on 6 slaves — the regime where JBS's prefetch
    // and spill-free merge matter (WordCount/Grep stay tiny and cached).
    let scale = 24u64 << 30;
    let gain = |b: Benchmark| {
        let h = run(EngineKind::HadoopOnIpoIb, b.spec(scale));
        let j = run(EngineKind::JbsOnRdma, b.spec(scale));
        (secs(&h) - secs(&j)) / secs(&h)
    };
    let adjacency = gain(Benchmark::AdjacencyList);
    let wordcount = gain(Benchmark::WordCount);
    let grep = gain(Benchmark::Grep);
    assert!(
        adjacency > 0.10,
        "AdjacencyList gain {:.1}% (paper: up to 66.3%)",
        adjacency * 100.0
    );
    assert!(
        adjacency > wordcount + 0.10 && adjacency > grep + 0.10,
        "shuffle-heavy must gain much more: adj {:.2} vs wc {:.2} / grep {:.2}",
        adjacency,
        wordcount,
        grep
    );
    assert!(
        wordcount.abs() < 0.25 && grep.abs() < 0.25,
        "WordCount/Grep see no large change: {:.2} / {:.2}",
        wordcount,
        grep
    );
}

#[test]
fn strong_scaling_reduces_job_time_fig9() {
    let spec = JobSpec::terasort(24 << 30);
    let small = JobSimulator::new(
        ClusterConfig::paper_testbed_scaled(EngineKind::JbsOnRdma.protocol(), 4),
        spec.clone(),
    )
    .run(EngineKind::JbsOnRdma.build().as_mut());
    let large = JobSimulator::new(
        ClusterConfig::paper_testbed_scaled(EngineKind::JbsOnRdma.protocol(), 8),
        spec,
    )
    .run(EngineKind::JbsOnRdma.build().as_mut());
    assert!(small.job_time.as_secs_f64() / large.job_time.as_secs_f64() > 1.5);
}

#[test]
fn weak_scaling_is_stable_fig9() {
    // 6 GB per reducer: doubling nodes doubles input; time should stay
    // roughly flat.
    let t = |slaves: usize| {
        let input = 6u64 << 30;
        let spec = JobSpec::terasort(input * 2 * slaves as u64);
        let cfg = ClusterConfig::paper_testbed_scaled(EngineKind::JbsOnRdma.protocol(), slaves);
        JobSimulator::new(cfg, spec)
            .run(EngineKind::JbsOnRdma.build().as_mut())
            .job_time
            .as_secs_f64()
    };
    let t4 = t(4);
    let t8 = t(8);
    let drift = (t8 - t4).abs() / t4;
    assert!(drift < 0.25, "weak scaling drift {:.1}%", drift * 100.0);
}
