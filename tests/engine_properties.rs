//! Property-based tests over the shuffle engines and resource models:
//! conservation laws and orderings that must hold for *any* workload
//! shape, not just the paper's.

use jbs::core::baseline::{HadoopConfig, HadoopShuffle};
use jbs::core::{JbsConfig, JbsShuffle};
use jbs::des::{CpuMeter, DetRng, SimTime};
use jbs::disk::{DiskParams, FileId, NodeStorage};
use jbs::jvm::{GcModel, GcParams};
use jbs::mapred::sim::plan::{MofInfo, ReducerInfo};
use jbs::mapred::sim::{ShuffleEngine, SimCluster};
use jbs::mapred::{ClusterConfig, ShufflePlan};
use jbs::net::Protocol;
use proptest::prelude::*;

/// Build a random-but-valid shuffle plan on a 3-node tiny cluster.
fn arb_plan() -> impl Strategy<Value = ShufflePlan> {
    let seg = 0u64..(2 << 20);
    let mof = (0usize..3, prop::collection::vec(seg, 6), 0u64..20).prop_map(
        |(node, seg_bytes, ready_s)| (node, seg_bytes, SimTime::from_secs(ready_s)),
    );
    prop::collection::vec(mof, 1..6).prop_map(|mofs| {
        let mofs = mofs
            .into_iter()
            .enumerate()
            .map(|(i, (node, seg_bytes, ready))| MofInfo {
                mof_id: i,
                node,
                file: FileId(2 * i as u64),
                index_file: FileId(2 * i as u64 + 1),
                ready,
                seg_bytes,
            })
            .collect();
        let reducers = (0..6)
            .map(|id| ReducerInfo { id, node: id % 3 })
            .collect();
        ShufflePlan {
            mofs,
            reducers,
            avg_record_bytes: 100,
        }
    })
}

fn run_engine(engine: &mut dyn ShuffleEngine, plan: &ShufflePlan, seed: u64) -> jbs::mapred::ShuffleOutcome {
    let mut cfg = ClusterConfig::tiny(Protocol::IpoIb);
    cfg.slaves = 3;
    let mut cluster = SimCluster::new(cfg, seed);
    cluster.warm_mofs(plan);
    engine.run(&mut cluster, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both engines move exactly the plan's bytes and report every
    /// reducer ready no earlier than the last MOF commit.
    #[test]
    fn engines_conserve_bytes_and_respect_the_barrier(plan in arb_plan()) {
        prop_assert!(plan.validate().is_ok());
        let barrier = plan.last_mof_ready();
        for mk in [0usize, 1] {
            let mut jbs_engine;
            let mut hadoop_engine;
            let engine: &mut dyn ShuffleEngine = if mk == 0 {
                jbs_engine = JbsShuffle::new();
                &mut jbs_engine
            } else {
                hadoop_engine = HadoopShuffle::new();
                &mut hadoop_engine
            };
            let out = run_engine(engine, &plan, 9);
            prop_assert_eq!(out.bytes_fetched, plan.total_shuffle_bytes(), "{}", out.engine);
            prop_assert_eq!(out.ready.len(), plan.reducers.len());
            for (r, &t) in out.ready.iter().enumerate() {
                prop_assert!(t >= barrier, "{} reducer {r}: {t} before barrier {barrier}", out.engine);
            }
        }
    }

    /// Engines are deterministic functions of (plan, seed, config).
    #[test]
    fn engines_are_deterministic(plan in arb_plan(), seed in 0u64..100) {
        let a = run_engine(&mut JbsShuffle::new(), &plan, seed);
        let b = run_engine(&mut JbsShuffle::new(), &plan, seed);
        prop_assert_eq!(a.ready, b.ready);
        let c = run_engine(&mut HadoopShuffle::new(), &plan, seed);
        let d = run_engine(&mut HadoopShuffle::new(), &plan, seed);
        prop_assert_eq!(c.ready, d.ready);
    }

    /// JBS never spills; Hadoop's per-fetch connections always dominate
    /// JBS's consolidated per-pair connections.
    #[test]
    fn structural_invariants(plan in arb_plan()) {
        let j = run_engine(&mut JbsShuffle::new(), &plan, 1);
        let h = run_engine(&mut HadoopShuffle::new(), &plan, 1);
        prop_assert_eq!(j.spilled_bytes, 0);
        prop_assert!(j.connections_established <= 9, "at most one per node pair");
        let nonempty_segs: u64 = plan
            .mofs
            .iter()
            .flat_map(|m| m.seg_bytes.iter())
            .filter(|&&b| b > 0)
            .count() as u64;
        prop_assert_eq!(h.connections_established, nonempty_segs);
    }

    /// Shrinking the JBS connection cache can only add establishments,
    /// never change what is fetched.
    #[test]
    fn connection_cap_affects_only_connection_counts(plan in arb_plan(), cap in 1usize..16) {
        let base = run_engine(&mut JbsShuffle::new(), &plan, 3);
        let mut small = JbsShuffle::with_config(JbsConfig {
            max_connections: cap,
            ..JbsConfig::default()
        });
        let capped = run_engine(&mut small, &plan, 3);
        prop_assert_eq!(capped.bytes_fetched, base.bytes_fetched);
        prop_assert!(capped.connections_established >= base.connections_established);
    }

    /// Disk: grouped (sequential) reads never lose to the same reads
    /// interleaved across files.
    #[test]
    fn grouped_disk_reads_beat_interleaved(nfiles in 2usize..6, chunks in 2usize..20) {
        let params = DiskParams::sata_500gb();
        let chunk = 256u64 << 10;
        let mut grouped = NodeStorage::new(1, params.clone(), 1 << 20);
        let mut t_grouped = SimTime::ZERO;
        for f in 0..nfiles {
            for c in 0..chunks {
                t_grouped = grouped
                    .read(t_grouped, FileId(f as u64), c as u64 * chunk, chunk)
                    .completed;
            }
        }
        let mut inter = NodeStorage::new(1, params, 1 << 20);
        let mut t_inter = SimTime::ZERO;
        for c in 0..chunks {
            for f in 0..nfiles {
                t_inter = inter
                    .read(t_inter, FileId(f as u64), c as u64 * chunk, chunk)
                    .completed;
            }
        }
        prop_assert!(t_grouped <= t_inter);
    }

    /// GC: pauses are monotone in allocation and the heap stays bounded.
    #[test]
    fn gc_pause_monotone_and_heap_bounded(allocs in prop::collection::vec(1u64..(64 << 20), 1..200)) {
        let params = GcParams::task_jvm_1g();
        let mut gc = GcModel::new(params.clone());
        let mut last_total = SimTime::ZERO;
        for a in allocs {
            gc.allocate(a);
            let total = gc.stats().total_pause;
            prop_assert!(total >= last_total);
            prop_assert!(gc.old_used() < params.heap_bytes);
            last_total = total;
        }
    }

    /// CPU meter: utilization is bounded and busy time equals the charges.
    #[test]
    fn cpu_meter_conserves_charges(
        charges in prop::collection::vec((0u64..100, 1u64..50, 0.1f64..4.0), 1..60)
    ) {
        let mut m = CpuMeter::new(4, SimTime::from_secs(5));
        let mut expect = 0.0;
        for (start_s, dur_s, par) in charges {
            m.charge(SimTime::from_secs(start_s), SimTime::from_secs(dur_s), par);
            expect += dur_s as f64 * par.min(4.0);
        }
        prop_assert!((m.busy_core_secs() - expect).abs() < 1e-6);
        for (_, u) in m.utilization_series() {
            prop_assert!((0.0..=100.0 + 1e-9).contains(&u));
        }
        // Busy core-seconds reconstructed from the bins can only lose to
        // clamping (a bin cannot exceed 100% even if charges overlap past
        // the core count), never gain.
        let bins: f64 = m
            .utilization_series()
            .iter()
            .map(|&(_, u)| u / 100.0 * 4.0 * 5.0)
            .sum();
        prop_assert!(bins <= expect + 1e-6);
    }

    /// A heartbeat of zero makes the Hadoop engine's readiness independent
    /// of the RNG seed (the only stochastic part of the engine).
    #[test]
    fn zero_heartbeat_is_seed_independent(plan in arb_plan(), s1 in 0u64..50, s2 in 50u64..100) {
        let mk = || HadoopShuffle::with_config(HadoopConfig {
            heartbeat: SimTime::ZERO,
            ..HadoopConfig::default()
        });
        let a = run_engine(&mut mk(), &plan, s1);
        let b = run_engine(&mut mk(), &plan, s2);
        prop_assert_eq!(a.ready, b.ready);
    }
}

/// Non-proptest sanity: the RNG-driven plan generator itself is exercised
/// deterministically.
#[test]
fn plan_generator_smoke() {
    let mut rng = DetRng::new(5);
    let v = rng.uniform_u64(0, 10);
    assert!(v < 10);
}
