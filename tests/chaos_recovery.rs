//! Kill-restart chaos test: the crash-consistency epilogue to
//! `chaos_cluster`. A 3-supplier real-socket shuffle runs over
//! *durable* hybrid stores (every LOCALFILE commit fsynced and
//! manifested) with the control plane driving failover. One supplier is
//! crash-stopped mid-shuffle; the survivors carry wave 2 by replica
//! failover. Then the dead supplier comes BACK: its store is rebuilt
//! from the surviving directory with [`HybridStore::recover`], a fresh
//! server binds the same address, a new heartbeater re-registers it —
//! fenced to incarnation 2 — and the monitor restores its routes. The
//! final wave re-fetches everything through the restarted primary and
//! must merge byte-exact, and the trace must record the recovery
//! protocol in causal order:
//!
//! `failover.redirect` ≺ `store.recover` ≺ `registry.register`
//! (incarnation 2) ≺ `route.restore`.

use jbs::control::{ControlClock, HeartbeatLoad, Heartbeater, Monitor, Registry, Replicator};
use jbs::des::DetRng;
use jbs::mapred::merge::{is_sorted, sort_run, Record};
use jbs::obs::Trace;
use jbs::store_hybrid::{HybridConfig, HybridStore};
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, FaultKind, FaultPlan, Hook, MofStore, MofSupplierServer, NetMergerClient,
    RetryPolicy, RouteTable, ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 3;
const REDUCERS: usize = 4;
const MAPS_PER_NODE: usize = 2;
const RECORDS_PER_MAP: usize = 400;
/// Append granularity into the replicated hybrid stores. Far above the
/// durable stores' memory budget, so every replicated chunk takes the
/// oversize direct path: fsynced extent + manifested commit.
const CHUNK: usize = 4 << 10;
/// The node that gets crash-stopped and then recovered.
const VICTIM: usize = 1;

/// Seeded resets and stalls on the serving path, with one forced
/// occurrence of each so the counters are guaranteed to move.
fn chaos_plan(seed: u64) -> Arc<FaultPlan> {
    FaultPlan::builder(seed)
        .reset(Hook::ServerWriteResponse, 0.01)
        .stall(Hook::ServerWriteResponse, 0.01, Duration::from_millis(20))
        .force(Hook::ServerWriteResponse, 3, FaultKind::Reset)
        .force(Hook::ServerWriteResponse, 7, FaultKind::Stall)
        .build()
}

/// Per-node surviving directories; removed only when the test ends, so
/// the victim's data outlives its first process lifetime.
struct NodeDirs {
    base: PathBuf,
}

impl NodeDirs {
    fn fresh(node: usize) -> NodeDirs {
        let base = std::env::temp_dir().join(format!(
            "jbs-chaos-recovery-{}-{node}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        NodeDirs { base }
    }

    /// A durable-spill config over this node's pinned directories. A
    /// one-byte memory budget makes EVERY append an oversize direct
    /// write, so the on-disk state is byte-complete at any kill point.
    fn cfg(&self, trace: Trace) -> HybridConfig {
        HybridConfig {
            memory_budget: 1,
            huge_partition_limit: 1,
            durable_spill: true,
            manifest_sync_interval: 1,
            data_dir: Some(self.base.join("data")),
            remote_dir: Some(self.base.join("remote")),
            trace,
            ..HybridConfig::default()
        }
    }
}

impl Drop for NodeDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

/// Dump a trace's JSONL next to the build artifacts so CI can upload it.
fn dump_trace(trace: &Trace, name: &str) {
    let dir = std::path::Path::new("target/traces");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), trace.to_jsonl());
    }
}

/// Materialize map outputs as byte-real MOF segments via a scratch
/// on-disk store.
fn segment_bytes(
    node: usize,
    maps: &[Vec<Record>],
    partitioner: &HashPartitioner,
) -> Vec<(u64, u32, Vec<u8>)> {
    let mut scratch = MofStore::temp().expect("scratch store");
    let mut out = Vec::new();
    for (m, records) in maps.iter().enumerate() {
        let mof = (node * MAPS_PER_NODE + m) as u64;
        scratch
            .write_mof(mof, records.clone(), REDUCERS, |k| partitioner.partition(k))
            .expect("write mof");
        for r in 0..REDUCERS as u32 {
            let bytes = scratch
                .read_segment_range(mof, r, 0, 0)
                .expect("read segment")
                .expect("segment exists");
            assert!(!bytes.is_empty(), "workload left reducer {r} empty");
            out.push((mof, r, bytes));
        }
    }
    out
}

/// Earliest timestamp of the events `pred` accepts, if any.
fn first_t(events: &[jbs::obs::Event], pred: impl Fn(&jbs::obs::Event) -> bool) -> Option<u64> {
    events.iter().filter(|e| pred(e)).map(|e| e.t).min()
}

#[test]
fn killed_supplier_recovers_to_serving_with_fenced_reregistration() {
    let started = Instant::now();
    let trace = Trace::recording(1 << 20);
    let mut rng = DetRng::new(4242);
    let partitioner = HashPartitioner::new(REDUCERS);

    // Control plane: registry (RF=2, fast expiry), route table, clock.
    let registry = Arc::new(Registry::new(jbs::control::RegistryConfig {
        heartbeat_interval_nanos: 25_000_000, // 25ms
        unhealthy_after_missed: 2,
        replication: 2,
        trace: trace.clone(),
        ..jbs::control::RegistryConfig::default()
    }));
    let routes = Arc::new(RouteTable::new());
    let clock = ControlClock::new();

    // Three durable hybrid suppliers over pinned directories, each
    // under seeded resets/stalls.
    let dirs: Vec<NodeDirs> = (0..NODES).map(NodeDirs::fresh).collect();
    let mut hybrids = Vec::new();
    let mut servers: Vec<Option<MofSupplierServer>> = Vec::new();
    let mut plans = Vec::new();
    for (n, dir) in dirs.iter().enumerate() {
        let hybrid = HybridStore::new(dir.cfg(trace.clone())).expect("hybrid store");
        let plan = chaos_plan(700 + n as u64);
        let server = MofSupplierServer::start_with_options(
            MofStore::temp().expect("empty disk store"),
            ServerOptions {
                buffer_bytes: 4 << 10,
                faults: Some(Arc::clone(&plan)),
                trace: trace.clone(),
                hybrid: Some(Arc::clone(&hybrid)),
                ..ServerOptions::default()
            },
        )
        .expect("supplier");
        hybrids.push(hybrid);
        plans.push(plan);
        servers.push(Some(server));
    }
    let addrs: Vec<std::net::SocketAddr> =
        servers.iter().map(|s| s.as_ref().unwrap().addr()).collect();

    let mut heartbeaters: Vec<Option<Heartbeater>> = Vec::new();
    for n in 0..NODES {
        let h = Arc::clone(&hybrids[n]);
        heartbeaters.push(Some(Heartbeater::spawn(
            Arc::clone(&registry),
            Arc::clone(&clock),
            addrs[n],
            Duration::from_millis(8),
            move || {
                let t = h.stats();
                HeartbeatLoad {
                    memory_bytes: t.memory_bytes,
                    spilled_bytes: t.spilled_bytes,
                    remote_bytes: t.remote_bytes,
                    ..HeartbeatLoad::default()
                }
            },
        )));
    }
    let monitor = Monitor::spawn(
        Arc::clone(&registry),
        Arc::clone(&clock),
        Arc::clone(&routes),
        Duration::from_millis(10),
    );
    for (n, &a) in addrs.iter().enumerate() {
        assert_eq!(
            registry.incarnation(a),
            Some(1),
            "node {n} first registration is incarnation 1"
        );
    }

    // Generate the workload and replicate every segment at RF=2 through
    // the registry's placement, chunk by chunk, every chunk durable.
    let mut all_records: Vec<Record> = Vec::new();
    let mut replicator = Replicator::new(Arc::clone(&registry), trace.clone());
    for (a, h) in addrs.iter().zip(&hybrids) {
        replicator.add_store(*a, Arc::clone(h));
    }
    for (n, &primary) in addrs.iter().enumerate() {
        let maps: Vec<Vec<Record>> = (0..MAPS_PER_NODE)
            .map(|_| gen_terasort_records(RECORDS_PER_MAP, &mut rng))
            .collect();
        for m in &maps {
            all_records.extend(m.clone());
        }
        for (mof, r, bytes) in segment_bytes(n, &maps, &partitioner) {
            for chunk in bytes.chunks(CHUNK) {
                let placed = replicator
                    .replicate(primary, mof, r, chunk)
                    .expect("replicate");
                assert_eq!(placed.len(), 2, "RF=2 placement for mof {mof}");
                assert_eq!(placed[0], primary, "primary leads placement");
            }
        }
    }
    registry.sync_routes(&routes);

    // The victim's store must be byte-complete on disk BEFORE the kill:
    // nothing lingering in the volatile memory tier, so recovery is
    // held to full restitution, not just a durable prefix.
    let pre = hybrids[VICTIM].stats();
    assert_eq!(
        pre.memory_bytes, 0,
        "victim holds volatile bytes; the test's full-recovery claim needs none: {pre:?}"
    );
    let victim_parts: Vec<((u64, u32), u64)> = hybrids[VICTIM]
        .partitions()
        .into_iter()
        .map(|(m, r)| ((m, r), hybrids[VICTIM].partition_len(m, r).expect("len")))
        .collect();
    assert!(!victim_parts.is_empty(), "victim holds no partitions");

    let client = NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
            jitter_frac: 0.2,
        },
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(1),
        integrity_retries: 32,
        breaker_threshold: 2,
        // Short base cooldown: it doubles per reopen (capped at 64x =
        // 640ms) while the victim is down, and wave 3 must be able to
        // wait out the deepest cooldown without stalling the test.
        breaker_cooldown: Duration::from_millis(10),
        routes: Some(Arc::clone(&routes)),
        trace: trace.clone(),
        ..ClientConfig::default()
    });

    let segments_for = |reducer: usize| -> Vec<SegmentRef> {
        (0..(NODES * MAPS_PER_NODE) as u64)
            .map(|mof| SegmentRef {
                addr: addrs[(mof as usize) / MAPS_PER_NODE],
                mof,
                reducer: reducer as u32,
            })
            .collect()
    };

    // Wave 1: all suppliers up (resets/stalls only).
    let mut outputs: Vec<Vec<Record>> = (0..2)
        .map(|r| client.shuffle_and_merge(&segments_for(r)).expect("wave 1"))
        .collect();

    // Crash-stop the victim: no deregistration, no drain — heartbeats
    // just stop and the sockets die. Its directories survive.
    if let Some(hb) = heartbeaters[VICTIM].take() {
        hb.stop();
    }
    servers[VICTIM].take().expect("victim running").shutdown();

    // Wave 2: fetches still name the victim as primary; they must fail
    // over to the surviving replica of each of its MOFs.
    outputs
        .extend((2..REDUCERS).map(|r| client.shuffle_and_merge(&segments_for(r)).expect("wave 2")));

    // Waves 1+2 are byte-exact despite the kill.
    let mut got: Vec<Record> = outputs.iter().flatten().cloned().collect();
    let mut expect = all_records.clone();
    sort_run(&mut got);
    sort_run(&mut expect);
    assert_eq!(got, expect, "pre-recovery merge diverged from ground truth");
    let fs = client.fetch_stats();
    assert!(fs.failovers >= 1, "no replica failover recorded: {fs:?}");

    // Let the control plane discover the death before the restart, so
    // route.restore below is a real unhealthy→healthy transition.
    let deadline = Instant::now() + Duration::from_secs(10);
    while registry.is_live(addrs[VICTIM]) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        !registry.is_live(addrs[VICTIM]),
        "registry never expired the killed supplier"
    );
    std::thread::sleep(Duration::from_millis(30)); // monitor pushes the unhealthy mark

    // Recovery: rebuild the store from the surviving directory. Every
    // partition the dead process held must come back byte-exact — the
    // kill left nothing volatile.
    let (recovered, report) =
        HybridStore::recover(dirs[VICTIM].cfg(trace.clone())).expect("recover");
    assert!(!report.torn_tail, "clean shutdown left a torn manifest");
    assert_eq!(report.dropped_extents, 0, "recovery dropped extents: {report:?}");
    assert_eq!(
        report.recovered_partitions,
        victim_parts.len() as u64,
        "partition count diverged: {report:?}"
    );
    for &((mof, r), len) in &victim_parts {
        assert_eq!(
            recovered.partition_len(mof, r),
            Some(len),
            "mof {mof}/{r} did not recover byte-exact"
        );
    }

    // Back to serving: same address, recovered tiers, fresh heartbeater.
    // Re-registration must be fenced to incarnation 2.
    servers[VICTIM] = Some(
        MofSupplierServer::start_on(
            addrs[VICTIM],
            MofStore::temp().expect("restart store"),
            ServerOptions {
                buffer_bytes: 4 << 10,
                trace: trace.clone(),
                hybrid: Some(Arc::clone(&recovered)),
                ..ServerOptions::default()
            },
        )
        .expect("restart victim"),
    );
    let rh = Arc::clone(&recovered);
    heartbeaters[VICTIM] = Some(Heartbeater::spawn(
        Arc::clone(&registry),
        Arc::clone(&clock),
        addrs[VICTIM],
        Duration::from_millis(8),
        move || {
            let t = rh.stats();
            HeartbeatLoad {
                memory_bytes: t.memory_bytes,
                spilled_bytes: t.spilled_bytes,
                remote_bytes: t.remote_bytes,
                ..HeartbeatLoad::default()
            }
        },
    ));
    assert_eq!(
        registry.incarnation(addrs[VICTIM]),
        Some(2),
        "re-registration must bump the victim's incarnation"
    );

    // Wait for the monitor to restore the victim's routes. Filter by
    // port: a survivor that misses a heartbeat under load can flap and
    // contribute its own route.restore.
    let victim_port = u64::from(addrs[VICTIM].port());
    let victim_restored = |trace: &Trace| {
        trace
            .query()
            .events()
            .iter()
            .any(|e| e.name == "route.restore" && e.entity.id == victim_port)
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while !victim_restored(&trace) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        registry.is_live(addrs[VICTIM]),
        "restarted supplier never went live again"
    );

    // The victim's client-side breaker kept deepening its cooldown
    // while the node was dead. Wait out the deepest possible cooldown
    // (64 x 10ms) so wave 3's first victim op is admitted as the
    // half-open probe instead of being proactively rerouted.
    std::thread::sleep(Duration::from_millis(700));

    // Wave 3: the full shuffle again, now THROUGH the restarted primary.
    let wave3: Vec<Vec<Record>> = (0..REDUCERS)
        .map(|r| client.shuffle_and_merge(&segments_for(r)).expect("wave 3"))
        .collect();
    let mut got3: Vec<Record> = wave3.iter().flatten().cloned().collect();
    sort_run(&mut got3);
    assert_eq!(got3, expect, "post-recovery merge diverged from ground truth");
    for (r, out) in wave3.iter().enumerate() {
        assert!(is_sorted(out), "reducer {r} unsorted after recovery");
    }
    // The recovered store really served: its LOCALFILE tier was read.
    let post = recovered.stats();
    assert!(
        post.local_hits >= 1,
        "restarted supplier never served from recovered extents: {post:?}"
    );

    // The faults really were injected.
    let injected: u64 = plans.iter().map(|p| p.stats().total()).sum();
    assert!(injected >= 2, "resets/stalls never fired");

    // The recovery protocol's causal order, as the trace recorded it:
    // redirect (the failover) ≺ store.recover (the rebuild) ≺
    // registry.register at incarnation 2 (the fenced return) ≺
    // route.restore (traffic flips back).
    let q = trace.query();
    assert!(q.count("registry.unhealthy") >= 1, "no unhealthy mark traced");
    let events = q.events();
    let victim_restores = events
        .iter()
        .filter(|e| e.name == "route.restore" && e.entity.id == victim_port)
        .count();
    assert_eq!(victim_restores, 1, "exactly one victim route restoration");
    let redirect = first_t(events, |e| e.name == "failover.redirect").expect("redirect traced");
    let recover_t = first_t(events, |e| e.name == "store.recover").expect("recover traced");
    let reregister = first_t(events, |e| e.name == "registry.register" && e.b == 2)
        .expect("fenced re-registration traced");
    let restore = first_t(events, |e| {
        e.name == "route.restore" && e.entity.id == victim_port
    })
    .expect("restore traced");
    assert!(
        redirect < recover_t && recover_t < reregister && reregister < restore,
        "recovery protocol out of order: redirect={redirect} recover={recover_t} \
         reregister={reregister} restore={restore}"
    );
    dump_trace(&trace, "chaos_recovery.jsonl");

    assert!(
        started.elapsed() < Duration::from_secs(60),
        "recovery chaos took {:?}",
        started.elapsed()
    );

    monitor.stop();
    for hb in heartbeaters.into_iter().flatten() {
        hb.stop();
    }
    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    drop(client);
}
