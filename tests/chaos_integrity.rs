//! Integrity chaos test of the real TCP dataplane: a multi-node shuffle
//! under post-checksum payload corruption, clean-EOF truncation lies,
//! admission-control busy storms, and one supplier that is dead at
//! shuffle start and restarts mid-flight. The merged output must be
//! byte-exact against a reference sort — no corrupt byte may ever reach
//! the merge — and the trace must show the survivability machinery
//! (targeted cache-bypass re-fetches, busy backoff, the circuit
//! breaker's open → half-open → close lifecycle) actually firing.

use jbs::des::DetRng;
use jbs::mapred::merge::{is_sorted, sort_run, Record};
use jbs::obs::Trace;
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, FaultKind, FaultPlan, Hook, MofStore, MofSupplierServer, NetMergerClient,
    RetryPolicy, ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const REDUCERS: usize = 4;
const MAPS_PER_NODE: usize = 2;
const RECORDS_PER_MAP: usize = 600;

/// The integrity fault plan: seed-deterministic payload-byte flips
/// *after* the CRC is computed, lying clean EOFs, and busy storms at
/// the admission hook — plus one forced occurrence of each so the
/// detection counters are guaranteed to move. Deliberately no resets
/// or stalls: connection-level failures stay confined to the dead
/// node 0, so the breaker-lifecycle assertions are unambiguous.
fn integrity_plan(seed: u64) -> Arc<FaultPlan> {
    FaultPlan::builder(seed)
        .corrupt_payload(Hook::ServerPayload, 0.02)
        .clean_eof(Hook::ServerPayload, 0.01)
        .busy(Hook::ServerAdmission, 0.05)
        .force(Hook::ServerPayload, 2, FaultKind::CorruptPayload)
        .force(Hook::ServerPayload, 9, FaultKind::CleanEof)
        .force(Hook::ServerAdmission, 4, FaultKind::Busy)
        .build()
}

/// A client tuned for the integrity chaos cluster: small buffers (many
/// chunks, many corruption opportunities), checksums on (the default),
/// a generous per-op integrity budget (the budget is per *op*, and a
/// whole-remainder op spans many chunks), and a hair-trigger breaker so
/// the dead supplier demonstrably opens it.
fn integrity_client(trace: Trace) -> NetMergerClient {
    NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(30),
            max_backoff: Duration::from_millis(300),
            jitter_frac: 0.2,
        },
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(1),
        integrity_retries: 32,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        trace,
        ..ClientConfig::default()
    })
}

fn records_for_node(rng: &mut DetRng) -> Vec<Vec<Record>> {
    (0..MAPS_PER_NODE)
        .map(|_| gen_terasort_records(RECORDS_PER_MAP, rng))
        .collect()
}

/// Dump a trace's JSONL next to the build artifacts so CI can upload it.
fn dump_trace(trace: &Trace, name: &str) {
    let dir = std::path::Path::new("target/traces");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), trace.to_jsonl());
    }
}

#[test]
fn shuffle_survives_corruption_busy_storms_and_restart() {
    let started = Instant::now();
    let trace = Trace::recording(1 << 20);
    let mut rng = DetRng::new(2026);
    let partitioner = HashPartitioner::new(REDUCERS);
    let mut all_records: Vec<Record> = Vec::new();

    // Node 0: dead when the shuffle starts; its MOFs live in a
    // caller-managed directory so the restarted incarnation reopens them.
    let node0_dir =
        std::env::temp_dir().join(format!("jbs-chaos-integrity-{}", std::process::id()));
    std::fs::create_dir_all(&node0_dir).expect("node0 dir");
    let node0_addr = {
        let mut store = MofStore::at(&node0_dir).expect("node0 store");
        for (m, records) in records_for_node(&mut rng).into_iter().enumerate() {
            all_records.extend(records.clone());
            store
                .write_mof(m as u64, records, REDUCERS, |k| partitioner.partition(k))
                .expect("write mof");
        }
        let server = MofSupplierServer::start(store).expect("node0 server");
        let addr = server.addr();
        server.shutdown();
        addr
    };

    // Nodes 1 and 2: alive throughout, corrupting payloads after the
    // checksum, lying about EOF, and shedding requests in busy storms.
    let mut servers = Vec::new();
    let mut plans = Vec::new();
    for node in 1..3usize {
        let mut store = MofStore::temp().expect("store");
        for (m, records) in records_for_node(&mut rng).into_iter().enumerate() {
            all_records.extend(records.clone());
            store
                .write_mof((node * MAPS_PER_NODE + m) as u64, records, REDUCERS, |k| {
                    partitioner.partition(k)
                })
                .expect("write mof");
        }
        let plan = integrity_plan(2600 + node as u64);
        plans.push(Arc::clone(&plan));
        servers.push(
            MofSupplierServer::start_with_options(
                store,
                ServerOptions {
                    buffer_bytes: 4 << 10,
                    faults: Some(plan),
                    trace: trace.clone(),
                    ..ServerOptions::default()
                },
            )
            .expect("server"),
        );
    }

    // Restart node 0 on its original address while reducer 0's fetch is
    // already failing fast / probing against the dead port.
    let restart_dir = node0_dir.clone();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let store = MofStore::at(&restart_dir).expect("reopen node0 store");
        MofSupplierServer::start_on(node0_addr, store, ServerOptions::default())
            .expect("restart node0")
    });

    let segments_for = |reducer: usize| -> Vec<SegmentRef> {
        let mut segs: Vec<SegmentRef> = (0..MAPS_PER_NODE)
            .map(|m| SegmentRef {
                addr: node0_addr,
                mof: m as u64,
                reducer: reducer as u32,
            })
            .collect();
        for (i, s) in servers.iter().enumerate() {
            let node = i + 1;
            for m in 0..MAPS_PER_NODE {
                segs.push(SegmentRef {
                    addr: s.addr(),
                    mof: (node * MAPS_PER_NODE + m) as u64,
                    reducer: reducer as u32,
                });
            }
        }
        segs
    };

    let client = integrity_client(trace.clone());
    let outputs: Vec<Vec<Record>> = (0..REDUCERS)
        .map(|r| {
            client
                .shuffle_and_merge(&segments_for(r))
                .expect("merge under integrity chaos")
        })
        .collect();

    // Byte-exact conservation: corruption was detected and repaired, not
    // admitted. The union of reducer outputs equals the generated records.
    let mut got: Vec<Record> = outputs.iter().flatten().cloned().collect();
    let mut expect = all_records.clone();
    sort_run(&mut got);
    sort_run(&mut expect);
    assert_eq!(got.len(), expect.len(), "records lost or duplicated");
    assert_eq!(got, expect, "corrupt bytes reached the merge");
    for (r, out) in outputs.iter().enumerate() {
        assert!(is_sorted(out), "reducer {r} unsorted");
    }

    // The integrity machinery demonstrably fired: targeted cache-bypass
    // re-fetches (distinct from connection-level retries) and honored
    // busy pushback on the client; shed requests on the suppliers.
    let fs = client.fetch_stats();
    assert!(
        fs.corrupt_refetches >= 1,
        "no targeted re-fetch recorded: {fs:?}"
    );
    assert!(fs.busy_backoffs >= 1, "no busy pushback honored: {fs:?}");
    let shed: u64 = servers
        .iter()
        .map(|s| s.stats_snapshot().busy_rejections)
        .sum();
    assert!(shed >= 1, "no supplier shed a request with Busy");

    // The faults really were injected, not dodged.
    for plan in &plans {
        let ps = plan.stats();
        assert!(ps.payload_corruptions >= 1, "no flip injected: {ps:?}");
        assert!(ps.busy_storms >= 1, "no busy storm injected: {ps:?}");
    }

    // Breaker lifecycle on dead-then-restarted node 0, read off the
    // trace: opened on consecutive dial failures, granted half-open
    // probes on the cooldown schedule, closed once the restarted
    // supplier answered — and every open precedes the close.
    let q = trace.query();
    assert!(q.count("breaker.open") >= 1, "breaker never opened");
    assert!(q.count("breaker.half_open") >= 1, "breaker never probed");
    assert!(q.count("breaker.close") >= 1, "breaker never closed");
    assert!(
        q.happens_before("breaker.open", "breaker.close"),
        "breaker closed before it opened"
    );
    assert!(
        q.count("integrity.verify") >= 1,
        "no chunk was CRC-verified"
    );
    assert!(
        q.count("integrity.refetch") >= 1,
        "no integrity re-fetch traced"
    );
    dump_trace(&trace, "chaos_integrity.jsonl");

    // Bounded recovery: chaos slows the shuffle, it must not hang it.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "chaos shuffle took {:?}",
        started.elapsed()
    );

    // Quiescence: queues drained, nothing stuck in flight.
    let fs = {
        let mut fs = client.fetch_stats();
        for _ in 0..400 {
            if fs.queued_ops == 0 && fs.window_inflight == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            fs = client.fetch_stats();
        }
        fs
    };
    assert_eq!(fs.queued_ops, 0, "ops stuck in peer queues: {fs:?}");
    assert_eq!(fs.window_inflight, 0, "requests stuck in flight: {fs:?}");

    let revived = restarter.join().expect("restart thread");
    revived.shutdown();
    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&node0_dir);
}

/// A lying clean EOF on a *single-exchange* chunk (the levitated-merge
/// path) must not silently terminate the stream early: the v3 segment
/// length exposes the lie and a cache-bypass re-fetch repairs it.
#[test]
fn levitated_stream_survives_clean_eof_lie() {
    let mut rng = DetRng::new(51);
    let records = gen_terasort_records(1200, &mut rng);
    let mut expect = records.clone();
    sort_run(&mut expect);
    let mut store = MofStore::temp().expect("store");
    store.write_mof(0, records, 1, |_| 0).expect("write mof");

    let plan = FaultPlan::builder(7)
        .force(Hook::ServerPayload, 1, FaultKind::CleanEof)
        .build();
    let server = MofSupplierServer::start_with_options(
        store,
        ServerOptions {
            buffer_bytes: 4 << 10,
            faults: Some(Arc::clone(&plan)),
            ..ServerOptions::default()
        },
    )
    .expect("server");

    let client = NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        ..ClientConfig::default()
    });
    let seg = SegmentRef {
        addr: server.addr(),
        mof: 0,
        reducer: 0,
    };
    let merged = client.levitated_merge(&[seg]).expect("levitated merge");
    assert_eq!(merged, expect, "clean-EOF lie truncated the stream");
    assert_eq!(plan.stats().clean_eof_lies, 1, "lie was not injected");
    assert!(
        client.fetch_stats().corrupt_refetches >= 1,
        "lie was not repaired by a targeted re-fetch"
    );
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// End-to-end detection property: for any seed and corruption rate,
    /// EVERY injected post-checksum flip is caught by CRC verification
    /// before the merge — the levitated merge output is byte-identical
    /// to the ground truth, and whenever the plan injected at least one
    /// flip, the client's detection counters moved.
    #[test]
    fn every_injected_flip_is_detected(seed in 1u64..10_000, pct in 0u32..8) {
        let p = f64::from(pct) * 0.01;
        let reducers = 2usize;
        let mut rng = DetRng::new(seed);
        let partitioner = HashPartitioner::new(reducers);
        let mut store = MofStore::temp().expect("store");
        let mut by_reducer: Vec<Vec<Record>> = vec![Vec::new(); reducers];
        for m in 0..2u64 {
            let records = gen_terasort_records(400, &mut rng);
            for (k, v) in &records {
                by_reducer[partitioner.partition(k)].push((k.clone(), v.clone()));
            }
            store
                .write_mof(m, records, reducers, |k| partitioner.partition(k))
                .expect("write mof");
        }

        let plan = FaultPlan::builder(seed)
            .corrupt_payload(Hook::ServerPayload, p)
            .force(Hook::ServerPayload, 1, FaultKind::CorruptPayload)
            .build();
        let server = MofSupplierServer::start_with_options(
            store,
            ServerOptions {
                buffer_bytes: 4 << 10,
                faults: Some(Arc::clone(&plan)),
                ..ServerOptions::default()
            },
        )
        .expect("server");

        let trace = Trace::recording(1 << 16);
        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: 4 << 10,
            integrity_retries: 64,
            trace: trace.clone(),
            ..ClientConfig::default()
        });
        for (r, expect) in by_reducer.iter_mut().enumerate() {
            let segs: Vec<SegmentRef> = (0..2u64)
                .map(|mof| SegmentRef {
                    addr: server.addr(),
                    mof,
                    reducer: r as u32,
                })
                .collect();
            let merged = client.levitated_merge(&segs).expect("levitated merge");
            sort_run(expect);
            prop_assert_eq!(&merged, expect, "corrupt bytes reached reducer {}", r);
        }

        let injected = plan.stats().payload_corruptions;
        prop_assert!(injected >= 1, "forced flip never fired");
        let fs = client.fetch_stats();
        prop_assert!(
            fs.corrupt_refetches + fs.spec_discards >= 1,
            "flips injected ({}) but none detected: {:?}",
            injected,
            fs
        );
        prop_assert!(
            trace.query().count("integrity.verify") >= 1,
            "no chunk was CRC-verified"
        );
        server.shutdown();
    }
}
