//! Hybrid-store chaos test: a multi-node shuffle under fault injection
//! while one supplier's memory tier is actively spilling (background
//! flusher racing concurrent appends and reads) and another supplier is
//! decommissioned mid-run — drained to the REMOTE tier and restarted on
//! the same address over the surviving objects. The merged output must
//! be byte-exact against the generated records, and the tier counters
//! must show the transitions actually happened: watermark spill trips on
//! the live node, a full memory→remote drain on the decommissioned one,
//! and remote-tier hits from its revived incarnation.

use jbs::des::DetRng;
use jbs::mapred::merge::{is_sorted, sort_run, Record};
use jbs::obs::Trace;
use jbs::store_hybrid::{HybridConfig, HybridStore};
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, FaultKind, FaultPlan, Hook, MofStore, MofSupplierServer, NetMergerClient,
    RetryPolicy, ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REDUCERS: usize = 4;
const MAPS_PER_NODE: usize = 2;
const RECORDS_PER_MAP: usize = 500;
/// Append granularity into the hybrid stores: small chunks so the
/// memory tier sees many buffered extents and the flusher has real
/// interleavings to race.
const CHUNK: usize = 4 << 10;

/// Seed-deterministic payload flips after the CRC plus admission busy
/// storms, with one forced occurrence of each so the detection counters
/// are guaranteed to move.
fn chaos_plan(seed: u64) -> Arc<FaultPlan> {
    FaultPlan::builder(seed)
        .corrupt_payload(Hook::ServerPayload, 0.02)
        .busy(Hook::ServerAdmission, 0.04)
        .force(Hook::ServerPayload, 2, FaultKind::CorruptPayload)
        .force(Hook::ServerAdmission, 3, FaultKind::Busy)
        .build()
}

fn chaos_client(trace: Trace) -> NetMergerClient {
    NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(30),
            max_backoff: Duration::from_millis(300),
            jitter_frac: 0.2,
        },
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(1),
        integrity_retries: 32,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        trace,
        ..ClientConfig::default()
    })
}

/// Dump a trace's JSONL next to the build artifacts so CI can upload it.
fn dump_trace(trace: &Trace, name: &str) {
    let dir = std::path::Path::new("target/traces");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), trace.to_jsonl());
    }
}

/// Materialize map outputs as MOF segment bytes: write them through a
/// scratch on-disk store (the byte-real MOF format) and read every
/// `(mof, reducer)` segment back, so hybrid-held partitions are
/// bit-identical to what a disk supplier would serve.
fn segment_bytes(
    node: usize,
    maps: &[Vec<Record>],
    partitioner: &HashPartitioner,
) -> Vec<(u64, u32, Vec<u8>)> {
    let mut scratch = MofStore::temp().expect("scratch store");
    let mut mofs = Vec::new();
    for (m, records) in maps.iter().enumerate() {
        let mof = (node * MAPS_PER_NODE + m) as u64;
        scratch
            .write_mof(mof, records.clone(), REDUCERS, |k| partitioner.partition(k))
            .expect("write mof");
        mofs.push(mof);
    }
    let mut out = Vec::new();
    for &mof in &mofs {
        for r in 0..REDUCERS as u32 {
            let bytes = scratch
                .read_segment_range(mof, r, 0, 0)
                .expect("read segment")
                .expect("segment exists");
            assert!(!bytes.is_empty(), "workload left reducer {r} empty");
            out.push((mof, r, bytes));
        }
    }
    out
}

/// Append prepared segments into a hybrid store in `CHUNK`-sized pieces.
fn feed(hybrid: &HybridStore, segments: &[(u64, u32, Vec<u8>)]) {
    for (mof, r, bytes) in segments {
        for chunk in bytes.chunks(CHUNK) {
            hybrid.append(*mof, *r, chunk).expect("hybrid append");
        }
    }
}

#[test]
fn shuffle_survives_spill_drain_and_remote_restart() {
    let started = Instant::now();
    let trace = Trace::recording(1 << 20);
    let mut rng = DetRng::new(4242);
    let partitioner = HashPartitioner::new(REDUCERS);
    let mut all_records: Vec<Record> = Vec::new();

    // Node 0: plain MOF-on-disk supplier under payload corruption and
    // busy storms.
    let mut store0 = MofStore::temp().expect("node0 store");
    for m in 0..MAPS_PER_NODE {
        let records = gen_terasort_records(RECORDS_PER_MAP, &mut rng);
        all_records.extend(records.clone());
        store0
            .write_mof(m as u64, records, REDUCERS, |k| partitioner.partition(k))
            .expect("write mof");
    }
    let plan0 = chaos_plan(77);
    let server0 = MofSupplierServer::start_with_options(
        store0,
        ServerOptions {
            buffer_bytes: 4 << 10,
            faults: Some(Arc::clone(&plan0)),
            trace: trace.clone(),
            ..ServerOptions::default()
        },
    )
    .expect("node0 server");

    // Node 1: hybrid supplier with a memory tier small enough that the
    // workload must spill. Reducers 0-1 are fed up front; reducers 2-3
    // are appended *during* the first reduce wave by a feeder thread, so
    // the background flusher spills (with a synthetic per-buffer write
    // delay holding it mid-spill) while the supplier concurrently serves
    // — also under injected faults.
    let hybrid1 = HybridStore::new(HybridConfig {
        memory_budget: 64 << 10,
        high_watermark: 0.5,
        low_watermark: 0.2,
        background_flush: true,
        synthetic_spill_delay: Duration::from_millis(2),
        trace: trace.clone(),
        ..HybridConfig::default()
    })
    .expect("hybrid1");
    let maps1: Vec<Vec<Record>> = (0..MAPS_PER_NODE)
        .map(|_| gen_terasort_records(RECORDS_PER_MAP, &mut rng))
        .collect();
    for m in &maps1 {
        all_records.extend(m.clone());
    }
    let segs1 = segment_bytes(1, &maps1, &partitioner);
    let (eager1, late1): (Vec<_>, Vec<_>) = segs1.into_iter().partition(|(_, r, _)| *r < 2);
    feed(&hybrid1, &eager1);
    let plan1 = chaos_plan(78);
    let server1 = MofSupplierServer::start_with_options(
        MofStore::temp().expect("node1 empty store"),
        ServerOptions {
            buffer_bytes: 4 << 10,
            faults: Some(Arc::clone(&plan1)),
            trace: trace.clone(),
            hybrid: Some(Arc::clone(&hybrid1)),
            ..ServerOptions::default()
        },
    )
    .expect("node1 server");

    // Node 2: hybrid supplier that will be decommissioned mid-shuffle.
    // Its REMOTE tier lives in a caller-managed directory so the revived
    // incarnation can attach over the surviving objects.
    let remote_dir =
        std::env::temp_dir().join(format!("jbs-chaos-hybrid-remote-{}", std::process::id()));
    std::fs::create_dir_all(&remote_dir).expect("remote dir");
    let hybrid2_cfg = HybridConfig {
        memory_budget: 1 << 20,
        remote_dir: Some(remote_dir.clone()),
        trace: trace.clone(),
        ..HybridConfig::default()
    };
    let hybrid2 = HybridStore::new(hybrid2_cfg.clone()).expect("hybrid2");
    let maps2: Vec<Vec<Record>> = (0..MAPS_PER_NODE)
        .map(|_| gen_terasort_records(RECORDS_PER_MAP, &mut rng))
        .collect();
    for m in &maps2 {
        all_records.extend(m.clone());
    }
    let segs2 = segment_bytes(2, &maps2, &partitioner);
    feed(&hybrid2, &segs2);
    let fed2_total = hybrid2.stats().total_written;
    let server2 = MofSupplierServer::start_with_options(
        MofStore::temp().expect("node2 empty store"),
        ServerOptions {
            buffer_bytes: 4 << 10,
            trace: trace.clone(),
            hybrid: Some(Arc::clone(&hybrid2)),
            ..ServerOptions::default()
        },
    )
    .expect("node2 server");
    let node2_addr = server2.addr();

    let segments_for = |reducer: usize| -> Vec<SegmentRef> {
        let mut segs = Vec::new();
        for node in 0..3usize {
            let addr = match node {
                0 => server0.addr(),
                1 => server1.addr(),
                _ => node2_addr,
            };
            for m in 0..MAPS_PER_NODE {
                segs.push(SegmentRef {
                    addr,
                    mof: (node * MAPS_PER_NODE + m) as u64,
                    reducer: reducer as u32,
                });
            }
        }
        segs
    };

    let client = chaos_client(trace.clone());

    // First reduce wave (reducers 0-1) races the feeder appending
    // reducers 2-3 into node 1's spilling memory tier.
    let feeder_hybrid = Arc::clone(&hybrid1);
    let feeder = std::thread::spawn(move || feed(&feeder_hybrid, &late1));
    let mut outputs: Vec<Vec<Record>> = (0..2)
        .map(|r| {
            client
                .shuffle_and_merge(&segments_for(r))
                .expect("merge during spill")
        })
        .collect();
    feeder.join().expect("feeder thread");

    // Quick decommission mid-run: drain node 2 (connections first, then
    // its hybrid contents to the REMOTE tier) and revive it on the same
    // address over the surviving remote objects.
    server2.drain(Duration::from_millis(300));
    let old = hybrid2.stats();
    assert_eq!(old.drains, 1, "drain path must hit the hybrid: {old:?}");
    assert_eq!(old.memory_bytes, 0, "memory tier not emptied: {old:?}");
    assert_eq!(old.spilled_bytes, 0, "local tier not emptied: {old:?}");
    assert_eq!(old.remote_bytes, fed2_total, "bytes lost in drain: {old:?}");

    let revived_hybrid =
        HybridStore::attach_remote(&remote_dir, hybrid2_cfg.clone()).expect("attach remote");
    assert_eq!(
        revived_hybrid.stats().remote_bytes,
        fed2_total,
        "remote objects did not survive the decommission"
    );
    let revived = MofSupplierServer::start_on(
        node2_addr,
        MofStore::temp().expect("revived store"),
        ServerOptions {
            buffer_bytes: 4 << 10,
            trace: trace.clone(),
            hybrid: Some(Arc::clone(&revived_hybrid)),
            ..ServerOptions::default()
        },
    )
    .expect("restart node2");

    // Second reduce wave: node 2's bytes now come from the REMOTE tier.
    outputs.extend((2..REDUCERS).map(|r| {
        client
            .shuffle_and_merge(&segments_for(r))
            .expect("merge after remote restart")
    }));

    // Byte-exact conservation across all three storage paths: disk MOFs
    // under corruption, a spilling memory tier, and a drained-then-
    // reattached REMOTE tier.
    let mut got: Vec<Record> = outputs.iter().flatten().cloned().collect();
    let mut expect = all_records.clone();
    sort_run(&mut got);
    sort_run(&mut expect);
    assert_eq!(got.len(), expect.len(), "records lost or duplicated");
    assert_eq!(got, expect, "merge diverged from ground truth");
    for (r, out) in outputs.iter().enumerate() {
        assert!(is_sorted(out), "reducer {r} unsorted");
    }

    // Moved-tier counters. Node 1: the watermark machinery really
    // tripped, residency stayed coherent, and the supplier answered from
    // the hybrid tiers.
    let s1 = hybrid1.stats();
    assert!(s1.spill_trips >= 1, "memory tier never spilled: {s1:?}");
    assert!(s1.spilled_bytes > 0, "nothing on the LOCALFILE tier: {s1:?}");
    assert_eq!(
        s1.memory_bytes + s1.spilled_bytes + s1.remote_bytes,
        s1.total_written,
        "tier residency leaked: {s1:?}"
    );
    assert!(
        s1.memory_hits + s1.local_hits >= 1,
        "no hybrid tier served a read: {s1:?}"
    );
    assert!(
        server1.stats_snapshot().hybrid_hits >= 1,
        "supplier never answered from its hybrid store"
    );
    // Node 2's revived incarnation served from REMOTE.
    let s2 = revived_hybrid.stats();
    assert!(s2.remote_hits >= 1, "no remote-tier read after revival: {s2:?}");

    // The faults really were injected, not dodged — and survived.
    for plan in [&plan0, &plan1] {
        let ps = plan.stats();
        assert!(ps.payload_corruptions >= 1, "no flip injected: {ps:?}");
        assert!(ps.busy_storms >= 1, "no busy storm injected: {ps:?}");
    }
    let fs = client.fetch_stats();
    assert!(
        fs.corrupt_refetches + fs.spec_discards >= 1,
        "corruption was never detected: {fs:?}"
    );

    // Trace-driven: the tier transitions are visible in the record.
    let q = trace.query();
    assert!(q.count("hybrid.hit") >= 1, "no hybrid.hit traced");
    assert!(q.count("tier.spill") >= 1, "no spill span traced");
    assert_eq!(q.count("tier.drain"), 1, "exactly one hybrid drain");
    assert_eq!(
        q.count("tier.remote"),
        MAPS_PER_NODE * REDUCERS,
        "one remote transition per drained partition"
    );
    assert_eq!(q.count("server.drain.remote"), 1, "drain must go remote");
    assert!(q.count("integrity.verify") >= 1, "no chunk CRC-verified");
    dump_trace(&trace, "chaos_hybrid.jsonl");

    assert!(
        started.elapsed() < Duration::from_secs(60),
        "chaos shuffle took {:?}",
        started.elapsed()
    );

    revived.shutdown();
    server0.shutdown();
    server1.shutdown();
    drop(client);
    let _ = std::fs::remove_dir_all(&remote_dir);
}
