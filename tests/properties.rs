//! Property-based tests (proptest) on the core data structures and
//! invariants, across crates.

use jbs::des::{DetRng, EventQueue, LruCache, SimTime};
use jbs::disk::PageCache;
use jbs::mapred::merge::{is_sorted, merge_sorted_runs, sort_run, Record};
use jbs::mapred::mof::{MofIndex, MofWriter, SegmentReader};
use jbs::mapred::sim::plan::split_segments;
use jbs::transport::wire::{FetchRequest, FetchResponse};
use jbs::workloads::{HashPartitioner, Partitioner, RangePartitioner};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order, FIFO among ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated among equal timestamps");
                }
            }
            last = Some((t, i));
        }
    }

    /// The LRU cache behaves exactly like a naive ordered-vec model.
    #[test]
    fn lru_matches_reference_model(
        cap in 1usize..12,
        ops in prop::collection::vec((0u64..24, prop::bool::ANY), 1..300),
    ) {
        let mut lru = LruCache::new(cap);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        for (key, is_insert) in ops {
            if is_insert {
                lru.insert(key, ());
                model.retain(|&k| k != key);
                model.insert(0, key);
                model.truncate(cap);
            } else {
                let hit = lru.touch(&key);
                prop_assert_eq!(hit, model.contains(&key));
                if hit {
                    model.retain(|&k| k != key);
                    model.insert(0, key);
                }
            }
            prop_assert_eq!(lru.keys_mru(), model.clone());
        }
    }

    /// MOF write → index → segment read round-trips arbitrary records.
    #[test]
    fn mof_roundtrip(
        segments in prop::collection::vec(
            prop::collection::vec(
                (prop::collection::vec(any::<u8>(), 0..40),
                 prop::collection::vec(any::<u8>(), 0..60)),
                0..20,
            ),
            1..6,
        )
    ) {
        let mut w = MofWriter::new();
        for seg in &segments {
            w.begin_segment();
            for (k, v) in seg {
                w.append(k, v);
            }
            w.end_segment();
        }
        let (data, index) = w.finish();
        let index2 = MofIndex::from_bytes(&index.to_bytes()).unwrap();
        prop_assert_eq!(&index2, &index);
        for (r, seg) in segments.iter().enumerate() {
            let e = index.entry(r).unwrap();
            let bytes = &data[e.offset as usize..(e.offset + e.part_len) as usize];
            let got: Vec<(Vec<u8>, Vec<u8>)> = SegmentReader::new(bytes)
                .map(|x| {
                    let (k, v) = x.unwrap();
                    (k.to_vec(), v.to_vec())
                })
                .collect();
            prop_assert_eq!(&got, seg);
        }
    }

    /// K-way merging sorted runs equals globally sorting the union.
    #[test]
    fn kway_merge_equals_global_sort(
        runs in prop::collection::vec(
            prop::collection::vec(
                (prop::collection::vec(any::<u8>(), 0..8), 0u8..255),
                0..50,
            ),
            0..8,
        )
    ) {
        let runs: Vec<Vec<Record>> = runs
            .into_iter()
            .map(|r| {
                let mut run: Vec<Record> =
                    r.into_iter().map(|(k, v)| (k, vec![v])).collect();
                sort_run(&mut run);
                run
            })
            .collect();
        let mut expect: Vec<Record> = runs.iter().flatten().cloned().collect();
        let merged = merge_sorted_runs(runs);
        prop_assert!(is_sorted(&merged));
        sort_run(&mut expect);
        let merged_keys: Vec<&Vec<u8>> = merged.iter().map(|(k, _)| k).collect();
        let expect_keys: Vec<&Vec<u8>> = expect.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(merged_keys, expect_keys);
    }

    /// Segment splitting conserves bytes and stays near-balanced.
    #[test]
    fn segment_split_conserves_bytes(total in 0u64..100_000_000, parts in 1usize..128, seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        let split = split_segments(total, parts, &mut rng);
        prop_assert_eq!(split.len(), parts);
        prop_assert_eq!(split.iter().sum::<u64>(), total);
        if total > 10_000 * parts as u64 {
            let base = total / parts as u64;
            for &s in &split {
                prop_assert!(s >= base / 2 && s <= base * 2);
            }
        }
    }

    /// Page cache accounting: hits + misses always cover the request.
    #[test]
    fn page_cache_accounting(
        ops in prop::collection::vec((0u64..4, 0u64..(1 << 22), 1u64..(1 << 20), prop::bool::ANY), 1..80)
    ) {
        let mut cache = PageCache::new(4 << 20);
        for (file, offset, len, is_write) in ops {
            if is_write {
                cache.write(file, offset, len);
            } else {
                let out = cache.read(file, offset, len);
                let miss: u64 = out.miss_runs.iter().map(|&(_, l)| l).sum();
                // Miss runs are block-aligned supersets of the missing part.
                prop_assert!(out.hit_bytes <= len);
                prop_assert!(out.hit_bytes + miss >= len);
                // Runs are disjoint and ordered.
                for w in out.miss_runs.windows(2) {
                    prop_assert!(w[0].0 + w[0].1 <= w[1].0);
                }
                cache.fill(file, offset, len);
                // Immediately re-reading must now fully hit.
                prop_assert!(cache.read(file, offset, len).fully_cached());
            }
            prop_assert!(cache.resident_bytes() <= cache.capacity_bytes());
        }
    }

    /// Wire requests round-trip through encode/decode.
    #[test]
    fn wire_request_roundtrip(id in any::<u64>(), mof in any::<u64>(), reducer in any::<u32>(), offset in any::<u64>(), len in any::<u64>()) {
        let req = FetchRequest { id, mof, reducer, offset, len, flags: 0 };
        prop_assert_eq!(FetchRequest::decode(&req.encode()).unwrap().0, req);
    }

    /// Wire responses round-trip through a stream.
    #[test]
    fn wire_response_roundtrip(id in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 0..4096)) {
        let resp = FetchResponse::ok(id, payload);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// Partitioners always map into range; the range partitioner is
    /// monotone in the key order.
    #[test]
    fn partitioners_are_total_and_range_is_monotone(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 1..100),
        parts in 1usize..32,
    ) {
        let hash = HashPartitioner::new(parts);
        for k in &keys {
            prop_assert!(hash.partition(k) < parts);
        }
        let range = RangePartitioner::from_sample(keys.clone(), parts);
        let mut sorted = keys.clone();
        sorted.sort();
        let mut last = 0usize;
        for k in &sorted {
            let p = range.partition(k);
            prop_assert!(p < parts);
            prop_assert!(p >= last, "range partitioner must be monotone");
            last = p;
        }
    }

    /// SimTime byte-rate arithmetic is monotone in both arguments.
    #[test]
    fn transfer_time_is_monotone(a in 1u64..(1 << 40), b in 1u64..(1 << 40), bw in 1.0e6f64..1.0e10) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(SimTime::for_bytes(lo, bw) <= SimTime::for_bytes(hi, bw));
        prop_assert!(SimTime::for_bytes(lo, bw * 2.0) <= SimTime::for_bytes(lo, bw));
    }
}
