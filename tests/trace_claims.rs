//! Trace-driven assertions of the paper's pipelining claims against the
//! real TCP dataplane.
//!
//! Instead of asserting on aggregate counters, these tests record the
//! dataplane's structured trace (`jbs::obs`) and assert on the *timeline*:
//! that the pipelined supplier really overlaps disk reads with network
//! transmission (Fig. 5 vs Fig. 4), that the balanced injection order
//! never starves a peer, and that retry backoff follows the exponential
//! schedule within its jitter bounds.

use jbs::des::DetRng;
use jbs::obs::{Entity, Trace};
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, FaultKind, FaultPlan, Hook, MofStore, MofSupplierServer, NetMergerClient,
    RetryPolicy, ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use std::time::Duration;

const REDUCERS: usize = 2;

/// A store with `mofs` MOFs of `records_per_mof` terasort records each,
/// hash-partitioned over [`REDUCERS`] reducers. Returns the store and
/// the MOF ids written (offset by `base_mof`).
fn build_store(mofs: usize, records_per_mof: usize, base_mof: u64, seed: u64) -> MofStore {
    let mut rng = DetRng::new(seed);
    let partitioner = HashPartitioner::new(REDUCERS);
    let mut store = MofStore::temp().expect("store");
    for m in 0..mofs {
        let records = gen_terasort_records(records_per_mof, &mut rng);
        store
            .write_mof(base_mof + m as u64, records, REDUCERS, |k| {
                partitioner.partition(k)
            })
            .expect("write mof");
    }
    store
}

fn segments(server: &MofSupplierServer, mofs: std::ops::Range<u64>) -> Vec<SegmentRef> {
    mofs.flat_map(|mof| {
        (0..REDUCERS).map(move |r| SegmentRef {
            addr: server.addr(),
            mof,
            reducer: r as u32,
        })
    })
    .collect()
}

/// Dump a trace's JSONL next to the build artifacts so CI can upload it.
fn dump_trace(trace: &Trace, name: &str) {
    let dir = std::path::Path::new("target/traces");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), trace.to_jsonl());
    }
}

/// The paper's central claim, asserted from the supplier's own timeline:
/// with pipelined prefetching the disk pass for batch k+1 runs while
/// batch k is on the wire, so `disk.read` and `net.xmit` spans overlap
/// substantially; the serial baseline performs them back to back on one
/// thread, so they essentially never coincide.
#[test]
fn pipelined_shuffle_overlaps_disk_read_with_net_xmit() {
    // Loopback transmits an 8 KB chunk in ~3 µs, which would make every
    // overlap measurement degenerate; charge each response a synthetic
    // wire time (a 100%-probability stall inside the `net.xmit` span)
    // alongside the synthetic disk latency, as a slower real network
    // would. Disk reads a 4-chunk batch in 2 ms while the wire takes
    // 4 ms to drain it — exactly the regime of Fig. 5.
    let disk_delay = Duration::from_millis(2);
    let wire_delay = Duration::from_millis(1);
    let run = |pipelined: bool| -> Trace {
        let trace = Trace::recording(1 << 16);
        let wire_cost = FaultPlan::builder(1)
            .stall(Hook::ServerWriteResponse, 1.0, wire_delay)
            .build();
        let server = MofSupplierServer::start_with_options(
            build_store(2, 5200, 0, 31),
            ServerOptions {
                buffer_bytes: 8 << 10,
                prefetch_batch: 4,
                prefetch: pipelined,
                synthetic_disk_delay: disk_delay,
                faults: Some(wire_cost),
                trace: trace.clone(),
                ..ServerOptions::default()
            },
        )
        .expect("server");
        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: 8 << 10,
            ..ClientConfig::default()
        });
        let segs = segments(&server, 0..2);
        let fetched: Vec<Vec<u8>> = if pipelined {
            client.fetch_all(&segs).expect("pipelined fetch")
        } else {
            // The serial baseline of Fig. 4: one chunk at a time, each
            // waiting for the previous — no request-level pipelining that
            // could smear xmit over an unrelated segment's disk pass.
            segs.iter()
                .map(|&s| client.fetch_segment(s).expect("serial fetch"))
                .collect()
        };
        assert!(fetched.iter().all(|b| !b.is_empty()));
        server.shutdown();
        trace
    };

    let pipelined = run(true);
    let serial = run(false);
    dump_trace(&pipelined, "overlap_pipelined.jsonl");
    dump_trace(&serial, "overlap_serial.jsonl");

    let pq = pipelined.query();
    let sq = serial.query();
    // Both modes paid real (synthetic) disk passes and real transmissions.
    for q in [&pq, &sq] {
        assert!(q.count("disk.read") >= 8, "too few disk passes traced");
        assert!(q.count("net.xmit") >= 32, "too few transmissions traced");
        assert!(q.union_nanos("disk.read") > 0 && q.union_nanos("net.xmit") > 0);
    }

    let pipe_frac = pq.overlap_fraction("disk.read", "net.xmit");
    let serial_frac = sq.overlap_fraction("disk.read", "net.xmit");
    assert!(
        pipe_frac >= 0.30,
        "pipelined supplier should overlap disk and wire: {pipe_frac:.3}"
    );
    assert!(
        serial_frac <= 0.05,
        "serial baseline should not overlap disk and wire: {serial_frac:.3}"
    );
    assert!(
        pipe_frac > serial_frac + 0.25,
        "overlap must objectively separate the modes: {pipe_frac:.3} vs {serial_frac:.3}"
    );
}

/// Balanced injection (Sec. IV-C): the scheduler dispatches segments
/// round-robin across suppliers, so no peer waits more than one full
/// rotation between consecutive dispatches — even when every supplier
/// runs a seeded chaos plan.
#[test]
fn balanced_injection_bounds_per_peer_dispatch_gap() {
    const PEERS: usize = 3;
    const MOFS_PER_PEER: usize = 2;
    let trace = Trace::recording(1 << 16);
    let servers: Vec<MofSupplierServer> = (0..PEERS)
        .map(|node| {
            let plan = FaultPlan::builder(900 + node as u64)
                .reset(Hook::ServerWriteResponse, 0.02)
                .stall(Hook::ServerWriteResponse, 0.02, Duration::from_millis(150))
                .force(Hook::ServerWriteResponse, 2, FaultKind::Reset)
                .build();
            MofSupplierServer::start_with_options(
                build_store(
                    MOFS_PER_PEER,
                    400,
                    (node * MOFS_PER_PEER) as u64,
                    500 + node as u64,
                ),
                ServerOptions {
                    buffer_bytes: 4 << 10,
                    faults: Some(plan),
                    ..ServerOptions::default()
                },
            )
            .expect("server")
        })
        .collect();

    let client = NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_frac: 0.2,
        },
        read_timeout: Duration::from_millis(100),
        trace: trace.clone(),
        ..ClientConfig::default()
    });

    // All segments from all peers in one submission, deliberately listed
    // peer-major (worst case for naive FIFO dispatch).
    let segs: Vec<SegmentRef> = servers
        .iter()
        .enumerate()
        .flat_map(|(node, s)| {
            segments(
                s,
                (node * MOFS_PER_PEER) as u64..((node + 1) * MOFS_PER_PEER) as u64,
            )
        })
        .collect();
    let fetched = client.fetch_all(&segs).expect("chaos fetch");
    assert_eq!(fetched.len(), segs.len());
    dump_trace(&trace, "chaos_fairness.jsonl");

    let q = trace.query();
    assert_eq!(q.count("sched.dispatch"), segs.len());
    let peers = q.entities("sched.dispatch");
    assert_eq!(peers.len(), PEERS, "every supplier must appear: {peers:?}");
    for peer in peers {
        let gap = q
            .max_positional_gap("sched.dispatch", peer)
            .expect("peer dispatched");
        assert!(
            gap <= PEERS,
            "{peer:?} starved: waited {gap} dispatches in a {PEERS}-peer rotation"
        );
    }
    for s in servers {
        s.shutdown();
    }
}

/// Retry backoff, read straight off the trace: against a dead supplier
/// the client's `retry.backoff` sleeps follow the exponential schedule
/// `base << (attempt-1)`, each within the configured jitter band, and
/// are monotonically non-decreasing while unclamped.
#[test]
fn retry_backoff_trace_matches_exponential_schedule() {
    // A port that refuses connections: bind, learn the address, drop.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };

    let policy = RetryPolicy {
        max_retries: 4,
        base_backoff: Duration::from_millis(5),
        // High enough that no attempt clamps, so monotonicity must hold.
        max_backoff: Duration::from_secs(10),
        jitter_frac: 0.2,
    };
    let trace = Trace::recording(1 << 10);
    let client = NetMergerClient::with_client_config(ClientConfig {
        retry: policy,
        connect_timeout: Duration::from_millis(200),
        trace: trace.clone(),
        ..ClientConfig::default()
    });
    let err = client
        .fetch_segment(SegmentRef {
            addr: dead_addr,
            mof: 0,
            reducer: 0,
        })
        .expect_err("dead supplier must exhaust retries");
    assert!(err.to_string().to_lowercase().contains("gave up"), "{err}");

    let q = trace.query();
    let backoffs = q.named("retry.backoff");
    assert_eq!(
        backoffs.len(),
        policy.max_retries as usize,
        "one backoff sleep per retry"
    );
    // Attempt numbers are recorded in order: 1, 2, ..., max_retries.
    let attempts: Vec<u64> = backoffs.events().iter().map(|e| e.a).collect();
    assert_eq!(attempts, (1..=policy.max_retries as u64).collect::<Vec<_>>());
    // Every event targets the dead peer.
    assert_eq!(
        q.entities("retry.backoff"),
        vec![Entity::peer(u64::from(dead_addr.port()))]
    );

    let delays = q.values_b("retry.backoff");
    for (i, (&attempt, &delay)) in attempts.iter().zip(delays.iter()).enumerate() {
        let raw = policy
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1) as u32)
            .min(policy.max_backoff)
            .as_nanos() as f64;
        let d = delay as f64;
        assert!(
            d >= raw * (1.0 - policy.jitter_frac) - 1.0 && d <= raw * (1.0 + policy.jitter_frac) + 1.0,
            "attempt {attempt}: delay {d}ns outside jitter band of raw {raw}ns"
        );
        if i > 0 {
            assert!(
                delay >= delays[i - 1],
                "backoff regressed: {delays:?}"
            );
        }
    }
    // The span's measured duration covers the requested sleep.
    for e in backoffs.events() {
        assert!(
            e.duration() >= e.b,
            "slept {}ns but promised {}ns",
            e.duration(),
            e.b
        );
    }
}
