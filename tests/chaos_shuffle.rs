//! Chaos test of the real TCP dataplane: a multi-node shuffle under a
//! seeded fault plan — injected resets, stalls past the read deadline,
//! and one supplier that is dead when the shuffle starts and restarts
//! mid-flight on the same address. The merged output must be byte-exact
//! against a reference sort, and the client's FetchStats must show the
//! recovery machinery actually fired.

use jbs::des::DetRng;
use jbs::mapred::merge::{is_sorted, sort_run, Record};
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, FaultAction, FaultKind, FaultPlan, Hook, MofStore, MofSupplierServer,
    NetMergerClient, RetryPolicy, ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use std::sync::Arc;
use std::time::Duration;

const REDUCERS: usize = 4;
const MAPS_PER_NODE: usize = 2;
const RECORDS_PER_MAP: usize = 600;

/// The fault plan every chaos supplier runs: background resets and
/// stalls on the response path, plus one forced reset and one forced
/// stall so the recovery counters are guaranteed to move.
fn chaos_plan(seed: u64) -> Arc<FaultPlan> {
    FaultPlan::builder(seed)
        .reset(Hook::ServerWriteResponse, 0.03)
        .stall(Hook::ServerWriteResponse, 0.02, Duration::from_millis(400))
        .force(Hook::ServerWriteResponse, 3, FaultKind::Reset)
        .force(Hook::ServerWriteResponse, 9, FaultKind::Stall)
        .build()
}

/// A client tuned for the chaos cluster: small buffers (many exchanges,
/// many fault opportunities), a read deadline shorter than the injected
/// stall, and a retry budget generous enough to ride out the supplier
/// restart.
fn chaos_client() -> NetMergerClient {
    NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(30),
            max_backoff: Duration::from_millis(300),
            jitter_frac: 0.2,
        },
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_secs(1),
        ..ClientConfig::default()
    })
}

fn records_for_node(node: usize, rng: &mut DetRng) -> Vec<Vec<Record>> {
    let _ = node;
    (0..MAPS_PER_NODE)
        .map(|_| gen_terasort_records(RECORDS_PER_MAP, rng))
        .collect()
}

#[test]
fn shuffle_survives_seeded_chaos_byte_exact() {
    let mut rng = DetRng::new(4242);
    let partitioner = HashPartitioner::new(REDUCERS);
    let mut all_records: Vec<Record> = Vec::new();

    // Node 0: the supplier that is DOWN when the shuffle starts. Its MOFs
    // live in a caller-managed directory so the restarted incarnation can
    // reopen them.
    let node0_dir = std::env::temp_dir().join(format!("jbs-chaos-node0-{}", std::process::id()));
    std::fs::create_dir_all(&node0_dir).expect("node0 dir");
    let node0_addr = {
        let mut store = MofStore::at(&node0_dir).expect("node0 store");
        for (m, records) in records_for_node(0, &mut rng).into_iter().enumerate() {
            all_records.extend(records.clone());
            store
                .write_mof(m as u64, records, REDUCERS, |k| partitioner.partition(k))
                .expect("write mof");
        }
        let server = MofSupplierServer::start(store).expect("node0 server");
        let addr = server.addr();
        // Die before any client ever connects.
        server.shutdown();
        addr
    };

    // Nodes 1 and 2: alive the whole time, but running fault plans that
    // reset and stall responses on a seed-deterministic schedule.
    let mut servers = Vec::new();
    let mut plans = Vec::new();
    for node in 1..3usize {
        let mut store = MofStore::temp().expect("store");
        for (m, records) in records_for_node(node, &mut rng).into_iter().enumerate() {
            all_records.extend(records.clone());
            store
                .write_mof((node * MAPS_PER_NODE + m) as u64, records, REDUCERS, |k| {
                    partitioner.partition(k)
                })
                .expect("write mof");
        }
        let plan = chaos_plan(7000 + node as u64);
        plans.push(Arc::clone(&plan));
        servers.push(
            MofSupplierServer::start_with_options(
                store,
                ServerOptions {
                    buffer_bytes: 4 << 10,
                    faults: Some(plan),
                    ..ServerOptions::default()
                },
            )
            .expect("server"),
        );
    }

    // Restart node 0 on its original address while the shuffle is already
    // retrying against the dead port.
    let restart_dir = node0_dir.clone();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let store = MofStore::at(&restart_dir).expect("reopen node0 store");
        MofSupplierServer::start_on(node0_addr, store, ServerOptions::default())
            .expect("restart node0")
    });

    let segments_for = |reducer: usize| -> Vec<SegmentRef> {
        let mut segs: Vec<SegmentRef> = (0..MAPS_PER_NODE)
            .map(|m| SegmentRef {
                addr: node0_addr,
                mof: m as u64,
                reducer: reducer as u32,
            })
            .collect();
        for (i, s) in servers.iter().enumerate() {
            let node = i + 1;
            for m in 0..MAPS_PER_NODE {
                segs.push(SegmentRef {
                    addr: s.addr(),
                    mof: (node * MAPS_PER_NODE + m) as u64,
                    reducer: reducer as u32,
                });
            }
        }
        segs
    };

    let client = chaos_client();
    let outputs: Vec<Vec<Record>> = (0..REDUCERS)
        .map(|r| {
            client
                .shuffle_and_merge(&segments_for(r))
                .expect("merge under chaos")
        })
        .collect();

    // Byte-exact conservation: the union of reducer outputs equals the
    // generated records, faults notwithstanding.
    let mut got: Vec<Record> = outputs.iter().flatten().cloned().collect();
    let mut expect = all_records.clone();
    sort_run(&mut got);
    sort_run(&mut expect);
    assert_eq!(got.len(), expect.len(), "records lost or duplicated");
    assert_eq!(got, expect, "shuffled bytes differ from ground truth");
    for (r, out) in outputs.iter().enumerate() {
        assert!(is_sorted(out), "reducer {r} unsorted");
    }

    // The recovery machinery demonstrably fired.
    let fs = client.fetch_stats();
    assert!(fs.retries >= 1, "no retries recorded: {fs:?}");
    assert!(fs.reconnects >= 1, "no reconnects recorded: {fs:?}");
    assert!(fs.resets >= 1, "no resets observed: {fs:?}");
    assert!(
        fs.timeouts >= 1,
        "no stall-driven timeouts observed: {fs:?}"
    );
    assert!(
        fs.connect_failures >= 1,
        "dead node 0 should have refused at least one dial: {fs:?}"
    );

    // And the faults really were injected (not dodged): each faulty
    // supplier's plan shows at least the forced reset and stall.
    for plan in &plans {
        let ps = plan.stats();
        assert!(ps.resets >= 1, "plan injected no reset: {ps:?}");
        assert!(ps.stalls >= 1, "plan injected no stall: {ps:?}");
    }

    // Pipeline gauge coherence, chaos notwithstanding. The merge has
    // returned, so after the workers drain their speculative tails the
    // live gauges must read zero while the peaks prove the pipeline ran.
    let fs = {
        let mut fs = client.fetch_stats();
        for _ in 0..400 {
            if fs.queued_ops == 0 && fs.window_inflight == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            fs = client.fetch_stats();
        }
        fs
    };
    assert_eq!(fs.queued_ops, 0, "ops stuck in peer queues: {fs:?}");
    assert_eq!(fs.window_inflight, 0, "requests stuck in flight: {fs:?}");
    assert!(fs.window_peak >= 1, "pipelining never engaged: {fs:?}");
    assert!(fs.queue_depth_peak >= 1, "no op ever queued: {fs:?}");
    for (addr, depth) in client.queue_depths() {
        assert_eq!(depth, 0, "queue for {addr} not drained");
    }

    // Supplier-side coherence: the prefetch queue drains once traffic
    // stops, and the buffer pool never returns more than it handed out.
    for s in &servers {
        let mut snap = s.stats_snapshot();
        for _ in 0..400 {
            if snap.prefetch_queue_len == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            snap = s.stats_snapshot();
        }
        assert_eq!(snap.prefetch_queue_len, 0, "stage jobs stranded: {snap:?}");
        assert!(snap.prefetch_queue_peak >= snap.prefetch_queue_len);
        assert!(snap.requests >= 1 && snap.bytes >= 1, "{snap:?}");
        assert!(
            snap.datacache_hits >= 1,
            "read-ahead never paid off: {snap:?}"
        );
        assert!(
            snap.sync_stages + snap.prefetched_batches >= 1,
            "disk thread never staged: {snap:?}"
        );
        let bp = snap.bufpool;
        assert!(
            bp.returns + bp.dropped <= bp.hits + bp.misses,
            "pool returned buffers it never handed out: {bp:?}"
        );
    }

    let revived = restarter.join().expect("restart thread");
    revived.shutdown();
    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&node0_dir);
}

#[test]
fn resumed_fetch_continues_at_received_offset() {
    // One supplier, one multi-chunk segment, a reset forced on the third
    // exchange: the client must resume at 2 buffers' offset, not refetch
    // from zero.
    let mut rng = DetRng::new(99);
    let records = gen_terasort_records(2000, &mut rng);
    let mut store = MofStore::temp().expect("store");
    store.write_mof(0, records, 1, |_| 0).expect("write mof");

    let buffer: u64 = 4 << 10;
    let plan = FaultPlan::builder(1)
        .force(Hook::ServerWriteResponse, 2, FaultKind::Reset)
        .build();
    let server = MofSupplierServer::start_with_options(
        store,
        ServerOptions {
            buffer_bytes: buffer,
            faults: Some(Arc::clone(&plan)),
            ..ServerOptions::default()
        },
    )
    .expect("server");

    let client = NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: buffer,
        retry: RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            jitter_frac: 0.0,
        },
        ..ClientConfig::default()
    });
    let seg = SegmentRef {
        addr: server.addr(),
        mof: 0,
        reducer: 0,
    };
    let fetched = client.fetch_segment(seg).expect("fetch with resume");

    // Reference copy from a fault-free fetch.
    let clean_client = NetMergerClient::with_config(buffer, 8);
    let reference = clean_client.fetch_segment(seg).expect("clean fetch");
    assert_eq!(fetched, reference, "resumed fetch corrupted the segment");

    let fs = client.fetch_stats();
    assert_eq!(plan.stats().resets, 1, "exactly the forced reset fired");
    assert!(fs.retries >= 1);
    assert_eq!(
        fs.resumed_bytes,
        2 * buffer,
        "retry must resume after the two chunks already received"
    );
    server.shutdown();
}

#[test]
fn same_seed_yields_identical_fault_schedule() {
    // The acceptance property for chaos runs: two plans built from the
    // same seed and rules produce the same decision at every occurrence
    // of every hook, so a failing chaos run replays exactly.
    let a = chaos_plan(4242);
    let b = chaos_plan(4242);
    let mut resets = 0;
    let mut stalls = 0;
    for _ in 0..300 {
        let da = a.decide(Hook::ServerWriteResponse);
        let db = b.decide(Hook::ServerWriteResponse);
        assert_eq!(da, db, "fault schedules diverged");
        match da {
            FaultAction::Reset => resets += 1,
            FaultAction::Stall(_) => stalls += 1,
            _ => {}
        }
    }
    assert_eq!(a.stats(), b.stats());
    assert!(resets >= 1, "schedule contains no reset");
    assert!(stalls >= 1, "schedule contains no stall");

    // A different seed gives a different schedule.
    let c = chaos_plan(77);
    let d = chaos_plan(4242);
    let mismatches = (0..300)
        .filter(|_| c.decide(Hook::ServerWriteResponse) != d.decide(Hook::ServerWriteResponse))
        .count();
    assert!(
        mismatches > 0,
        "different seeds produced identical schedules"
    );
}
