//! Cluster chaos test: a 3-supplier real-socket shuffle with the
//! control plane driving replica failover. Segments are written at
//! replication factor 2 through the registry's rendezvous placement,
//! suppliers heartbeat into the registry from background threads, and a
//! monitor pushes the registry's view into the data plane's route
//! table. One supplier is then killed mid-shuffle while seeded resets
//! and stalls batter the survivors — the merge must still come out
//! byte-exact by failing over to the surviving replicas, and every
//! `failover.redirect` event in the trace must come only *after* a
//! breaker-open or a registry unhealthy mark, never spontaneously.

use jbs::control::{ControlClock, HeartbeatLoad, Heartbeater, Monitor, Registry, Replicator};
use jbs::des::DetRng;
use jbs::mapred::merge::{is_sorted, sort_run, Record};
use jbs::obs::Trace;
use jbs::store_hybrid::{HybridConfig, HybridStore};
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, FaultKind, FaultPlan, Hook, MofStore, MofSupplierServer, NetMergerClient,
    RetryPolicy, RouteTable, ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 3;
const REDUCERS: usize = 4;
const MAPS_PER_NODE: usize = 2;
const RECORDS_PER_MAP: usize = 400;
/// Append granularity into the replicated hybrid stores.
const CHUNK: usize = 4 << 10;
/// The node that gets killed mid-shuffle.
const VICTIM: usize = 1;

/// Seeded resets and stalls on the serving path, with one forced
/// occurrence of each so the counters are guaranteed to move.
fn chaos_plan(seed: u64) -> Arc<FaultPlan> {
    FaultPlan::builder(seed)
        .reset(Hook::ServerWriteResponse, 0.01)
        .stall(Hook::ServerWriteResponse, 0.01, Duration::from_millis(20))
        .force(Hook::ServerWriteResponse, 3, FaultKind::Reset)
        .force(Hook::ServerWriteResponse, 7, FaultKind::Stall)
        .build()
}

/// Dump a trace's JSONL next to the build artifacts so CI can upload it.
fn dump_trace(trace: &Trace, name: &str) {
    let dir = std::path::Path::new("target/traces");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), trace.to_jsonl());
    }
}

/// Materialize map outputs as byte-real MOF segments via a scratch
/// on-disk store.
fn segment_bytes(
    node: usize,
    maps: &[Vec<Record>],
    partitioner: &HashPartitioner,
) -> Vec<(u64, u32, Vec<u8>)> {
    let mut scratch = MofStore::temp().expect("scratch store");
    let mut out = Vec::new();
    for (m, records) in maps.iter().enumerate() {
        let mof = (node * MAPS_PER_NODE + m) as u64;
        scratch
            .write_mof(mof, records.clone(), REDUCERS, |k| partitioner.partition(k))
            .expect("write mof");
        for r in 0..REDUCERS as u32 {
            let bytes = scratch
                .read_segment_range(mof, r, 0, 0)
                .expect("read segment")
                .expect("segment exists");
            assert!(!bytes.is_empty(), "workload left reducer {r} empty");
            out.push((mof, r, bytes));
        }
    }
    out
}

/// Earliest timestamp of `name` in the recorded events, if any.
fn first_t(events: &[jbs::obs::Event], name: &str) -> Option<u64> {
    events.iter().filter(|e| e.name == name).map(|e| e.t).min()
}

#[test]
fn shuffle_survives_killed_supplier_via_replica_failover() {
    let started = Instant::now();
    let trace = Trace::recording(1 << 20);
    let mut rng = DetRng::new(9191);
    let partitioner = HashPartitioner::new(REDUCERS);

    // Control plane: registry (RF=2, fast expiry), route table, clock.
    let registry = Arc::new(Registry::new(jbs::control::RegistryConfig {
        heartbeat_interval_nanos: 25_000_000, // 25ms
        unhealthy_after_missed: 2,
        replication: 2,
        trace: trace.clone(),
        ..jbs::control::RegistryConfig::default()
    }));
    let routes = Arc::new(RouteTable::new());
    let clock = ControlClock::new();

    // Three hybrid suppliers, each under seeded resets/stalls.
    let mut hybrids = Vec::new();
    let mut servers = Vec::new();
    let mut plans = Vec::new();
    for n in 0..NODES {
        let hybrid = HybridStore::new(HybridConfig {
            trace: trace.clone(),
            ..HybridConfig::default()
        })
        .expect("hybrid store");
        let plan = chaos_plan(100 + n as u64);
        let server = MofSupplierServer::start_with_options(
            MofStore::temp().expect("empty disk store"),
            ServerOptions {
                buffer_bytes: 4 << 10,
                faults: Some(Arc::clone(&plan)),
                trace: trace.clone(),
                hybrid: Some(Arc::clone(&hybrid)),
                ..ServerOptions::default()
            },
        )
        .expect("supplier");
        hybrids.push(hybrid);
        plans.push(plan);
        servers.push(server);
    }
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.addr()).collect();

    // Heartbeaters register each supplier and keep it live; the monitor
    // expires silent nodes and pushes health + placements into the
    // route table the data plane consults.
    let mut heartbeaters: Vec<Option<Heartbeater>> = Vec::new();
    for n in 0..NODES {
        let h = Arc::clone(&hybrids[n]);
        heartbeaters.push(Some(Heartbeater::spawn(
            Arc::clone(&registry),
            Arc::clone(&clock),
            addrs[n],
            Duration::from_millis(8),
            move || {
                let t = h.stats();
                HeartbeatLoad {
                    memory_bytes: t.memory_bytes,
                    spilled_bytes: t.spilled_bytes,
                    remote_bytes: t.remote_bytes,
                    ..HeartbeatLoad::default()
                }
            },
        )));
    }
    let monitor = Monitor::spawn(
        Arc::clone(&registry),
        Arc::clone(&clock),
        Arc::clone(&routes),
        Duration::from_millis(10),
    );

    // Generate the workload and replicate every segment at RF=2 through
    // the registry's placement, in pipeline order, chunk by chunk.
    let mut all_records: Vec<Record> = Vec::new();
    let mut replicator = Replicator::new(Arc::clone(&registry), trace.clone());
    for (a, h) in addrs.iter().zip(&hybrids) {
        replicator.add_store(*a, Arc::clone(h));
    }
    for (n, &primary) in addrs.iter().enumerate() {
        let maps: Vec<Vec<Record>> = (0..MAPS_PER_NODE)
            .map(|_| gen_terasort_records(RECORDS_PER_MAP, &mut rng))
            .collect();
        for m in &maps {
            all_records.extend(m.clone());
        }
        for (mof, r, bytes) in segment_bytes(n, &maps, &partitioner) {
            for chunk in bytes.chunks(CHUNK) {
                let placed = replicator
                    .replicate(primary, mof, r, chunk)
                    .expect("replicate");
                assert_eq!(placed.len(), 2, "RF=2 placement for mof {mof}");
                assert_eq!(placed[0], primary, "primary leads placement");
            }
        }
    }
    registry.sync_routes(&routes);

    // Every placement is fully mirrored: each replica holds the same
    // partition lengths as the primary.
    for mof in 0..(NODES * MAPS_PER_NODE) as u64 {
        let placement = registry.placement(mof).expect("placed");
        for r in 0..REDUCERS as u32 {
            let lens: Vec<Option<u64>> = placement
                .iter()
                .map(|a| {
                    let i = addrs.iter().position(|x| x == a).expect("known addr");
                    hybrids[i].partition_len(mof, r)
                })
                .collect();
            assert!(lens[0].is_some(), "primary lost mof {mof}/{r}");
            assert_eq!(lens[0], lens[1], "replica diverged on mof {mof}/{r}");
        }
    }

    // NetMerger with the registry-fed route table wired in: the
    // scheduler reroutes proactively on unhealthy marks, the client
    // fails over reactively on breaker-open errors.
    let client = NetMergerClient::with_client_config(ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
            jitter_frac: 0.2,
        },
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(1),
        integrity_retries: 32,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        routes: Some(Arc::clone(&routes)),
        trace: trace.clone(),
        ..ClientConfig::default()
    });

    let segments_for = |reducer: usize| -> Vec<SegmentRef> {
        (0..(NODES * MAPS_PER_NODE) as u64)
            .map(|mof| SegmentRef {
                addr: addrs[(mof as usize) / MAPS_PER_NODE],
                mof,
                reducer: reducer as u32,
            })
            .collect()
    };

    // Wave 1: all suppliers up (resets/stalls only).
    let mut outputs: Vec<Vec<Record>> = (0..2)
        .map(|r| client.shuffle_and_merge(&segments_for(r)).expect("wave 1"))
        .collect();

    // Kill the victim mid-shuffle: crash-stop its heartbeats and tear
    // the server down hard. No deregistration — the registry must
    // *discover* the death via missed heartbeats while the client's
    // breaker discovers it via connection failures.
    if let Some(hb) = heartbeaters[VICTIM].take() {
        hb.stop();
    }
    servers.remove(VICTIM).shutdown();

    // Wave 2: fetches still name the victim as primary; they must fail
    // over to the surviving replica of each of its MOFs.
    outputs
        .extend((2..REDUCERS).map(|r| client.shuffle_and_merge(&segments_for(r)).expect("wave 2")));

    // Byte-exact conservation across the kill.
    let mut got: Vec<Record> = outputs.iter().flatten().cloned().collect();
    let mut expect = all_records.clone();
    sort_run(&mut got);
    sort_run(&mut expect);
    assert_eq!(got.len(), expect.len(), "records lost or duplicated");
    assert_eq!(got, expect, "merge diverged from ground truth");
    for (r, out) in outputs.iter().enumerate() {
        assert!(is_sorted(out), "reducer {r} unsorted");
    }

    // The failover really happened and went through the control plane.
    let fs = client.fetch_stats();
    assert!(fs.failovers >= 1, "no replica failover recorded: {fs:?}");
    let deadline = Instant::now() + Duration::from_secs(10);
    while registry.is_live(addrs[VICTIM]) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        !registry.is_live(addrs[VICTIM]),
        "registry never expired the killed supplier"
    );
    for m in 0..MAPS_PER_NODE as u64 {
        let mof = (VICTIM * MAPS_PER_NODE) as u64 + m;
        let resolved = registry.resolve(mof);
        assert!(
            !resolved.contains(&addrs[VICTIM]),
            "resolve still names the dead supplier for mof {mof}"
        );
        assert!(
            !resolved.is_empty(),
            "mof {mof} lost all replicas: placement {:?}",
            registry.placement(mof)
        );
    }

    // The faults really were injected on the survivors.
    let injected: u64 = plans.iter().map(|p| p.stats().total()).sum();
    assert!(injected >= 2, "resets/stalls never fired");

    // Trace claims. Replication is visible; and the ordering invariant:
    // the first failover.redirect may only follow a breaker-open or a
    // registry unhealthy mark — redirects are never spontaneous.
    let q = trace.query();
    assert!(q.count("replica.write") >= 1, "no replica write traced");
    assert!(q.count("failover.redirect") >= 1, "no redirect traced");
    assert!(
        q.count("registry.unhealthy") >= 1,
        "registry never marked the victim unhealthy"
    );
    let events = q.events();
    let redirect = first_t(events, "failover.redirect").expect("redirect exists");
    let breaker_open = first_t(events, "breaker.open");
    let unhealthy = first_t(events, "registry.unhealthy");
    let earliest_cause = [breaker_open, unhealthy].into_iter().flatten().min();
    let cause = earliest_cause.expect("a failover cause must be traced");
    assert!(
        redirect >= cause,
        "failover.redirect at {redirect}ns precedes its earliest cause at {cause}ns"
    );
    dump_trace(&trace, "chaos_cluster.jsonl");

    assert!(
        started.elapsed() < Duration::from_secs(60),
        "cluster chaos took {:?}",
        started.elapsed()
    );

    monitor.stop();
    for hb in heartbeaters.into_iter().flatten() {
        hb.stop();
    }
    for server in servers {
        server.shutdown();
    }
    drop(client);
}
