//! Trace-driven decommission claims: the graceful exit of a supplier
//! must follow the documented sequence — deregister from the registry,
//! reroute the data plane, then drain (dropping partitions a surviving
//! replica holds instead of copying them to the remote tier) — and no
//! segment read may be lost across it: every byte fetched before the
//! decommission is fetched again, byte-identical, from the surviving
//! replica afterwards. The ordering is proven from the recorded trace
//! with `TraceQuery::happens_before`, not from test-side bookkeeping.

use jbs::control::{decommission, ControlClock, Registry, RegistryConfig, Replicator};
use jbs::des::DetRng;
use jbs::mapred::merge::Record;
use jbs::obs::Trace;
use jbs::store_hybrid::{HybridConfig, HybridStore};
use jbs::transport::client::SegmentRef;
use jbs::transport::{
    ClientConfig, MofStore, MofSupplierServer, NetMergerClient, RetryPolicy, RouteTable,
    ServerOptions,
};
use jbs::workloads::{gen_terasort_records, HashPartitioner, Partitioner};
use std::sync::Arc;
use std::time::Duration;

const REDUCERS: usize = 3;
const MAPS: usize = 2;
const RECORDS_PER_MAP: usize = 300;

fn dump_trace(trace: &Trace, name: &str) {
    let dir = std::path::Path::new("target/traces");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), trace.to_jsonl());
    }
}

#[test]
fn decommission_sequence_is_ordered_and_loses_no_reads() {
    let trace = Trace::recording(1 << 20);
    let mut rng = DetRng::new(2727);
    let partitioner = HashPartitioner::new(REDUCERS);
    let clock = ControlClock::new();

    // Two suppliers, RF=2: every partition on the primary is mirrored
    // on the survivor.
    let registry = Arc::new(Registry::new(RegistryConfig {
        // Long window: nothing expires by accident; health transitions
        // in this test come only from the decommission itself.
        heartbeat_interval_nanos: 60_000_000_000,
        replication: 2,
        trace: trace.clone(),
        ..RegistryConfig::default()
    }));
    let routes = Arc::new(RouteTable::new());

    let mut hybrids = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..2 {
        let hybrid = HybridStore::new(HybridConfig {
            trace: trace.clone(),
            ..HybridConfig::default()
        })
        .expect("hybrid store");
        let server = MofSupplierServer::start_with_options(
            MofStore::temp().expect("empty disk store"),
            ServerOptions {
                buffer_bytes: 4 << 10,
                trace: trace.clone(),
                hybrid: Some(Arc::clone(&hybrid)),
                ..ServerOptions::default()
            },
        )
        .expect("supplier");
        hybrids.push(hybrid);
        servers.push(server);
    }
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.addr()).collect();
    registry.register(addrs[0], 0);
    registry.register(addrs[1], 0);

    // Replicate MOF segments to both nodes through the registry
    // placement (primary = node 0).
    let mut replicator = Replicator::new(Arc::clone(&registry), trace.clone());
    replicator.add_store(addrs[0], Arc::clone(&hybrids[0]));
    replicator.add_store(addrs[1], Arc::clone(&hybrids[1]));
    let mut scratch = MofStore::temp().expect("scratch store");
    for mof in 0..MAPS as u64 {
        let records: Vec<Record> = gen_terasort_records(RECORDS_PER_MAP, &mut rng);
        scratch
            .write_mof(mof, records, REDUCERS, |k| partitioner.partition(k))
            .expect("write mof");
        for r in 0..REDUCERS as u32 {
            let bytes = scratch
                .read_segment_range(mof, r, 0, 0)
                .expect("read segment")
                .expect("segment exists");
            let placed = replicator
                .replicate(addrs[0], mof, r, &bytes)
                .expect("replicate");
            assert_eq!(placed, addrs, "RF=2 placement spans both nodes");
        }
    }
    registry.sync_routes(&routes);
    let fed_primary = hybrids[0].stats().total_written;
    assert!(fed_primary > 0);

    let client_config = || ClientConfig {
        buffer_bytes: 4 << 10,
        retry: RetryPolicy {
            max_retries: 6,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
            ..RetryPolicy::default()
        },
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        routes: Some(Arc::clone(&routes)),
        trace: trace.clone(),
        ..ClientConfig::default()
    };

    // Every fetch names the doomed primary.
    let mut segs = Vec::new();
    for mof in 0..MAPS as u64 {
        for reducer in 0..REDUCERS as u32 {
            segs.push(SegmentRef {
                addr: addrs[0],
                mof,
                reducer,
            });
        }
    }

    // Wave 1: served by the primary. Its client is dropped before the
    // decommission so the connection drain sees the sockets close —
    // consolidated connections are per-client state.
    let wave1 = NetMergerClient::with_client_config(client_config());
    let before = wave1.fetch_all(&segs).expect("wave 1 fetch");
    assert!(before.iter().all(|b| !b.is_empty()));
    drop(wave1);

    // Graceful decommission of the primary: deregister -> reroute ->
    // replica-aware drain. Every partition has a live replica on the
    // survivor, so the drain must *drop* them all rather than copying
    // to the remote tier.
    let server0 = servers.remove(0);
    let clean = decommission(
        &registry,
        &routes,
        addrs[0],
        server0,
        &hybrids[0],
        Duration::from_secs(2),
        clock.now_nanos(),
    );
    assert!(clean, "decommission did not drain cleanly");

    let s0 = hybrids[0].stats();
    assert_eq!(
        s0.replica_drops,
        (MAPS * REDUCERS) as u64,
        "every replicated partition must be dropped, not copied: {s0:?}"
    );
    assert_eq!(s0.replica_dropped_bytes, fed_primary, "drop bytes: {s0:?}");
    assert_eq!(
        s0.remote_bytes, 0,
        "nothing should reach the remote tier: {s0:?}"
    );
    assert_eq!(s0.drains, 1, "exactly one drain: {s0:?}");
    assert_eq!(
        registry.health(addrs[0]),
        Some(jbs::control::Health::Decommissioned)
    );
    assert!(routes.is_unhealthy(addrs[0]), "route table not rerouted");

    // Wave 2: the same fetches, still naming the decommissioned
    // address, must be rerouted to the survivor and return identical
    // bytes — zero segment reads lost across the decommission.
    let client = NetMergerClient::with_client_config(client_config());
    let after = client.fetch_all(&segs).expect("wave 2 fetch");
    assert_eq!(before, after, "segment bytes diverged across decommission");
    let fs = client.fetch_stats();
    assert!(fs.failovers >= segs.len() as u64, "reroutes: {fs:?}");

    // Trace-driven ordering claims: deregister strictly precedes the
    // server drain, which strictly precedes the replica drops inside
    // it; and no redirect fires before the drops are done (wave 2
    // started after the drain returned).
    let q = trace.query();
    assert_eq!(q.count("registry.deregister"), 1);
    assert_eq!(q.count("server.drain"), 1);
    assert_eq!(q.count("tier.drop.replica"), MAPS * REDUCERS);
    assert!(
        q.happens_before("registry.deregister", "server.drain"),
        "deregister must precede the connection drain"
    );
    assert!(
        q.happens_before("registry.deregister", "tier.drop.replica"),
        "deregister must precede the tier drops"
    );
    assert!(
        q.happens_before("server.drain", "tier.drop.replica"),
        "the drain begins before its tier drops"
    );
    assert!(
        q.happens_before("tier.drop.replica", "failover.redirect"),
        "redirects must only start once the drain finished dropping"
    );
    dump_trace(&trace, "decommission_claims.jsonl");

    for server in servers {
        server.shutdown();
    }
    drop(client);
}
