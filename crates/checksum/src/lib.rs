//! Software CRC32C (Castagnoli) for end-to-end shuffle integrity.
//!
//! The JBS dataplane moves intermediate data outside the JVM's safety
//! net, so the wire frame carries a checksum computed at the supplier
//! the moment a chunk leaves `disk.read`/the DataCache and verified by
//! the NetMerger before the chunk is admitted to the merge. CRC32C is
//! the iSCSI/ext4 polynomial (`0x1EDC6F41`); this is a slice-by-8 table
//! implementation — dependency-free, no SIMD, eight bytes per table
//! round — fast enough that the pipelined shuffle keeps its speedup
//! (measured in `BENCH_shuffle.json` as `crc_overhead_frac`).
//!
//! Two entry points: one-shot [`crc32c`] for a contiguous chunk, and the
//! streaming [`Crc32c`] hasher for callers that see the payload in
//! pieces.

/// The reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][b]` is the CRC contribution
/// of byte `b` seen `k` positions before the end of an 8-byte block.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC32C of `bytes` in one shot.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(bytes);
    h.finish()
}

/// Streaming CRC32C hasher.
///
/// ```
/// use jbs_checksum::{crc32c, Crc32c};
/// let mut h = Crc32c::new();
/// h.update(b"123");
/// h.update(b"456789");
/// assert_eq!(h.finish(), crc32c(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Feed `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunks_exact(8) guarantees the slice converts; the state
            // folds into the low half of the block, the high half is
            // independent of the running CRC.
            let block = u64::from_le_bytes(match chunk.try_into() {
                Ok(b) => b,
                Err(_) => unreachable!(),
            });
            let lo = (block as u32) ^ crc;
            let hi = (block >> 32) as u32;
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            // Each table has exactly 256 entries and idx is masked.
            crc = TABLES[0][idx] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far. Non-consuming: more
    /// `update` calls may follow and `finish` may be called again.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical CRC32C check value (RFC 3720 / iSCSI test vector).
    #[test]
    fn rfc3720_check_value() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    /// Known vectors from the iSCSI specification appendix.
    #[test]
    fn iscsi_vectors() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(b""), 0);
    }

    /// The slice-by-8 fast path agrees with the byte-at-a-time table on
    /// every length around the 8-byte block boundaries.
    #[test]
    fn slice_by_8_matches_bytewise() {
        let bytewise = |bytes: &[u8]| -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
            }
            !crc
        };
        let data: Vec<u8> = (0..257u32).map(|i| (i * 131 % 251) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32c(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }

    /// Streaming across arbitrary split points equals the one-shot CRC,
    /// including splits that leave the fast path mid-block.
    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32c(&data);
        for split in [0, 1, 3, 7, 8, 9, 15, 512, 1021, 1023, 1024] {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    /// Every single-bit flip changes the checksum (the property the
    /// integrity layer rests on for the corruption faults we inject).
    #[test]
    fn single_bit_flips_always_detected() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "flip {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut h = Crc32c::new();
        h.update(b"abc");
        let a = h.finish();
        assert_eq!(a, h.finish());
        h.update(b"def");
        assert_eq!(h.finish(), crc32c(b"abcdef"));
    }
}
