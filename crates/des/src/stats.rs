//! Small statistics helpers used across the experiment harness.

use crate::time::SimTime;

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in seconds.
    pub fn push_time(&mut self, t: SimTime) {
        self.push(t.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Exact percentile over a stored sample (fine at experiment scales).
#[derive(Debug, Clone, Default)]
pub struct Sample {
    values: Vec<f64>,
    sorted: bool,
}

impl Sample {
    /// An empty sample.
    pub fn new() -> Self {
        Sample::default()
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `q`-th percentile with nearest-rank interpolation, `q` in `[0, 1]`.
    /// Returns 0 for an empty sample.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN observations"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let f = pos - lo as f64;
            self.values[lo] * (1.0 - f) + self.values[hi] * f
        }
    }

    /// Median shorthand.
    pub fn median(&mut self) -> f64 {
        self.percentile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn push_time_records_seconds() {
        let mut s = OnlineStats::new();
        s.push_time(SimTime::from_millis(1500));
        assert!((s.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let mut s = Sample::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        assert!((s.median() - 50.5).abs() < 1e-9);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((s.percentile(1.0) - 100.0).abs() < 1e-9);
        assert!((s.percentile(0.25) - 25.75).abs() < 1e-9);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let mut s = Sample::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn percentile_after_interleaved_push() {
        let mut s = Sample::new();
        s.push(10.0);
        assert_eq!(s.median(), 10.0);
        s.push(0.0);
        assert_eq!(s.median(), 5.0);
    }
}
