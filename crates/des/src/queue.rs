//! Deterministic event queue.
//!
//! A thin wrapper over [`BinaryHeap`] keyed by `(time, sequence)`. The
//! monotonically increasing sequence number makes the pop order total and
//! reproducible even when many events share a timestamp — a requirement for
//! the determinism contract of the whole simulator.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedule `payload` at `time`. Events pushed earlier pop first among
    /// equal timestamps.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.time, e.payload)
        })
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever popped (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counts_processed_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1u8);
        q.push(SimTime::ZERO, 2u8);
        q.pop();
        assert_eq!(q.events_processed(), 1);
        q.pop();
        assert_eq!(q.events_processed(), 2);
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(5), 5);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t, v), (SimTime::from_secs(5), 5));
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(20), 20);
        let vals: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(vals, vec![1, 10, 20]);
    }
}
