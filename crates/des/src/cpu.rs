//! Per-node CPU accounting.
//!
//! The paper reports CPU utilization sampled by `sar` every 5 seconds
//! (Sec. V-D, Fig. 10). [`CpuMeter`] reproduces that measurement: models
//! charge CPU work as `(start, duration, parallelism)` intervals and the
//! meter spreads the busy core-seconds over fixed-width sampling bins. It
//! also exposes aggregate busy time so experiments can report mean
//! utilization deltas (the paper's "48.1 % lower CPU utilization" claim).

use crate::time::SimTime;

/// Bin-sampled CPU utilization meter for one node.
#[derive(Debug, Clone)]
pub struct CpuMeter {
    cores: u32,
    bin: SimTime,
    /// Busy core-seconds accumulated per bin.
    bins: Vec<f64>,
    total_busy_core_secs: f64,
    horizon: SimTime,
}

impl CpuMeter {
    /// A meter for a node with `cores` cores, sampling at `bin` granularity.
    pub fn new(cores: u32, bin: SimTime) -> Self {
        assert!(cores > 0, "node needs at least one core");
        assert!(bin > SimTime::ZERO, "sampling bin must be positive");
        CpuMeter {
            cores,
            bin,
            bins: Vec::new(),
            total_busy_core_secs: 0.0,
            horizon: SimTime::ZERO,
        }
    }

    /// Standard `sar`-style meter: 5-second bins, as in the paper.
    pub fn sar(cores: u32) -> Self {
        CpuMeter::new(cores, SimTime::from_secs(5))
    }

    /// Number of cores on the node.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Charge `parallelism` cores busy from `start` for `dur`.
    ///
    /// `parallelism` may be fractional (e.g. a thread that is 30 % busy) and
    /// is clamped to the core count — a node cannot be more than 100 % busy.
    pub fn charge(&mut self, start: SimTime, dur: SimTime, parallelism: f64) {
        if dur == SimTime::ZERO || parallelism <= 0.0 {
            return;
        }
        let par = parallelism.min(self.cores as f64);
        let end = start + dur;
        self.horizon = self.horizon.max(end);
        self.total_busy_core_secs += dur.as_secs_f64() * par;

        let bin_ns = self.bin.as_nanos();
        let first = (start.as_nanos() / bin_ns) as usize;
        let last = ((end.as_nanos().saturating_sub(1)) / bin_ns) as usize;
        if self.bins.len() <= last {
            self.bins.resize(last + 1, 0.0);
        }
        for b in first..=last {
            let bin_start = SimTime::from_nanos(b as u64 * bin_ns);
            let bin_end = bin_start + self.bin;
            let overlap = end.min(bin_end).saturating_sub(start.max(bin_start));
            self.bins[b] += overlap.as_secs_f64() * par;
        }
    }

    /// Charge a single sequential thread (parallelism 1) for `dur` at
    /// `start`; the common case for protocol-stack costs.
    pub fn charge_thread(&mut self, start: SimTime, dur: SimTime) {
        self.charge(start, dur, 1.0);
    }

    /// Utilization (0–100 %) per sampling bin, in time order.
    pub fn utilization_series(&self) -> Vec<(SimTime, f64)> {
        let cap = self.bin.as_secs_f64() * self.cores as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &busy)| {
                let t = SimTime::from_nanos(i as u64 * self.bin.as_nanos());
                (t, (busy / cap * 100.0).min(100.0))
            })
            .collect()
    }

    /// Mean utilization (0–100 %) over `[0, horizon]`; uses the observed
    /// horizon when `None`.
    pub fn mean_utilization(&self, horizon: Option<SimTime>) -> f64 {
        let h = horizon.unwrap_or(self.horizon);
        if h == SimTime::ZERO {
            return 0.0;
        }
        (self.total_busy_core_secs / (h.as_secs_f64() * self.cores as f64) * 100.0).min(100.0)
    }

    /// Total busy core-seconds charged.
    pub fn busy_core_secs(&self) -> f64 {
        self.total_busy_core_secs
    }

    /// Latest end of any charged interval.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Merge another meter's charges into this one (same shape required);
    /// used to average utilization across slave nodes as the paper does.
    pub fn merge(&mut self, other: &CpuMeter) {
        assert_eq!(self.cores, other.cores, "core counts differ");
        assert_eq!(self.bin, other.bin, "bin widths differ");
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0.0);
        }
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.total_busy_core_secs += other.total_busy_core_secs;
        self.horizon = self.horizon.max(other.horizon);
    }
}

/// Average the utilization series of many nodes into one series (per-bin
/// mean of per-node utilization), matching how the paper reports "average
/// CPU utilization across all 22 slave nodes".
pub fn average_utilization(meters: &[CpuMeter]) -> Vec<(SimTime, f64)> {
    if meters.is_empty() {
        return Vec::new();
    }
    // Materialize each meter's series once; rebuilding it per bin would be
    // O(bins^2 x nodes).
    let series: Vec<Vec<(SimTime, f64)>> =
        meters.iter().map(|m| m.utilization_series()).collect();
    let longest = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let bin = meters[0].bin;
    let mut out = Vec::with_capacity(longest);
    for i in 0..longest {
        let sum: f64 = series
            .iter()
            .map(|s| s.get(i).map(|&(_, u)| u).unwrap_or(0.0))
            .sum();
        out.push((
            SimTime::from_nanos(i as u64 * bin.as_nanos()),
            sum / meters.len() as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bin_full_busy() {
        let mut m = CpuMeter::new(1, SimTime::from_secs(5));
        m.charge(SimTime::ZERO, SimTime::from_secs(5), 1.0);
        let s = m.utilization_series();
        assert_eq!(s.len(), 1);
        assert!((s[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn charge_spans_bins_proportionally() {
        let mut m = CpuMeter::new(1, SimTime::from_secs(5));
        // Busy from 2.5s to 7.5s: half of bin 0 and half of bin 1.
        m.charge(
            SimTime::from_millis(2500),
            SimTime::from_secs(5),
            1.0,
        );
        let s = m.utilization_series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 50.0).abs() < 1e-6);
        assert!((s[1].1 - 50.0).abs() < 1e-6);
    }

    #[test]
    fn parallelism_clamped_to_cores() {
        let mut m = CpuMeter::new(2, SimTime::from_secs(1));
        m.charge(SimTime::ZERO, SimTime::from_secs(1), 100.0);
        let s = m.utilization_series();
        assert!((s[0].1 - 100.0).abs() < 1e-9);
        assert!((m.busy_core_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_utilization_over_horizon() {
        let mut m = CpuMeter::new(4, SimTime::from_secs(5));
        m.charge(SimTime::ZERO, SimTime::from_secs(10), 2.0);
        // 2 of 4 cores busy for the whole 10s horizon -> 50%.
        assert!((m.mean_utilization(None) - 50.0).abs() < 1e-9);
        // Against a longer horizon it halves.
        assert!((m.mean_utilization(Some(SimTime::from_secs(20))) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn zero_charges_ignored() {
        let mut m = CpuMeter::sar(24);
        m.charge(SimTime::from_secs(1), SimTime::ZERO, 1.0);
        m.charge(SimTime::from_secs(1), SimTime::from_secs(1), 0.0);
        assert_eq!(m.busy_core_secs(), 0.0);
        assert!(m.utilization_series().is_empty());
    }

    #[test]
    fn merge_adds_charges() {
        let mut a = CpuMeter::new(1, SimTime::from_secs(5));
        let mut b = CpuMeter::new(1, SimTime::from_secs(5));
        a.charge(SimTime::ZERO, SimTime::from_secs(5), 0.25);
        b.charge(SimTime::ZERO, SimTime::from_secs(5), 0.25);
        a.merge(&b);
        assert!((a.utilization_series()[0].1 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn average_across_nodes() {
        let mut a = CpuMeter::new(1, SimTime::from_secs(5));
        let mut b = CpuMeter::new(1, SimTime::from_secs(5));
        a.charge(SimTime::ZERO, SimTime::from_secs(5), 1.0); // 100%
        b.charge(SimTime::ZERO, SimTime::from_secs(5), 0.5); // 50%
        let avg = average_utilization(&[a, b]);
        assert_eq!(avg.len(), 1);
        assert!((avg[0].1 - 75.0).abs() < 1e-9);
        assert!(average_utilization(&[]).is_empty());
    }
}
