//! Simulated time.
//!
//! [`SimTime`] is a nanosecond counter. The same type is used for instants
//! and durations — a deliberate simplification that keeps the arithmetic in
//! the resource models terse. All constructors saturate rather than wrap so
//! that `SimTime::MAX` can be used as an "infinitely far away" sentinel.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a span of it), in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel representing "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction; `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scale a duration by a dimensionless factor (clamped at zero).
    #[inline]
    pub fn scaled(self, factor: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Duration taken to move `bytes` at `bytes_per_sec`.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> SimTime {
        if bytes_per_sec <= 0.0 {
            return SimTime::MAX;
        }
        SimTime::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics in debug builds on underflow; use [`SimTime::saturating_sub`]
    /// when the ordering is not statically known.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e300), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_millis(250);
        assert_eq!((a + b).as_millis_f64(), 1250.0);
        assert_eq!((a - b).as_millis_f64(), 750.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!((b * 4).as_secs_f64(), 1.0);
        assert_eq!((a / 4).as_millis_f64(), 250.0);
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn for_bytes_transfer_time() {
        // 1 MiB at 1 MiB/s takes one second.
        let t = SimTime::for_bytes(1 << 20, (1 << 20) as f64);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(SimTime::for_bytes(1, 0.0), SimTime::MAX);
    }

    #[test]
    fn min_max_and_scale() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.scaled(2.0), b);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_secs).sum();
        assert_eq!(total, SimTime::from_secs(10));
    }
}
