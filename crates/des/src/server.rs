//! Analytic queueing resources.
//!
//! The simulation models serially-shared hardware (a disk arm, the wire of a
//! NIC, a pool of CPU cores) as *servers*: a request submitted at time `t`
//! with service demand `d` begins service when the server frees up and
//! completes `d` later. As long as callers submit requests in non-decreasing
//! arrival-time order — which the event-driven layers above guarantee — this
//! reproduces FIFO queueing exactly, with far fewer events than simulating
//! every queue slot.

use crate::time::SimTime;
use std::collections::BinaryHeap;
use std::cmp::Reverse;

/// Outcome of submitting a request to a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually began (>= arrival).
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
}

impl Grant {
    /// Time the request spent waiting before service.
    pub fn queue_delay(&self, arrival: SimTime) -> SimTime {
        self.start.saturating_sub(arrival)
    }
}

/// A single-channel FIFO server.
#[derive(Debug, Clone)]
pub struct FifoServer {
    next_free: SimTime,
    busy: SimTime,
    served: u64,
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoServer {
    /// An idle server, free from time zero.
    pub fn new() -> Self {
        FifoServer {
            next_free: SimTime::ZERO,
            busy: SimTime::ZERO,
            served: 0,
        }
    }

    /// Submit a request arriving at `arrival` needing `service` time.
    pub fn serve(&mut self, arrival: SimTime, service: SimTime) -> Grant {
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.served += 1;
        Grant { start, end }
    }

    /// Earliest time a new arrival would begin service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total service time dispensed.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }
}

/// A `k`-channel FIFO server (e.g. a pool of identical disks or cores):
/// each request occupies the earliest-free channel.
#[derive(Debug, Clone)]
pub struct MultiServer {
    /// Min-heap of per-channel next-free times.
    channels: BinaryHeap<Reverse<SimTime>>,
    k: usize,
    busy: SimTime,
    served: u64,
}

impl MultiServer {
    /// A pool of `k >= 1` idle channels.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "MultiServer needs at least one channel");
        let mut channels = BinaryHeap::with_capacity(k);
        for _ in 0..k {
            channels.push(Reverse(SimTime::ZERO));
        }
        MultiServer {
            channels,
            k,
            busy: SimTime::ZERO,
            served: 0,
        }
    }

    /// Submit a request arriving at `arrival` needing `service` time; it is
    /// placed on the channel that frees up first.
    pub fn serve(&mut self, arrival: SimTime, service: SimTime) -> Grant {
        let Reverse(free) = self.channels.pop().expect("channels non-empty");
        let start = arrival.max(free);
        let end = start + service;
        self.channels.push(Reverse(end));
        self.busy += service;
        self.served += 1;
        Grant { start, end }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.k
    }

    /// Total service time dispensed across all channels.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean per-channel utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / (horizon.as_secs_f64() * self.k as f64)).min(1.0)
    }

    /// Earliest time any channel is free.
    pub fn next_free(&self) -> SimTime {
        self.channels.peek().map(|Reverse(t)| *t).unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn fifo_serializes_overlapping_requests() {
        let mut srv = FifoServer::new();
        let a = srv.serve(s(0), s(10));
        assert_eq!((a.start, a.end), (s(0), s(10)));
        let b = srv.serve(s(2), s(5));
        assert_eq!((b.start, b.end), (s(10), s(15)));
        assert_eq!(b.queue_delay(s(2)), s(8));
        assert_eq!(srv.busy_time(), s(15));
        assert_eq!(srv.served(), 2);
    }

    #[test]
    fn fifo_idle_gap_not_counted_busy() {
        let mut srv = FifoServer::new();
        srv.serve(s(0), s(1));
        srv.serve(s(100), s(1));
        assert_eq!(srv.busy_time(), s(2));
        assert!((srv.utilization(s(200)) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn multiserver_runs_k_in_parallel() {
        let mut srv = MultiServer::new(2);
        let a = srv.serve(s(0), s(10));
        let b = srv.serve(s(0), s(10));
        let c = srv.serve(s(0), s(10));
        assert_eq!(a.end, s(10));
        assert_eq!(b.end, s(10));
        // Third request waits for a channel.
        assert_eq!((c.start, c.end), (s(10), s(20)));
        assert_eq!(srv.channels(), 2);
    }

    #[test]
    fn multiserver_picks_earliest_free_channel() {
        let mut srv = MultiServer::new(2);
        srv.serve(s(0), s(10)); // ch A busy till 10
        srv.serve(s(0), s(2)); // ch B busy till 2
        let g = srv.serve(s(3), s(1));
        assert_eq!((g.start, g.end), (s(3), s(4))); // lands on B immediately
    }

    #[test]
    fn utilization_bounds() {
        let mut srv = MultiServer::new(4);
        for _ in 0..4 {
            srv.serve(s(0), s(100));
        }
        assert!((srv.utilization(s(100)) - 1.0).abs() < 1e-9);
        assert_eq!(srv.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_channel_pool_rejected() {
        let _ = MultiServer::new(0);
    }
}
