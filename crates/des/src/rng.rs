//! Seeded randomness for the simulator.
//!
//! All stochastic behaviour in the reproduction flows through [`DetRng`] so
//! that a single `u64` seed makes every experiment replayable. The helpers
//! cover the distributions the models need: uniform jitter, exponential
//! service-time noise, and a bounded Zipf sampler for skewed workloads.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source, cheap to fork into decorrelated
/// sub-streams.
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Create from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream; used to give each node/model its
    /// own stream so call-order changes in one model cannot perturb another.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(s)
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// A duration jittered multiplicatively in `[1-frac, 1+frac]` around
    /// `base`; used to de-synchronize otherwise identical tasks, as real
    /// clusters do.
    pub fn jitter(&mut self, base: SimTime, frac: f64) -> SimTime {
        if frac <= 0.0 {
            return base;
        }
        let f = self.uniform_f64(1.0 - frac, 1.0 + frac);
        base.scaled(f.max(0.0))
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_time(&mut self, mean: SimTime) -> SimTime {
        SimTime::from_secs_f64(self.exp_f64(mean.as_secs_f64()))
    }

    /// Zipf(`n`, `theta`) rank in `[0, n)` via inverse-CDF over a
    /// precomputed table-free approximation (rejection-inversion would be
    /// overkill at our scales; `n` here is at most a few million).
    ///
    /// `theta = 0` degenerates to uniform.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        if n <= 1 {
            return 0;
        }
        if theta <= 0.0 {
            return self.uniform_u64(0, n);
        }
        // Approximate inverse CDF: for Zipf with exponent theta the CDF is
        // ~ (k/n)^(1-theta) for theta<1; invert a uniform draw. For theta>=1
        // clamp the exponent to keep the sampler defined.
        let ex = (1.0 - theta).max(0.05);
        let u = self.uniform_f64(0.0, 1.0);
        let k = (u.powf(1.0 / ex) * n as f64) as u64;
        k.min(n - 1)
    }

    /// Raw uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen_bool(p)
    }

    /// Fill a byte buffer (used by the real-dataplane tests to build
    /// reproducible payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_diverges() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut root1 = DetRng::new(7);
        let mut root2 = DetRng::new(7);
        let mut c1 = root1.fork(3);
        let mut c2 = root2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = DetRng::new(7).fork(4);
        assert_ne!(DetRng::new(7).fork(3).next_u64(), other.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let v = r.uniform_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
            let k = r.uniform_u64(10, 20);
            assert!((10..20).contains(&k));
        }
        assert_eq!(r.uniform_u64(5, 5), 5);
        assert_eq!(r.uniform_f64(5.0, 4.0), 5.0);
    }

    #[test]
    fn exp_has_roughly_right_mean() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exp_f64(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean was {mean}");
        assert_eq!(r.exp_f64(0.0), 0.0);
    }

    #[test]
    fn jitter_brackets_base() {
        let mut r = DetRng::new(13);
        let base = SimTime::from_secs(10);
        for _ in 0..200 {
            let j = r.jitter(base, 0.1);
            assert!(j >= SimTime::from_secs_f64(9.0));
            assert!(j <= SimTime::from_secs_f64(11.0));
        }
        assert_eq!(r.jitter(base, 0.0), base);
    }

    #[test]
    fn zipf_is_bounded_and_skewed() {
        let mut r = DetRng::new(17);
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let k = r.zipf(n, 0.9);
            assert!(k < n);
            if k < n / 10 {
                low += 1;
            }
        }
        // With strong skew, far more than 10% of draws land in the lowest
        // decile of ranks.
        assert!(low > 3_000, "low-decile draws: {low}");
        assert_eq!(r.zipf(1, 0.9), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
