//! # jbs-des — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the JBS reproduction: a small,
//! deterministic discrete-event simulation (DES) toolkit used by the disk,
//! network, JVM and MapReduce models. It provides:
//!
//! * [`SimTime`] — a nanosecond-resolution simulated clock value usable both
//!   as an instant and as a duration.
//! * [`EventQueue`] — a priority queue of `(time, payload)` events with a
//!   strict, reproducible tie-break (insertion sequence).
//! * [`DetRng`] — a seeded random-number source with the sampling helpers the
//!   models need (uniform, exponential, Zipf-like).
//! * [`FifoServer`] / [`MultiServer`] — analytic queueing resources used to
//!   model serially-shared hardware (a disk arm, a NIC link, a CPU core
//!   pool). Requests submitted in non-decreasing time order are served in
//!   FIFO order and the server tracks its own busy time.
//! * [`CpuMeter`] — per-node CPU accounting binned into `sar`-style sampling
//!   intervals, used to regenerate the paper's Figure 10 utilization
//!   timelines.
//! * [`stats`] — small online-statistics helpers (Welford mean/variance,
//!   percentiles, time series).
//!
//! Determinism contract: given the same seed and the same sequence of calls,
//! every type in this crate produces bit-identical results. Nothing here
//! reads wall-clock time or uses unseeded randomness.

pub mod cpu;
pub mod lru;
pub mod queue;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use cpu::CpuMeter;
pub use lru::LruCache;
pub use queue::EventQueue;
pub use rng::DetRng;
pub use server::{FifoServer, MultiServer};
pub use time::SimTime;
