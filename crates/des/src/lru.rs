//! A generic least-recently-used cache.
//!
//! Used in three places in the reproduction, mirroring the paper:
//! the disk page cache (`jbs-disk`), the MOFSupplier's IndexCache
//! (`jbs-core`), and the JBS connection manager, which tears down
//! connections "based on the LRU (Least Recently Used) order" once the
//! 512-connection threshold is hit (Sec. IV-A).
//!
//! Implementation: a slab of doubly-linked `Option<Node>` entries plus a
//! `HashMap` from key to slab index. All operations are O(1) expected.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An LRU cache holding at most `capacity` entries.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache with room for `capacity >= 1` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LruCache capacity must be >= 1");
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit count since creation (lookups that found the key).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn node(&self, idx: usize) -> &Node<K, V> {
        self.slab[idx].as_ref().expect("live slab slot")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<K, V> {
        self.slab[idx].as_mut().expect("live slab slot")
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        if prev != NIL {
            self.node_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.node_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&self.node(idx).value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up `key` mutably, marking it most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&mut self.node_mut(idx).value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Check presence and touch recency, without the borrow of `get`.
    pub fn touch(&mut self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Check presence *without* touching recency or hit counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.node(idx).value)
    }

    /// Insert `key -> value`, evicting the least-recently-used entry if the
    /// cache is full. Returns the evicted `(key, value)` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.node_mut(idx).value = value;
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            self.evict_lru()
        } else {
            None
        };
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Remove and return the least-recently-used entry.
    pub fn evict_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.detach(idx);
        let node = self.slab[idx].take().expect("live slab slot");
        self.map.remove(&node.key);
        self.free.push(idx);
        Some((node.key, node.value))
    }

    /// Remove a specific key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        let node = self.slab[idx].take().expect("live slab slot");
        self.free.push(idx);
        Some(node.value)
    }

    /// Keys from most to least recently used.
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            let n = self.node(cur);
            out.push(n.key.clone());
            cur = n.next;
        }
        out
    }

    /// Hit ratio over all lookups so far (0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("b", 2), None);
        assert_eq!(c.get(&"a"), Some(&1)); // a is now MRU
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(c.peek(&"a").is_some());
        assert!(c.peek(&"b").is_none());
        assert!(c.peek(&"c").is_some());
    }

    #[test]
    fn insert_existing_updates_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, "x");
        c.insert(2, "y");
        assert_eq!(c.insert(1, "z"), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&1), Some(&"z"));
    }

    #[test]
    fn mru_order_tracks_access() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        assert_eq!(c.keys_mru(), vec![3, 2, 1]);
        c.touch(&1);
        assert_eq!(c.keys_mru(), vec![1, 3, 2]);
        c.get_mut(&2);
        assert_eq!(c.keys_mru(), vec![2, 1, 3]);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        assert_eq!(c.remove(&1), Some(10));
        assert!(c.is_empty());
        c.insert(2, 20);
        c.insert(3, 30);
        c.insert(4, 40); // forces eviction through the freed slot path
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys_mru(), vec![4, 3]);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = LruCache::new(2);
        c.insert(1, ());
        c.get(&1);
        c.get(&2);
        c.get(&2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!c.touch(&9));
    }

    #[test]
    fn capacity_one_always_evicts_previous() {
        let mut c = LruCache::new(1);
        c.insert(1, 'a');
        assert_eq!(c.insert(2, 'b'), Some((1, 'a')));
        assert_eq!(c.keys_mru(), vec![2]);
    }

    #[test]
    fn evict_on_empty_is_none() {
        let mut c: LruCache<u8, u8> = LruCache::new(4);
        assert_eq!(c.evict_lru(), None);
        assert_eq!(c.remove(&0), None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u8, u8>::new(0);
    }

    #[test]
    fn stress_against_naive_model() {
        // Cross-check against a simple Vec-based model.
        use crate::rng::DetRng;
        let mut r = DetRng::new(99);
        let mut lru = LruCache::new(8);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        for _ in 0..5_000 {
            let k = r.uniform_u64(0, 24);
            if r.chance(0.5) {
                lru.insert(k, k);
                model.retain(|&x| x != k);
                model.insert(0, k);
                if model.len() > 8 {
                    model.pop();
                }
            } else {
                let hit = lru.touch(&k);
                let model_hit = model.contains(&k);
                assert_eq!(hit, model_hit);
                if model_hit {
                    model.retain(|&x| x != k);
                    model.insert(0, k);
                }
            }
            assert_eq!(lru.keys_mru(), model);
        }
    }
}
