//! Property: `--format json` round-trips. For any report — findings
//! with adversarial strings (quotes, backslashes, control characters,
//! multi-byte unicode), baselined debt, allowed exemptions, stale
//! allowlist entries — `parse_report(to_json(r))` reconstructs the
//! same report, and serialization is a fixpoint. This is the contract
//! CI's baseline diffing stands on.

use proptest::prelude::*;
use std::path::PathBuf;
use xtask::json;
use xtask::lints::Finding;
use xtask::policy::AllowEntry;
use xtask::Report;

/// Every lint family `parse_report` accepts.
const LINTS: &[&str] = &[
    "panic",
    "lock-order",
    "blocking",
    "guard-balance",
    "determinism",
    "hygiene",
    "print",
];

/// Characters chosen to stress the escaper: JSON metacharacters,
/// C0 controls (escaped as `\u00XX`), DEL, and multi-byte code points.
const ALPHABET: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}', '\u{7f}', 'é', '→',
    '𝕫', '|', '{', '}', '[', ']', ':', ',',
];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..ALPHABET.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

/// File paths come from the scanner workspace-relative with `/`
/// separators; the serializer normalizes any `\` to `/`, so a path
/// containing a literal backslash cannot round-trip (by design).
fn arb_path() -> impl Strategy<Value = String> {
    arb_string().prop_map(|s| s.replace('\\', "/"))
}

fn arb_finding() -> impl Strategy<Value = Finding> {
    (
        0usize..LINTS.len(),
        arb_path(),
        0usize..100_000,
        arb_string(),
        arb_string(),
        prop::collection::vec(arb_string(), 0..4),
    )
        .prop_map(|(l, file, line, message, code, chain)| Finding {
            lint: LINTS[l],
            file: PathBuf::from(file),
            line,
            message,
            code,
            chain,
        })
}

fn arb_allow() -> impl Strategy<Value = AllowEntry> {
    (
        0usize..LINTS.len(),
        arb_string(),
        arb_string(),
        arb_string(),
        0usize..1_000,
    )
        .prop_map(|(l, file, contains, reason, defined_at)| AllowEntry {
            lint: LINTS[l].to_string(),
            file,
            contains,
            reason,
            defined_at,
        })
}

fn arb_report() -> impl Strategy<Value = Report> {
    (
        prop::collection::vec(arb_finding(), 0..6),
        prop::collection::vec(arb_finding(), 0..4),
        prop::collection::vec(arb_allow(), 0..3),
        prop::collection::vec(arb_finding(), 0..4),
    )
        .prop_map(|(findings, baselined, stale_allows, allowed)| Report {
            findings,
            baselined,
            stale_allows,
            allowed,
        })
}

proptest! {
    #[test]
    fn report_json_round_trips(report in arb_report()) {
        let text = json::to_json(&report);
        let back = json::parse_report(&text)
            .unwrap_or_else(|e| panic!("own output parses: {e}\n{text}"));
        prop_assert_eq!(&back.findings, &report.findings);
        prop_assert_eq!(&back.baselined, &report.baselined);
        prop_assert_eq!(&back.allowed, &report.allowed);
        prop_assert_eq!(back.stale_allows.len(), report.stale_allows.len());
        for (a, b) in back.stale_allows.iter().zip(&report.stale_allows) {
            prop_assert_eq!(&a.lint, &b.lint);
            prop_assert_eq!(&a.contains, &b.contains);
            prop_assert_eq!(a.defined_at, b.defined_at);
        }
        // Serialization is a fixpoint: re-serializing the parsed
        // report reproduces the exact bytes (stable finding ids and
        // artifact diffs depend on this).
        prop_assert_eq!(json::to_json(&back), text);
    }

    #[test]
    fn finding_ids_are_stable_under_line_renumbering(
        mut report in arb_report(),
        shift in 1usize..500,
    ) {
        let before = json::finding_ids(&report.findings);
        for f in &mut report.findings {
            f.line += shift;
        }
        let after = json::finding_ids(&report.findings);
        prop_assert_eq!(before, after);
    }
}
