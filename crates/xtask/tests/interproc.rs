//! The rediscovery gate (live workspace): facts that earlier PRs
//! hand-encoded as comments next to `[policy] lock_order` must now
//! fall out of the interprocedural analysis with zero policy hints —
//! `callgraph::analyze` never reads `lock_order` or `[[allow]]`, so
//! everything asserted here is derived purely from the call graph.
//!
//! The two facts under test:
//!
//! 1. `SlotMap::with_conn` holds the per-connection `conn` lock while
//!    invoking caller-supplied callbacks, and the client's event
//!    callback acquires `stats` — so `conn -> stats` is a real edge,
//!    carried through a callback parameter across crate-internal
//!    function boundaries.
//! 2. The supplier staging path's `read_ahead` acquires `store`; every
//!    caller (the stage-job worker, the serve path) therefore holds
//!    `store` transitively even though no `lock(&…store)` appears in
//!    its own body.

use std::path::Path;
use xtask::policy::Policy;
use xtask::{callgraph, scan_analysis_files, Config};

fn live_analysis() -> callgraph::Analysis {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .expect("workspace root");
    // The policy supplies only the scan scope (member opt-outs and the
    // sync-primitive layer); lock ranking and allows never reach the
    // call-graph pass.
    let policy = Policy::load(&root.join("crates/xtask/allow.toml")).expect("policy loads");
    let config = Config::for_workspace(&root, &policy).expect("workspace members discovered");
    let files = scan_analysis_files(&config).expect("analysis scope scans");
    callgraph::analyze(&files, &policy.primitive_files)
}

#[test]
fn rediscovers_conn_to_stats_callback_edge() {
    let a = live_analysis();
    let edge = a
        .edges
        .iter()
        .find(|e| e.held == "conn" && e.acquired == "stats")
        .unwrap_or_else(|| {
            panic!(
                "conn -> stats must be discovered through the with_conn callback; edges found: {:?}",
                a.edges
                    .iter()
                    .map(|e| format!("{} -> {}", e.held, e.acquired))
                    .collect::<Vec<_>>()
            )
        });
    assert!(
        edge.chain.iter().any(|frame| frame.contains("with_conn")),
        "the witness chain walks through the callback-invoking wrapper: {:?}",
        edge.chain
    );
}

#[test]
fn rediscovers_read_ahead_store_acquisition_in_callers() {
    let a = live_analysis();
    // `read_ahead` itself acquires `store` directly…
    let ra = a
        .transitive_acquires
        .iter()
        .find(|(f, _)| f.ends_with("read_ahead"))
        .unwrap_or_else(|| panic!("read_ahead analyzed: {:?}", a.transitive_acquires.keys()));
    assert!(
        ra.1.contains_key("store"),
        "read_ahead acquires store: {:?}",
        ra.1.keys()
    );
    // …and both staging-path callers inherit the acquisition. The
    // stage-job worker's own body never mentions the store lock, so
    // its witness chain MUST pass through `read_ahead`; the serve path
    // also locks the store directly, so only membership is asserted.
    for caller in ["run_stage_job", "serve"] {
        let (name, acquires) = a
            .transitive_acquires
            .iter()
            .find(|(f, _)| f.as_str() == caller || f.ends_with(&format!("::{caller}")))
            .unwrap_or_else(|| panic!("{caller} analyzed"));
        let chain = acquires
            .get("store")
            .unwrap_or_else(|| panic!("{name} transitively acquires store: {:?}", acquires.keys()));
        if caller == "run_stage_job" {
            assert!(
                chain.iter().any(|frame| frame.contains("read_ahead")),
                "{name}'s witness chain passes through read_ahead: {chain:?}"
            );
        }
    }
}

/// The full flagship edge, end to end: the callback-carried
/// `conn -> stats` acquisition is visible to the lock-order lint with
/// an EMPTY documented order — it surfaces as an undocumented-lock
/// finding, proving the lint consumes discovered edges rather than
/// policy annotations.
#[test]
fn empty_lock_order_surfaces_discovered_edges_as_undocumented() {
    let a = live_analysis();
    let policy = Policy::parse("[policy]\nlock_order = []\n").expect("empty policy");
    let findings = xtask::lints::lockorder::check(&a.edges, &policy);
    // `store` is deliberately absent: the live workspace never nests
    // it (the staging path drops it before `staged`/`seg_lens`), so no
    // edge can exist — the edge set above is the complete nesting map.
    for lock in ["conn", "stats", "inner", "objects"] {
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains(&format!("`{lock}`"))),
            "`{lock}` participates in discovered nesting, so an empty order must flag it"
        );
    }
}
