//! Fixture: the fixed counterpart of `bad/.../clock.rs` — simulated
//! time and seeded randomness only.

/// Simulated clock: time advances only when the simulation says so.
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock { now_ns: 0 }
    }

    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns = self.now_ns.saturating_add(delta_ns);
    }

    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }
}

/// Seeded coin flip (stand-in for the workspace's DetRng).
pub fn coin(seed: &mut u64) -> bool {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (*seed >> 63) == 1
}
