//! Fixture: the dataplane's sync-primitive layer. Wrapping acquisition
//! is its whole job, so the fixture policy lists this file under
//! `primitive_files` — exempt from guard-smuggling and blocking checks.

use std::sync::{Mutex, MutexGuard};

pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
