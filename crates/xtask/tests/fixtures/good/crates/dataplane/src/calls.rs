//! Fixture: the fixed counterpart of `bad/.../calls.rs` — the
//! cross-function acquisition follows the documented order, and the
//! guard is released before the helper that does file I/O.

use crate::sync::lock;
use std::sync::Mutex;

pub struct C {
    delta: Mutex<u32>,
    epsilon: Mutex<u32>,
}

impl C {
    // delta -> epsilon is the documented order; the interprocedural
    // pass still sees the edge, and it is forward.
    pub fn drain(&self) -> u32 {
        let d = lock(&self.delta);
        self.refill_hint() + *d
    }

    fn refill_hint(&self) -> u32 {
        let e = lock(&self.epsilon);
        *e
    }

    // Copy the value out, drop the guard, then write.
    pub fn persist(&self) {
        let v = {
            let d = lock(&self.delta);
            *d
        };
        self.flush_to_disk(v);
    }

    fn flush_to_disk(&self, v: u32) {
        std::fs::write("state.bin", v.to_be_bytes()).ok();
    }
}
