//! The fixed counterpart of `bad/.../prints.rs`: production code stays
//! silent (counters, not stdout), prints survive only under `#[cfg(test)]`.

pub fn quiet(len: u64) -> u64 {
    // Report through state the caller can query, not the terminal.
    let my_print_count = len;
    my_print_count
}

#[cfg(test)]
mod tests {
    use super::quiet;

    #[test]
    fn prints_are_fine_in_tests() {
        println!("harness output: {}", quiet(1));
    }
}
