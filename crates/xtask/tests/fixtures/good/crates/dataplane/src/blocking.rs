//! Fixture: the fixed counterpart of `bad/.../blocking.rs` — the guard
//! is dropped (or the data copied out) before anything blocks.

use crate::sync::lock;
use std::io::Write;
use std::sync::Mutex;

pub struct B {
    alpha: Mutex<Vec<u8>>,
}

impl B {
    pub fn sleep_after_drop(&self) {
        let mut g = lock(&self.alpha);
        g.clear();
        drop(g);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    pub fn write_outside_lock(&self, w: &mut std::net::TcpStream) {
        let snapshot = {
            let g = lock(&self.alpha);
            g.clone()
        };
        w.write_all(&snapshot).ok();
    }
}
