//! Fixed durability counterpart: write → sync → publish, in order.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The crash-atomic publish: bytes are on the platter before the
/// rename makes them visible.
pub fn publish(dir: &Path) -> io::Result<()> {
    let tmp = dir.join("obj.tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(b"payload")?;
    f.sync_all()?;
    fs::rename(&tmp, dir.join("obj"))
}

/// An append with its barrier in the same function.
pub fn append_record(f: &mut fs::File) -> io::Result<()> {
    f.write_all(b"record")?;
    f.sync_data()
}
