//! Fixture: the fixed counterpart of `bad/.../panics.rs` — the same
//! shapes, panic-free. Must produce zero findings.

pub fn good_unwrap(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn good_expect(v: Option<u32>) -> Result<u32, &'static str> {
    v.ok_or("absent")
}

pub fn good_index(s: &[u8]) -> u8 {
    s.first().copied().unwrap_or(0)
}

pub fn good_slice(s: &[u8]) -> &[u8] {
    s.get(1..3).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(Some(1u32).unwrap(), 1);
    }
}
