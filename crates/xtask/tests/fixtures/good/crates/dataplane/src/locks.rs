//! Fixture: the fixed counterpart of `bad/.../locks.rs` — every
//! acquisition follows the documented order alpha → beta.

use crate::sync::lock;
use std::sync::Mutex;

pub struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    pub fn forward(&self) -> u32 {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        *a + *b
    }

    // The former reverse-order path, fixed: the first guard is released
    // (inner block) before the second lock is taken.
    pub fn backward(&self) -> u32 {
        let b = {
            let g = lock(&self.beta);
            *g
        };
        let a = lock(&self.alpha);
        *a + b
    }
}
