//! Fixture: the fixed counterpart of `bad/.../guards.rs` — named
//! bindings, structured drop, and guard-in/guard-out threading.

use crate::sync::lock;
use std::sync::{Mutex, MutexGuard};

pub struct G {
    alpha: Mutex<u32>,
}

impl G {
    pub fn balanced(&self) -> u32 {
        let g = lock(&self.alpha);
        *g
    }

    // Threading a caller-supplied guard through is fine: the caller
    // already announced the acquisition in its own body.
    pub fn threaded<'a>(&'a self, g: MutexGuard<'a, u32>) -> MutexGuard<'a, u32> {
        g
    }
}
