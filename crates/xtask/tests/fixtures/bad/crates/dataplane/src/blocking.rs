//! Fixture: blocking primitives while a guard is live — each one
//! convoys every thread contending on `alpha`. Scanned, never compiled.

use crate::sync::lock;
use std::io::Write;
use std::sync::Mutex;

pub struct B {
    alpha: Mutex<Vec<u8>>,
}

impl B {
    // The sleep happens inside the critical section.
    pub fn sleep_under_lock(&self) {
        let mut g = lock(&self.alpha);
        std::thread::sleep(std::time::Duration::from_millis(1));
        g.clear();
    }

    // Socket write with the guard still live.
    pub fn write_under_lock(&self, w: &mut std::net::TcpStream) {
        let g = lock(&self.alpha);
        w.write_all(&g).ok();
    }
}
