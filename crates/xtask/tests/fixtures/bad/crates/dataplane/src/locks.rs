//! Fixture: lock-order violations the lint must catch — an ABBA cycle
//! and an undocumented lock. Scanned, never compiled.

use crate::sync::lock;
use std::sync::Mutex;

pub struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
}

impl S {
    pub fn forward(&self) -> u32 {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        *a + *b
    }

    // Reverse order: with `forward` this is the ABBA deadlock.
    pub fn backward(&self) -> u32 {
        let b = lock(&self.beta);
        let a = lock(&self.alpha);
        *a + *b
    }

    // `gamma` participates in nesting but is not documented in the
    // fixture policy's lock order.
    pub fn undocumented(&self) -> u32 {
        let a = lock(&self.alpha);
        *a + *lock(&self.gamma)
    }
}
