//! Fixture: `unsafe` outside verbs.rs/shims — the hygiene fence must
//! flag it. Scanned, never compiled.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
