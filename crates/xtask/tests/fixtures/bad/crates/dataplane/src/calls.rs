//! Fixture: cross-function violations only the interprocedural pass
//! can see — every function here is clean in isolation.

use crate::sync::lock;
use std::sync::Mutex;

pub struct C {
    delta: Mutex<u32>,
    epsilon: Mutex<u32>,
}

impl C {
    // Holds `epsilon` and calls into `refill`, whose acquisition of
    // `delta` is contrary to the documented order delta -> epsilon.
    pub fn drain(&self) -> u32 {
        let e = lock(&self.epsilon);
        self.refill() + *e
    }

    fn refill(&self) -> u32 {
        let d = lock(&self.delta);
        *d
    }

    // Holds `delta` across a helper that bottoms out in file I/O.
    pub fn persist(&self) {
        let d = lock(&self.delta);
        self.flush_to_disk(*d);
    }

    fn flush_to_disk(&self, v: u32) {
        std::fs::write("state.bin", v.to_be_bytes()).ok();
    }
}
