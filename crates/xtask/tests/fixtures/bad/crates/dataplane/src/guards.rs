//! Fixture: guards escaping structured drop — an empty critical
//! section, a leaked guard, and a smuggled guard. Scanned, never
//! compiled.

use crate::sync::lock;
use std::sync::{Mutex, MutexGuard};

pub struct G {
    alpha: Mutex<u32>,
}

impl G {
    // `let _ =` drops the guard at the end of the statement: the
    // critical section is empty.
    pub fn empty_section(&self) {
        let _ = lock(&self.alpha);
    }

    // A forgotten guard leaves `alpha` locked forever.
    pub fn pin(&self) {
        let g = lock(&self.alpha);
        std::mem::forget(g);
    }

    // Returns a guard it acquired itself: the caller holds a lock its
    // own body never announces.
    pub fn smuggle(&self) -> MutexGuard<'_, u32> {
        lock(&self.alpha)
    }
}
