//! Seeded print-lint violations: each denied macro appears exactly once
//! outside test code. Kept free of panic/lock patterns so this file
//! never muddies the other families' fixture counts.

pub fn chatty(len: u64) {
    println!("sending {len} bytes");
    eprintln!("warning: slow peer");
    print!("progress.");
    eprint!("!");
    let doubled = dbg!(len * 2);
    let _ = doubled;
}

pub fn fine(len: u64) -> u64 {
    // A string literal mentioning println!("x") is not an invocation.
    let label = "println!(this is prose)";
    let _ = label;
    len
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("test output is exempt");
    }
}
