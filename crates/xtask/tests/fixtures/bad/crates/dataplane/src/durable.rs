//! Seeded durability violations: an unsynced publish, a bare
//! `fs::write`, and a durable-intent write with no sync witness.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Publishes the tmp file without ever syncing it: a crash right after
/// the rename leaves a torn object under the published name.
pub fn publish_unsynced(dir: &Path) -> io::Result<()> {
    let tmp = dir.join("obj.tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(b"payload")?;
    fs::rename(&tmp, dir.join("obj"))
}

/// The one-shot helper gives no handle to sync at all.
pub fn snapshot(dir: &Path) -> io::Result<()> {
    fs::write(dir.join("snapshot"), b"state")
}

/// Appends with no barrier and no publish step anywhere in sight.
pub fn append_record(f: &mut fs::File) -> io::Result<()> {
    f.write_all(b"record")
}
