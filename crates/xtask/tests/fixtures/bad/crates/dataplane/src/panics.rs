//! Fixture: every panic-freedom violation the lint must catch. This
//! file is scanned by the analyzer's tests, never compiled.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn bad_unreachable(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn bad_index(s: &[u8]) -> u8 {
    s[0]
}

pub fn bad_slice(s: &[u8]) -> &[u8] {
    &s[1..3]
}

// A masked line must NOT count: "x.unwrap()" in a string or comment.
pub fn masked_mentions() -> &'static str {
    "x.unwrap() and s[0] in a string are fine"
}

#[cfg(test)]
mod tests {
    // Unwraps inside #[cfg(test)] are exempt.
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let s = [1u8, 2];
        assert_eq!(s[0], 1);
    }
}
