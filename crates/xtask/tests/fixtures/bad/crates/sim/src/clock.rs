//! Fixture: every determinism violation the lint must catch in a
//! simulated-time crate. Scanned, never compiled.

use std::time::{Duration, Instant};

pub fn wall_elapsed() -> Duration {
    Instant::now().elapsed()
}

pub fn wall_clock() -> Duration {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
}

pub fn nap() {
    std::thread::sleep(Duration::from_millis(1));
}

pub fn coin() -> bool {
    rand::random()
}

#[cfg(test)]
mod tests {
    // Wall clocks are tolerated in tests (e.g. wall-time budgets).
    #[test]
    fn timing_a_test_is_fine() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
