//! End-to-end analyzer tests: each lint family fires on the seeded
//! fixture violations under `tests/fixtures/bad/`, stays silent on the
//! fixed counterparts under `tests/fixtures/good/`, and — the
//! regression that matters — the live workspace analyzes clean under
//! its committed policy.

use std::path::{Path, PathBuf};
use xtask::policy::Policy;
use xtask::{analyze, Config, Report};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn fixture_config(root: &Path) -> Config {
    Config {
        root: root.to_path_buf(),
        panic_dirs: vec!["crates/dataplane/src".into()],
        determinism_dirs: vec!["crates/sim/src".into()],
        analysis_dirs: vec!["crates/dataplane/src".into()],
        print_dirs: vec!["crates/dataplane/src".into()],
    }
}

fn fixture_policy(allows: &str) -> Policy {
    let text = format!(
        "[policy]\nlock_order = [\"alpha\", \"beta\", \"delta\", \"epsilon\"]\n\
         primitive_files = [\"crates/dataplane/src/sync.rs\"]\n\
         durability_files = [\"crates/dataplane/src/durable.rs\"]\n{allows}"
    );
    Policy::parse(&text).expect("fixture policy parses")
}

fn run(which: &str, policy: &Policy) -> Report {
    let root = fixture_root(which);
    analyze(&fixture_config(&root), policy).expect("analysis runs")
}

fn count(report: &Report, lint: &str, needle: &str) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.lint == lint && format!("{f}").contains(needle))
        .count()
}

#[test]
fn bad_fixture_trips_every_panic_pattern() {
    let r = run("bad", &fixture_policy(""));
    for needle in [".unwrap()", ".expect(", "panic!", "unreachable!"] {
        assert_eq!(
            count(&r, "panic", needle),
            1,
            "exactly one seeded `{needle}` violation"
        );
    }
    assert_eq!(
        count(&r, "panic", "indexing"),
        2,
        "one index + one slice violation"
    );
    // The in-test unwrap and the string-literal mention must NOT fire:
    // all panic findings live in panics.rs outside its test module.
    assert!(r
        .findings
        .iter()
        .filter(|f| f.lint == "panic")
        .all(|f| f.file.ends_with("panics.rs")));
}

#[test]
fn bad_fixture_trips_determinism() {
    let r = run("bad", &fixture_policy(""));
    for needle in [
        "Instant::now",
        "SystemTime",
        "thread::sleep",
        "rand::random",
    ] {
        assert_eq!(
            count(&r, "determinism", needle),
            1,
            "exactly one seeded `{needle}` violation"
        );
    }
    assert!(r
        .findings
        .iter()
        .filter(|f| f.lint == "determinism")
        .all(|f| f.file.ends_with("clock.rs")));
}

#[test]
fn bad_fixture_trips_every_print_macro_exactly_once() {
    let r = run("bad", &fixture_policy(""));
    for needle in [
        "`println!`",
        "`eprintln!`",
        "`print!`",
        "`eprint!`",
        "`dbg!`",
    ] {
        assert_eq!(
            count(&r, "print", needle),
            1,
            "exactly one seeded `{needle}` violation"
        );
    }
    // The in-test println and the string-literal mention must NOT fire,
    // and no print finding may leak out of the seeded file.
    assert!(r
        .findings
        .iter()
        .filter(|f| f.lint == "print")
        .all(|f| f.file.ends_with("prints.rs")));
    // The print fixture must not muddy the panic family's counts.
    assert!(r
        .findings
        .iter()
        .filter(|f| f.lint == "panic")
        .all(|f| !f.file.ends_with("prints.rs")));
}

#[test]
fn bad_fixture_trips_lockorder_cycle_order_and_undocumented() {
    let r = run("bad", &fixture_policy(""));
    assert_eq!(count(&r, "lock-order", "cycle"), 1, "ABBA cycle reported");
    assert!(
        count(&r, "lock-order", "contrary to the documented order") >= 1,
        "reverse acquisition reported"
    );
    assert_eq!(
        count(&r, "lock-order", "`gamma`"),
        1,
        "undocumented lock reported"
    );
}

#[test]
fn bad_fixture_trips_cross_function_lock_order() {
    let r = run("bad", &fixture_policy(""));
    let cross: Vec<_> = r
        .findings
        .iter()
        .filter(|f| {
            f.lint == "lock-order"
                && f.message.contains("`delta`")
                && f.message.contains("contrary to the documented order")
        })
        .collect();
    assert_eq!(
        cross.len(),
        1,
        "epsilon -> delta inversion crosses drain -> refill: {:#?}",
        r.findings
            .iter()
            .map(|f| format!("{f}"))
            .collect::<Vec<_>>()
    );
    assert!(
        cross[0].chain.iter().any(|fr| fr.contains("C::drain")),
        "the finding names the caller that held `epsilon`: {:?}",
        cross[0].chain
    );
}

#[test]
fn bad_fixture_trips_blocking_under_lock() {
    let r = run("bad", &fixture_policy(""));
    assert_eq!(count(&r, "blocking", "thread sleep"), 1);
    assert_eq!(count(&r, "blocking", "stream write"), 1);
    let transitive: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.lint == "blocking" && f.message.contains("file write"))
        .collect();
    assert_eq!(
        transitive.len(),
        1,
        "fs::write reached through persist -> flush_to_disk: {:#?}",
        r.findings
            .iter()
            .map(|f| format!("{f}"))
            .collect::<Vec<_>>()
    );
    assert!(
        transitive[0]
            .chain
            .iter()
            .any(|fr| fr.contains("C::persist")),
        "the finding names the lock holder up the call graph: {:?}",
        transitive[0].chain
    );
}

#[test]
fn bad_fixture_trips_durability_rules() {
    let r = run("bad", &fixture_policy(""));
    assert_eq!(
        count(&r, "durability", "publishing `rename`"),
        1,
        "unsynced publish reported once"
    );
    assert_eq!(
        count(&r, "durability", "bare `fs::write`"),
        1,
        "one-shot write reported once"
    );
    let unsynced: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.lint == "durability" && f.message.contains("no sync anywhere"))
        .collect();
    assert_eq!(unsynced.len(), 1, "sync-free append reported once");
    assert!(
        unsynced[0].chain.iter().any(|fr| fr.contains("append_record")),
        "the witness chain names the offending function: {:?}",
        unsynced[0].chain
    );
    assert!(r
        .findings
        .iter()
        .filter(|f| f.lint == "durability")
        .all(|f| f.file.ends_with("durable.rs")));
}

#[test]
fn durability_waiver_is_audited_like_any_other() {
    let allows = r#"
[[allow]]
lint = "durability"
file = "crates/dataplane/src/durable.rs"
contains = "f.write_all(b"
reason = "fixture: the deferred barrier lives in the caller"
"#;
    let r = run("bad", &fixture_policy(allows));
    assert_eq!(count(&r, "durability", "no sync anywhere"), 0, "waived");
    assert_eq!(
        count(&r, "durability", "publishing `rename`"),
        1,
        "other durability findings still fire"
    );
    assert!(r.stale_allows.is_empty());
}

#[test]
fn bad_fixture_trips_guard_balance() {
    let r = run("bad", &fixture_policy(""));
    assert_eq!(count(&r, "guard-balance", "`let _ =`"), 1);
    assert_eq!(count(&r, "guard-balance", "mem::forget"), 1);
    assert_eq!(count(&r, "guard-balance", "G::smuggle"), 1);
    assert!(r
        .findings
        .iter()
        .filter(|f| f.lint == "guard-balance")
        .all(|f| f.file.ends_with("guards.rs")));
}

#[test]
fn bad_fixture_trips_hygiene() {
    let r = run("bad", &fixture_policy(""));
    assert_eq!(count(&r, "hygiene", "unsafe"), 2, "fence + root manifest");
    assert_eq!(
        count(&r, "hygiene", "dataplane/Cargo.toml"),
        1,
        "missing [lints] opt-in flagged on exactly the one bad manifest"
    );
}

#[test]
fn good_fixture_is_clean() {
    let r = run("good", &fixture_policy(""));
    assert!(
        r.findings.is_empty(),
        "fixed fixtures must produce no findings, got: {:#?}",
        r.findings
            .iter()
            .map(|f| format!("{f}"))
            .collect::<Vec<_>>()
    );
    assert!(r.clean());
}

#[test]
fn allow_entry_suppresses_exactly_its_finding() {
    let allows = r#"
[[allow]]
lint = "panic"
file = "crates/dataplane/src/panics.rs"
contains = "v.unwrap()"
reason = "fixture: exercised by analyzer tests"
"#;
    let policy = fixture_policy(allows);
    let r = run("bad", &policy);
    assert_eq!(count(&r, "panic", ".unwrap()"), 0, "suppressed");
    assert_eq!(count(&r, "panic", ".expect("), 1, "others still fire");
    assert_eq!(r.allowed.len(), 1);
    assert!(r.stale_allows.is_empty());
}

#[test]
fn stale_allow_entry_is_fatal() {
    let allows = r#"
[[allow]]
lint = "panic"
file = "crates/dataplane/src/panics.rs"
contains = "no_such_line_anywhere"
reason = "fixture: intentionally stale"
"#;
    let policy = fixture_policy(allows);
    let r = run("bad", &policy);
    assert_eq!(r.stale_allows.len(), 1);
    assert!(!r.clean(), "stale allowlist entries must fail the build");
    // And on the otherwise-clean fixture too.
    let r = run("good", &policy);
    assert!(r.findings.is_empty());
    assert_eq!(r.stale_allows.len(), 1);
    assert!(!r.clean());
}

#[test]
fn allow_entry_without_reason_is_rejected() {
    let text = "[policy]\nlock_order = []\n\n[[allow]]\nlint = \"panic\"\nfile = \"x.rs\"\ncontains = \"y\"\n";
    let err = Policy::parse(text);
    assert!(err.is_err(), "entries must carry a justification");
}

/// The regression gate: the live workspace, under its committed
/// `allow.toml`, analyzes clean. If this fails, either fix the code or
/// add an audited allowlist entry — the same contract CI enforces via
/// `cargo xtask analyze`.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .expect("workspace root");
    let policy = Policy::load(&root.join("crates/xtask/allow.toml")).expect("policy loads");
    let config = Config::for_workspace(&root, &policy).expect("workspace members discovered");
    let r = analyze(&config, &policy).expect("analysis runs");
    assert!(
        r.findings.is_empty() && r.stale_allows.is_empty(),
        "live workspace must analyze clean; findings: {:#?}, stale: {:#?}",
        r.findings
            .iter()
            .map(|f| format!("{f}"))
            .collect::<Vec<_>>(),
        r.stale_allows
    );
}
