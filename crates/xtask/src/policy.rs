//! The analyzer policy file (`crates/xtask/allow.toml`).
//!
//! Two things live here: the **documented lock order** the lock-order
//! lint enforces, and the **audited allowlist** — every panic-capable
//! call site that survives in a dataplane crate must carry a written
//! justification, or `cargo xtask analyze` fails.
//!
//! The file is a small TOML subset parsed by hand (the workspace builds
//! offline, so no `toml` crate): `[policy]` with string-array values,
//! and `[[allow]]` tables of `key = "string"` pairs. Stale allowlist
//! entries (matching no finding) are themselves reported, so the list
//! can only shrink as call sites are fixed.

use std::fmt;
use std::path::Path;

/// One audited exemption.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint family the exemption applies to (`panic`, `determinism`, …).
    pub lint: String,
    /// Path suffix of the file the call site lives in.
    pub file: String,
    /// Substring of the masked source line to match.
    pub contains: String,
    /// The written justification. Required.
    pub reason: String,
    /// Line in allow.toml (for stale-entry reports).
    pub defined_at: usize,
}

/// Parsed policy: documented lock order, lint-scope opt-outs, and the
/// allowlist.
#[derive(Debug, Default)]
pub struct Policy {
    /// Lock names in their global acquisition order.
    pub lock_order: Vec<String>,
    /// Crate names (directory names under `crates/`) opted out of the
    /// panic-freedom lint.
    pub panic_exempt: Vec<String>,
    /// Crate names opted out of the print lint.
    pub print_exempt: Vec<String>,
    /// Crate names opted out of the interprocedural analysis
    /// (lock-order, blocking, guard-balance).
    pub analysis_exempt: Vec<String>,
    /// Directories (relative to the workspace root) under the
    /// determinism lint (simulated-time code).
    pub determinism_dirs: Vec<String>,
    /// Path suffixes of the sync-primitive layer (the `lock`/`wait`
    /// helpers): exempt from blocking and guard-smuggling checks.
    pub primitive_files: Vec<String>,
    /// Locks that exist to serialize blocking work; blocking findings
    /// where every held lock is listed here are suppressed (visible
    /// with `-v`).
    pub blocking_allowed_under: Vec<String>,
    /// Path suffixes of event-loop files whose functions must not
    /// reach any blocking primitive at all, locks held or not (the
    /// nonblocking-context lint). Empty = lint off.
    pub nonblocking_context: Vec<String>,
    /// Workspace-relative paths of crash-consistent persistence files
    /// under the durability lint (write→sync→publish ordering). Empty =
    /// lint off.
    pub durability_files: Vec<String>,
    /// Audited exemptions.
    pub allows: Vec<AllowEntry>,
}

/// A policy-file syntax problem.
#[derive(Debug)]
pub struct PolicyError {
    /// 1-based line the problem was found on.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow.toml:{}: {}", self.line, self.message)
    }
}

impl Policy {
    /// Load and parse the policy file.
    pub fn load(path: &Path) -> Result<Policy, PolicyError> {
        let text = std::fs::read_to_string(path).map_err(|e| PolicyError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }

    /// Parse policy text.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Policy,
            Allow,
        }
        let mut policy = Policy::default();
        let mut section = Section::None;
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    policy.allows.push(finish_entry(e)?);
                }
                current = Some(AllowEntry {
                    lint: String::new(),
                    file: String::new(),
                    contains: String::new(),
                    reason: String::new(),
                    defined_at: lineno,
                });
                section = Section::Allow;
                continue;
            }
            if line == "[policy]" {
                if let Some(e) = current.take() {
                    policy.allows.push(finish_entry(e)?);
                }
                section = Section::Policy;
                continue;
            }
            if line.starts_with('[') {
                return Err(PolicyError {
                    line: lineno,
                    message: format!("unknown section {line}"),
                });
            }
            let (key, value) = split_kv(&line, lineno)?;
            match section {
                Section::Policy => {
                    let slot = match key {
                        "lock_order" => &mut policy.lock_order,
                        "panic_exempt" => &mut policy.panic_exempt,
                        "print_exempt" => &mut policy.print_exempt,
                        "analysis_exempt" => &mut policy.analysis_exempt,
                        "determinism_dirs" => &mut policy.determinism_dirs,
                        "primitive_files" => &mut policy.primitive_files,
                        "blocking_allowed_under" => &mut policy.blocking_allowed_under,
                        "nonblocking_context" => &mut policy.nonblocking_context,
                        "durability_files" => &mut policy.durability_files,
                        _ => {
                            return Err(PolicyError {
                                line: lineno,
                                message: format!("unknown policy key `{key}`"),
                            });
                        }
                    };
                    *slot = parse_string_array(value, lineno)?;
                }
                Section::Allow => {
                    let entry = current.as_mut().ok_or(PolicyError {
                        line: lineno,
                        message: "key outside [[allow]] table".into(),
                    })?;
                    let s = parse_string(value, lineno)?;
                    match key {
                        "lint" => entry.lint = s,
                        "file" => entry.file = s,
                        "contains" => entry.contains = s,
                        "reason" => entry.reason = s,
                        other => {
                            return Err(PolicyError {
                                line: lineno,
                                message: format!("unknown allow key `{other}`"),
                            })
                        }
                    }
                }
                Section::None => {
                    return Err(PolicyError {
                        line: lineno,
                        message: "key before any section header".into(),
                    })
                }
            }
        }
        if let Some(e) = current.take() {
            policy.allows.push(finish_entry(e)?);
        }
        Ok(policy)
    }

    /// Index of `name` in the documented lock order, if listed.
    pub fn lock_rank(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|n| n == name)
    }
}

fn finish_entry(e: AllowEntry) -> Result<AllowEntry, PolicyError> {
    for (field, value) in [
        ("lint", &e.lint),
        ("file", &e.file),
        ("contains", &e.contains),
        ("reason", &e.reason),
    ] {
        if value.is_empty() {
            return Err(PolicyError {
                line: e.defined_at,
                message: format!(
                    "[[allow]] entry is missing `{field}` (a justification is mandatory)"
                ),
            });
        }
    }
    Ok(e)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str, lineno: usize) -> Result<(&str, &str), PolicyError> {
    let Some(eq) = line.find('=') else {
        return Err(PolicyError {
            line: lineno,
            message: format!("expected `key = value`, got `{line}`"),
        });
    };
    Ok((line[..eq].trim(), line[eq + 1..].trim()))
}

fn parse_string(value: &str, lineno: usize) -> Result<String, PolicyError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(PolicyError {
            line: lineno,
            message: format!("expected a quoted string, got `{value}`"),
        })
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, PolicyError> {
    let v = value.trim();
    if !v.starts_with('[') || !v.ends_with(']') {
        return Err(PolicyError {
            line: lineno,
            message: format!("expected an array of strings, got `{value}`"),
        });
    }
    let inner = &v[1..v.len() - 1];
    let mut out = Vec::new();
    for part in inner.split(',') {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        out.push(parse_string(p, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_policy_and_allows() {
        let text = r#"
# comment
[policy]
lock_order = ["conns", "conn", "stats"]

[[allow]]
lint = "panic"
file = "crates/transport/src/verbs.rs"
contains = "expect(\"supplier not dropped\")"  # trailing comment won't break: no hash in string... kept simple
reason = "addr() is only callable while the supplier is alive"
"#;
        // Note: strip_comment tracks quotes, so the escaped-quote line above
        // parses as long as the `#` sits outside an open string.
        let p = Policy::parse(text).unwrap();
        assert_eq!(p.lock_order, ["conns", "conn", "stats"]);
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].lint, "panic");
        assert_eq!(p.lock_rank("conn"), Some(1));
        assert_eq!(p.lock_rank("nope"), None);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nlint = \"panic\"\nfile = \"f.rs\"\ncontains = \"x\"\n";
        let err = Policy::parse(text).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn rejects_unquoted_values() {
        let err = Policy::parse("[[allow]]\nlint = panic\n").unwrap_err();
        assert!(err.message.contains("quoted"), "{err}");
    }
}
