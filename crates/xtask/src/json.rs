//! Machine-readable findings: `cargo xtask analyze --format json`.
//!
//! Hand-rolled serializer + parser (the workspace builds offline — no
//! serde). The schema is versioned and intentionally flat:
//!
//! ```json
//! {
//!   "version": 1,
//!   "clean": true,
//!   "findings":  [ { "id": "…", "lint": "…", "file": "…",
//!                    "line": 0, "message": "…", "code": "…",
//!                    "chain": ["Fn (file:line)", …] }, … ],
//!   "baselined": [ …same shape… ],
//!   "allowed":   [ …same shape… ],
//!   "stale_allows": [ { "lint": "…", "file": "…", "contains": "…",
//!                       "reason": "…", "defined_at": 0 }, … ]
//! }
//! ```
//!
//! **Finding IDs are stable across line shifts**: the id is an FNV-1a
//! hash of `lint | file | code-or-message` — the line number is
//! deliberately excluded so an unrelated edit above a baselined
//! finding does not change its identity — with a `-N` ordinal suffix
//! disambiguating repeats of the same code on the same file. CI diffs
//! these ids against the committed `baseline.json`.

use crate::lints::{self, Finding};
use crate::policy::AllowEntry;
use crate::Report;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Schema version emitted and accepted.
pub const VERSION: i64 = 1;

// ---------------------------------------------------------------------
// Stable finding IDs.

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn id_key(f: &Finding) -> String {
    let anchor = if f.code.trim().is_empty() {
        &f.message
    } else {
        &f.code
    };
    format!("{}|{}|{}", f.lint, f.file.display(), anchor.trim())
}

/// Stable ids for a slice of findings: FNV-1a of
/// `lint|file|code-or-message`, with `-N` ordinals when the same key
/// repeats (same denied call on two lines of one file).
pub fn finding_ids(findings: &[Finding]) -> Vec<String> {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let key = id_key(f);
            let n = seen.entry(key.clone()).or_insert(0);
            let id = if *n == 0 {
                format!("{:016x}", fnv1a64(key.as_bytes()))
            } else {
                format!("{:016x}-{}", fnv1a64(key.as_bytes()), *n)
            };
            *n += 1;
            id
        })
        .collect()
}

/// The id set of a serialized report — the baseline CI diffs against.
pub fn baseline_ids(json: &str) -> Result<BTreeSet<String>, String> {
    let report = parse_report(json)?;
    Ok(finding_ids(&report.findings).into_iter().collect())
}

// ---------------------------------------------------------------------
// Serializer.

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn finding_json(f: &Finding, id: &str, out: &mut String) {
    out.push_str("    {\"id\": ");
    esc(id, out);
    out.push_str(", \"lint\": ");
    esc(f.lint, out);
    out.push_str(", \"file\": ");
    esc(&f.file.to_string_lossy().replace('\\', "/"), out);
    out.push_str(&format!(", \"line\": {}", f.line));
    out.push_str(", \"message\": ");
    esc(&f.message, out);
    out.push_str(", \"code\": ");
    esc(&f.code, out);
    out.push_str(", \"chain\": [");
    for (i, frame) in f.chain.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        esc(frame, out);
    }
    out.push_str("]}");
}

fn findings_json(findings: &[Finding], out: &mut String) {
    let ids = finding_ids(findings);
    out.push_str("[\n");
    for (i, (f, id)) in findings.iter().zip(&ids).enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        finding_json(f, id, out);
    }
    out.push_str("\n  ]");
}

/// Serialize a full report.
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {VERSION},\n"));
    out.push_str(&format!("  \"clean\": {},\n", report.clean()));
    out.push_str("  \"findings\": ");
    findings_json(&report.findings, &mut out);
    out.push_str(",\n  \"baselined\": ");
    findings_json(&report.baselined, &mut out);
    out.push_str(",\n  \"allowed\": ");
    findings_json(&report.allowed, &mut out);
    out.push_str(",\n  \"stale_allows\": [\n");
    for (i, a) in report.stale_allows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    {\"lint\": ");
        esc(&a.lint, &mut out);
        out.push_str(", \"file\": ");
        esc(&a.file, &mut out);
        out.push_str(", \"contains\": ");
        esc(&a.contains, &mut out);
        out.push_str(", \"reason\": ");
        esc(&a.reason, &mut out);
        out.push_str(&format!(", \"defined_at\": {}}}", a.defined_at));
    }
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Parser (minimal JSON — enough for our own schema).

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    _src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            chars: src.chars().collect(),
            pos: 0,
            _src: src,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at offset {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`, found {:?}", self.peek())))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(self.err(&format!("unexpected {other:?}"))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            if self.peek() != Some(c) {
                return Err(self.err(&format!("expected `{word}`")));
            }
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<i64>()
            .map(Value::Num)
            .map_err(|e| self.err(&format!("bad number `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut v = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err(self.err("bad \\u escape"));
                                };
                                v = v * 16 + h;
                                self.pos += 1;
                            }
                            out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(self.err(&format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(self.err(&format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }
}

fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(obj: &[(String, Value)], key: &str) -> Result<String, String> {
    match get(obj, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        other => Err(format!("field `{key}`: expected string, got {other:?}")),
    }
}

fn num_field(obj: &[(String, Value)], key: &str) -> Result<usize, String> {
    match get(obj, key) {
        Some(Value::Num(n)) if *n >= 0 => Ok(*n as usize),
        other => Err(format!(
            "field `{key}`: expected non-negative number, got {other:?}"
        )),
    }
}

fn parse_finding(v: &Value) -> Result<Finding, String> {
    let Value::Obj(obj) = v else {
        return Err(format!("finding: expected object, got {v:?}"));
    };
    let lint_raw = str_field(obj, "lint")?;
    let lint = lints::lint_name(&lint_raw).ok_or(format!("unknown lint `{lint_raw}`"))?;
    let chain = match get(obj, "chain") {
        Some(Value::Arr(items)) => items
            .iter()
            .map(|i| match i {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!("chain frame: expected string, got {other:?}")),
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
        other => return Err(format!("field `chain`: expected array, got {other:?}")),
    };
    Ok(Finding {
        lint,
        file: PathBuf::from(str_field(obj, "file")?),
        line: num_field(obj, "line")?,
        message: str_field(obj, "message")?,
        code: str_field(obj, "code")?,
        chain,
    })
}

fn parse_findings(v: Option<&Value>, what: &str) -> Result<Vec<Finding>, String> {
    match v {
        Some(Value::Arr(items)) => items.iter().map(parse_finding).collect(),
        None => Ok(Vec::new()),
        other => Err(format!("`{what}`: expected array, got {other:?}")),
    }
}

/// Parse a serialized report back into a [`Report`].
pub fn parse_report(src: &str) -> Result<Report, String> {
    let mut p = Parser::new(src);
    let root = p.value()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.err("trailing content after the report"));
    }
    let Value::Obj(obj) = root else {
        return Err("report: expected a top-level object".into());
    };
    match get(&obj, "version") {
        Some(Value::Num(v)) if *v == VERSION => {}
        other => return Err(format!("unsupported report version {other:?}")),
    }
    let stale_allows = match get(&obj, "stale_allows") {
        Some(Value::Arr(items)) => items
            .iter()
            .map(|v| {
                let Value::Obj(obj) = v else {
                    return Err(format!("stale_allow: expected object, got {v:?}"));
                };
                Ok(AllowEntry {
                    lint: str_field(obj, "lint")?,
                    file: str_field(obj, "file")?,
                    contains: str_field(obj, "contains")?,
                    reason: str_field(obj, "reason")?,
                    defined_at: num_field(obj, "defined_at")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
        other => return Err(format!("`stale_allows`: expected array, got {other:?}")),
    };
    Ok(Report {
        findings: parse_findings(get(&obj, "findings"), "findings")?,
        baselined: parse_findings(get(&obj, "baselined"), "baselined")?,
        allowed: parse_findings(get(&obj, "allowed"), "allowed")?,
        stale_allows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, line: usize, msg: &str, code: &str) -> Finding {
        Finding {
            lint,
            file: PathBuf::from(file),
            line,
            message: msg.to_string(),
            code: code.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn ids_are_stable_across_line_shifts() {
        let a = finding("panic", "a.rs", 10, "m", "x.unwrap()");
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(finding_ids(&[a]), finding_ids(&[b]));
    }

    #[test]
    fn repeated_keys_get_ordinals() {
        let a = finding("panic", "a.rs", 10, "m", "x.unwrap()");
        let b = finding("panic", "a.rs", 20, "m", "x.unwrap()");
        let ids = finding_ids(&[a, b]);
        assert_ne!(ids[0], ids[1]);
        assert!(ids[1].ends_with("-1"), "{ids:?}");
    }

    #[test]
    fn round_trips_a_report_with_escapes() {
        let mut f = finding(
            "lock-order",
            "crates/t/src/x.rs",
            7,
            "acquires `b` while \"holding\" `a`\nnewline\ttab\\backslash",
            "let b = lock(&self.b);",
        );
        f.chain = vec!["S::outer (crates/t/src/x.rs:3)".into()];
        let report = Report {
            findings: vec![f],
            baselined: Vec::new(),
            allowed: vec![finding("panic", "y.rs", 1, "m2", "c2")],
            stale_allows: vec![AllowEntry {
                lint: "panic".into(),
                file: "z.rs".into(),
                contains: "idx[".into(),
                reason: "checked above".into(),
                defined_at: 12,
            }],
        };
        let json = to_json(&report);
        let back = parse_report(&json).expect("parses");
        assert_eq!(back.findings, report.findings);
        assert_eq!(back.allowed, report.allowed);
        assert_eq!(back.stale_allows.len(), 1);
        assert_eq!(back.stale_allows[0].contains, "idx[");
        assert_eq!(to_json(&back), json, "serialization is a fixpoint");
    }

    #[test]
    fn unknown_lints_are_rejected() {
        let json = r#"{"version": 1, "clean": true, "findings": [{"id": "x", "lint": "bogus", "file": "f", "line": 1, "message": "m", "code": "c", "chain": []}], "baselined": [], "allowed": [], "stale_allows": []}"#;
        assert!(parse_report(json).is_err());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        assert!(parse_report(r#"{"version": 2, "findings": []}"#).is_err());
    }
}
