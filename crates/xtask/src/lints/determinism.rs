//! Determinism lint for the simulated-time crates.
//!
//! The DES engine, the simulator drivers in `mapred/sim`, and the JBS
//! engine models in `core` must be bit-reproducible from a seed: the
//! paper-claims tests (Figs. 4/5, consolidated fetching) compare exact
//! numbers across runs, and CI replays chaos schedules by seed. Wall
//! clocks, real sleeps, and OS entropy all break that, so inside those
//! crates they are denied outside `#[cfg(test)]`:
//!
//! * `Instant::now` / `SystemTime` — simulated time ([`SimTime`]) only;
//! * `thread::sleep` — time advances via the event queue, never the OS;
//! * `thread_rng` / `from_entropy` / `rand::random` — all randomness
//!   flows through seeded `DetRng` streams.
//!
//! (`crates/transport` is real-time by design and is *not* in scope.)

use super::Finding;
use crate::lexer::ScannedFile;
use std::path::Path;

/// Substring patterns denied in simulated-time code.
const DENIED: &[(&str, &str)] = &[
    (
        "Instant::now",
        "wall-clock reads break replay; use simulated time (`SimTime`)",
    ),
    (
        "SystemTime",
        "wall-clock reads break replay; use simulated time (`SimTime`)",
    ),
    (
        "thread::sleep",
        "real sleeps break replay; advance time via the event queue",
    ),
    (
        "thread_rng",
        "OS entropy breaks replay; use a seeded `DetRng` stream",
    ),
    (
        "from_entropy",
        "OS entropy breaks replay; use a seeded `DetRng` stream",
    ),
    (
        "rand::random",
        "OS entropy breaks replay; use a seeded `DetRng` stream",
    ),
];

/// Run the determinism lint over one scanned file.
pub fn check(path: &Path, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for line in &scanned.lines {
        if line.in_test {
            continue;
        }
        for (pat, why) in DENIED {
            if line.code.contains(pat) {
                findings.push(Finding {
                    lint: "determinism",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!("`{pat}`: {why} — `{}`", line.raw.trim()),
                    code: line.code.clone(),
                    chain: Vec::new(),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use std::path::PathBuf;

    #[test]
    fn flags_wall_clock_and_entropy() {
        let src = "fn f() { let t = Instant::now(); thread::sleep(d); let r = thread_rng(); }";
        let f = check(&PathBuf::from("x.rs"), &scan(src));
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn seeded_rng_and_test_code_pass() {
        let src = "fn f() { let r = DetRng::new(7); }\n#[cfg(test)]\nmod t { fn g() { let t = Instant::now(); } }\n";
        let f = check(&PathBuf::from("x.rs"), &scan(src));
        assert!(f.is_empty(), "{f:?}");
    }
}
