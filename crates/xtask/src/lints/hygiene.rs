//! Hygiene lint: workspace `[lints]` enforcement and the `unsafe` fence.
//!
//! Three rules:
//!
//! 1. the root `Cargo.toml` must carry a `[workspace.lints.rust]` table
//!    with `unsafe_code = "deny"` — the compiler-level backstop;
//! 2. every workspace member (`crates/*`, `shims/*`, and the root
//!    package) must opt into it with `[lints] workspace = true`, so a
//!    new crate cannot silently skip the shared lint set;
//! 3. the `unsafe` keyword must not appear in workspace source outside
//!    `crates/transport/src/verbs.rs` (reserved for a future real-RDMA
//!    FFI binding), `crates/transport/src/poll.rs` (the reactor's one
//!    `poll(2)` FFI declaration + EINTR-retrying safe wrapper), and the
//!    vendored `shims/` (which mirror external crates and carry their
//!    own review bar).

use super::Finding;
use crate::lexer;
use std::path::{Path, PathBuf};

/// Check one manifest for the `[lints] workspace = true` opt-in.
pub fn check_manifest(path: &Path, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    // A virtual workspace root (no `[package]`) cannot carry `[lints]`;
    // the opt-in applies to package manifests only.
    let is_package = text.lines().any(|l| l.trim() == "[package]");
    if is_package && !has_lints_workspace(text) {
        findings.push(Finding {
            lint: "hygiene",
            file: path.to_path_buf(),
            line: 0,
            message: "manifest lacks `[lints]\\nworkspace = true`; every member must opt into the workspace lint set".into(),
            code: String::new(),
            chain: Vec::new(),
        });
    }
    findings
}

/// Check the workspace root manifest for the shared lint table.
pub fn check_root_manifest(path: &Path, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let has_table = section_body(text, "[workspace.lints.rust]")
        .is_some_and(|body| body.contains("unsafe_code") && body.contains("deny"));
    if !has_table {
        findings.push(Finding {
            lint: "hygiene",
            file: path.to_path_buf(),
            line: 0,
            message:
                "root manifest must declare `[workspace.lints.rust]` with `unsafe_code = \"deny\"`"
                    .into(),
            code: String::new(),
            chain: Vec::new(),
        });
    }
    findings
}

/// Check one source file for the `unsafe` keyword (comments and strings
/// already masked by the caller's scan).
pub fn check_source(path: &Path, masked: &str, allowed_unsafe: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    if allowed_unsafe {
        return findings;
    }
    for (idx, line) in masked.lines().enumerate() {
        if lexer::has_word(line, "unsafe") {
            findings.push(Finding {
                lint: "hygiene",
                file: path.to_path_buf(),
                line: idx + 1,
                message: "`unsafe` is denied outside transport/src/{verbs,poll}.rs and shims/"
                    .into(),
                code: line.to_string(),
                chain: Vec::new(),
            });
        }
    }
    findings
}

/// May `path` legitimately contain `unsafe`?
pub fn unsafe_allowed(path: &Path) -> bool {
    let p = path.to_string_lossy();
    p.ends_with("transport/src/verbs.rs")
        || p.ends_with("transport/src/poll.rs")
        || p.contains("/shims/")
        || p.starts_with("shims/")
}

/// Does the manifest text contain `[lints]` followed by
/// `workspace = true` before the next section header?
fn has_lints_workspace(text: &str) -> bool {
    section_body(text, "[lints]").is_some_and(|body| {
        body.lines()
            .any(|l| l.trim().replace(' ', "") == "workspace=true")
    })
}

/// The body of TOML section `header`, up to the next `[`-line.
fn section_body<'a>(text: &'a str, header: &str) -> Option<&'a str> {
    let mut offset = 0usize;
    for line in text.lines() {
        let start = offset;
        offset += line.len() + 1;
        if line.trim() == header {
            let rest = text.get(offset.min(text.len())..).unwrap_or("");
            let end = rest
                .lines()
                .scan(0usize, |acc, l| {
                    let s = *acc;
                    *acc += l.len() + 1;
                    Some((s, l))
                })
                .find(|(_, l)| l.trim_start().starts_with('['))
                .map(|(s, _)| s)
                .unwrap_or(rest.len());
            let _ = start;
            return rest.get(..end);
        }
    }
    None
}

/// Manifest paths of all workspace members under `root`.
pub fn member_manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        let mut members: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path().join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        members.sort();
        out.extend(members);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn detects_missing_lints_table() {
        let ok = "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n";
        assert!(check_manifest(&PathBuf::from("a/Cargo.toml"), ok).is_empty());
        let bad = "[package]\nname = \"x\"\n";
        assert_eq!(check_manifest(&PathBuf::from("a/Cargo.toml"), bad).len(), 1);
        // `workspace = true` must be inside [lints], not elsewhere.
        let tricked = "[package]\nname = \"x\"\n[lints]\n\n[dependencies]\nworkspace = true\n";
        assert_eq!(
            check_manifest(&PathBuf::from("a/Cargo.toml"), tricked).len(),
            1
        );
        // Virtual workspace roots have no package to hang [lints] on.
        let virtual_root = "[workspace]\nmembers = [\"crates/*\"]\n";
        assert!(check_manifest(&PathBuf::from("Cargo.toml"), virtual_root).is_empty());
    }

    #[test]
    fn detects_root_unsafe_deny() {
        let ok = "[workspace]\n\n[workspace.lints.rust]\nunsafe_code = \"deny\"\n";
        assert!(check_root_manifest(&PathBuf::from("Cargo.toml"), ok).is_empty());
        let bad = "[workspace]\n";
        assert_eq!(
            check_root_manifest(&PathBuf::from("Cargo.toml"), bad).len(),
            1
        );
    }

    #[test]
    fn unsafe_fence() {
        let f = check_source(
            &PathBuf::from("crates/net/src/x.rs"),
            "unsafe { *p }",
            false,
        );
        assert_eq!(f.len(), 1);
        let masked = lexer::mask("// unsafe only in comment");
        assert!(check_source(&PathBuf::from("x.rs"), &masked, false).is_empty());
        assert!(unsafe_allowed(&PathBuf::from(
            "crates/transport/src/verbs.rs"
        )));
        assert!(unsafe_allowed(&PathBuf::from("crates/transport/src/poll.rs")));
        assert!(unsafe_allowed(&PathBuf::from("shims/loom/src/lib.rs")));
        assert!(!unsafe_allowed(&PathBuf::from("crates/des/src/lib.rs")));
        assert!(!unsafe_allowed(&PathBuf::from("crates/net/src/poll.rs")));
    }
}
