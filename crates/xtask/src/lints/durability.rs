//! Durability-ordering lint for crash-consistent persistence code.
//!
//! The files listed in `[policy] durability_files` (the hybrid store's
//! manifest/spill/remote modules) implement write→sync→publish
//! protocols: bytes must reach the platter (`sync_all`/`sync_data`)
//! before the operation that makes them *visible* (a publishing
//! `rename`, or returning success to a committer). Three rules, each
//! checked per function over the masked source:
//!
//! 1. **publish-before-sync** — a function containing a `rename(` must
//!    have a sync witness (`sync_all(`, `sync_data(`, `.sync()`)
//!    textually before it; a rename with no preceding sync publishes
//!    bytes the crash can still tear.
//! 2. **bare `fs::write`** — the one-shot helper gives no handle to
//!    sync, so in a durability file it is always a finding.
//! 3. **unsynced durable write** — a function that writes
//!    (`write_all(`/`write_bytes(`) but contains no sync witness and no
//!    rename has no durability story of its own; either sync in place
//!    or carry an audited `allow.toml` waiver naming where the deferred
//!    sync happens.
//!
//! The rules are deliberately textual (same trade as the panic lint):
//! they over-approximate, and the waiver list is where the audited
//! exceptions live — e.g. an append path whose sync is deferred by a
//! batching interval.

use super::Finding;
use crate::lexer::ScannedFile;
use std::path::Path;

/// Calls that count as a durability barrier.
const SYNC_WITNESS: &[&str] = &["sync_all(", "sync_data(", ".sync()"];

/// Calls that put durable-intent bytes on the way to disk.
const DURABLE_WRITE: &[&str] = &["write_all(", "write_bytes("];

/// One function's masked lines, as the splitter recovers them.
struct Func {
    name: String,
    /// 1-based line of the `fn` keyword.
    start: usize,
    /// Indices into `ScannedFile::lines` covering the body.
    lines: Vec<usize>,
}

/// Recover top-level and impl-level function extents by brace depth.
/// Closures and nested blocks stay inside their enclosing function.
fn functions(scanned: &ScannedFile) -> Vec<Func> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut current: Option<(Func, i64, bool)> = None;
    for (idx, line) in scanned.lines.iter().enumerate() {
        if current.is_none() && !line.in_test {
            if let Some(name) = fn_name(&line.code) {
                current = Some((
                    Func {
                        name,
                        start: line.number,
                        lines: Vec::new(),
                    },
                    depth,
                    false,
                ));
            }
        }
        let mut line_depth = depth;
        for c in line.code.chars() {
            match c {
                '{' => line_depth += 1,
                '}' => line_depth -= 1,
                _ => {}
            }
        }
        depth = line_depth;
        if let Some((func, open_depth, entered)) = current.as_mut() {
            func.lines.push(idx);
            *entered = *entered || depth > *open_depth;
            if *entered && depth <= *open_depth {
                if let Some((func, _, _)) = current.take() {
                    out.push(func);
                }
            }
        }
    }
    out
}

/// The identifier after `fn ` on a masked line, if this line starts a
/// function item (not a mention inside an expression).
fn fn_name(code: &str) -> Option<String> {
    let at = code.find("fn ")?;
    // Require item position: start of line or preceded by a visibility
    // or qualifier keyword, never by `.`/`(` (a method argument).
    let before = code.get(..at)?.trim();
    if !(before.is_empty()
        || before.ends_with("pub")
        || before.ends_with(')')
        || before.ends_with("const")
        || before.ends_with("unsafe"))
    {
        return None;
    }
    let rest = code.get(at + 3..)?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

fn has_any(code: &str, pats: &[&str]) -> bool {
    pats.iter().any(|p| code.contains(p))
}

/// Run the durability lint over one scanned file.
pub fn check(path: &Path, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for func in functions(scanned) {
        let frame = format!("{} ({}:{})", func.name, path.display(), func.start);
        let body = || func.lines.iter().filter_map(|&i| scanned.lines.get(i));
        let has_sync = body().any(|l| !l.in_test && has_any(&l.code, SYNC_WITNESS));
        let has_rename = body().any(|l| !l.in_test && l.code.contains("rename("));
        let mut seen_sync = false;
        let mut flagged_unsynced = false;
        for line in body() {
            // Signature lines mention the function's own name, not a
            // call (`fn write_bytes(` is not a write).
            if line.in_test || fn_name(&line.code).is_some() {
                continue;
            }
            seen_sync = seen_sync || has_any(&line.code, SYNC_WITNESS);
            if line.code.contains("fs::write(") {
                findings.push(Finding {
                    lint: "durability",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!(
                        "bare `fs::write` in `{}` leaves no handle to sync — open, \
                         write, sync, then publish — `{}`",
                        func.name,
                        line.raw.trim()
                    ),
                    code: line.code.clone(),
                    chain: vec![frame.clone()],
                });
            }
            if line.code.contains("rename(") && !seen_sync {
                findings.push(Finding {
                    lint: "durability",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!(
                        "publishing `rename` in `{}` with no sync before it — a crash \
                         can tear the bytes the rename just made visible — `{}`",
                        func.name,
                        line.raw.trim()
                    ),
                    code: line.code.clone(),
                    chain: vec![frame.clone()],
                });
            }
            if !flagged_unsynced
                && !has_sync
                && !has_rename
                && has_any(&line.code, DURABLE_WRITE)
            {
                flagged_unsynced = true;
                findings.push(Finding {
                    lint: "durability",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!(
                        "durable-intent write in `{}` with no sync anywhere in the \
                         function — sync before publish, or waive with a justification \
                         naming the deferred barrier — `{}`",
                        func.name,
                        line.raw.trim()
                    ),
                    code: line.code.clone(),
                    chain: vec![frame.clone()],
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        check(&PathBuf::from("crates/x/src/d.rs"), &scan(src))
    }

    #[test]
    fn unsynced_rename_and_bare_fs_write_fire() {
        let src = "fn publish(d: &Path) -> io::Result<()> {\n\
                   let mut f = fs::File::create(d.join(\"t\"))?;\n\
                   f.write_all(b\"x\")?;\n\
                   fs::rename(d.join(\"t\"), d.join(\"o\"))\n\
                   }\n\
                   fn snap(d: &Path) -> io::Result<()> {\n\
                   fs::write(d.join(\"s\"), b\"x\")\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.iter().filter(|f| f.message.contains("rename")).count(), 1);
        assert_eq!(
            f.iter().filter(|f| f.message.contains("fs::write")).count(),
            1
        );
        assert!(f.iter().all(|f| f.lint == "durability"));
        assert!(f[0].chain[0].contains("publish"), "witness chain: {f:?}");
    }

    #[test]
    fn synced_publish_and_deferred_append_shape() {
        let src = "fn publish(d: &Path) -> io::Result<()> {\n\
                   let mut f = fs::File::create(d.join(\"t\"))?;\n\
                   f.write_all(b\"x\")?;\n\
                   f.sync_all()?;\n\
                   fs::rename(d.join(\"t\"), d.join(\"o\"))\n\
                   }\n\
                   fn append(f: &mut fs::File) -> io::Result<()> {\n\
                   f.write_all(b\"rec\")\n\
                   }\n";
        let f = run(src);
        // publish is clean; the sync-free append is the one finding
        // (the shape an audited waiver documents).
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no sync anywhere"));
        assert!(f[0].chain[0].contains("append"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() {\n\
                   fs::write(p, b\"x\").unwrap();\n}\n}\n";
        assert!(run(src).is_empty());
    }
}
