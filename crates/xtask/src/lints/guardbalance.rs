//! Guard-balance lint: lock guards and trace spans must have a
//! structured lifetime.
//!
//! PR 4's trace assertions pair `span enter`/`span exit` events; the
//! store's correctness proofs assume a `MutexGuard` acquired in a
//! function either dies there or is *visibly* threaded to a callee
//! typed to receive it. Three shapes break that discipline:
//!
//! 1. **Immediate drop**: `let _ = lock(&x);` or `let _ = span(…)` —
//!    the guard/span dies at the end of the statement, so the critical
//!    section / span body is empty. Always a bug (either the binding
//!    should be named, or the call is pointless).
//! 2. **Leaked guards**: `mem::forget(…)` / `Box::leak(…)` anywhere in
//!    lint scope — a forgotten `MutexGuard` leaves the mutex locked
//!    forever; a leaked span never closes.
//! 3. **Guard smuggling**: a function that *returns* a `MutexGuard` it
//!    acquired itself (no guard parameter). The caller now holds a
//!    lock that no `lock(&…)` call in its own body announces, which
//!    blinds both human readers and the lock-order analysis' local
//!    view. The sync-primitive layer (`[policy] primitive_files`) is
//!    exempt — wrapping acquisition is its whole job.

use super::Finding;
use crate::lexer::{self, ScannedFile};
use crate::policy::Policy;
use std::path::Path;

/// Check one scanned file.
pub fn check(path: &Path, scanned: &ScannedFile, policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rel = path.to_string_lossy().replace('\\', "/");
    let primitive = policy
        .primitive_files
        .iter()
        .any(|s| rel.ends_with(s.as_str()));

    for line in &scanned.lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        // Shape 1: `let _ =` binding a guard or span to the wildcard.
        if let Some(rest) = wildcard_rhs(code) {
            let dropped = if rest.contains("lock(&") {
                Some("lock guard")
            } else if rest.contains(".span(") || rest.starts_with("span(") {
                Some("trace span")
            } else {
                None
            };
            if let Some(what) = dropped {
                findings.push(Finding {
                    lint: "guard-balance",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!(
                        "`let _ =` drops the {what} immediately — name the binding or delete the call"
                    ),
                    code: code.clone(),
                    chain: Vec::new(),
                });
            }
        }
        // Shape 2: leak primitives.
        for pat in ["mem::forget(", "forget(", "Box::leak("] {
            if let Some(col) = find_call(code, pat) {
                findings.push(Finding {
                    lint: "guard-balance",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!(
                        "`{}` defeats structured drop (col {col}) — a forgotten guard locks its mutex forever",
                        pat.trim_end_matches('(')
                    ),
                    code: code.clone(),
                    chain: Vec::new(),
                });
                break; // one finding per line
            }
        }
    }

    // Shape 3: guard smuggling, from the extracted signatures.
    if !primitive {
        for def in lexer::functions(&scanned.masked) {
            let in_test = scanned
                .lines
                .get(def.line.saturating_sub(1))
                .is_some_and(|l| l.in_test);
            if in_test {
                continue;
            }
            let returns_guard = def.ret.contains("MutexGuard");
            let takes_guard = def.params.iter().any(|p| p.ty.contains("MutexGuard"));
            if returns_guard && !takes_guard {
                findings.push(Finding {
                    lint: "guard-balance",
                    file: path.to_path_buf(),
                    line: def.line,
                    message: format!(
                        "`{}` returns a MutexGuard it acquired itself — callers hold a lock their own body never announces; thread the guard in as a parameter or keep the critical section local",
                        def.qualified
                    ),
                    code: format!("fn {}(…) -> {}", def.name, def.ret.trim()),
                    chain: Vec::new(),
                });
            }
        }
    }
    findings
}

/// If `code` is a `let _ = …;` statement, the right-hand side.
fn wildcard_rhs(code: &str) -> Option<&str> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let _")?;
    let rest = rest.trim_start();
    rest.strip_prefix('=')
}

/// Column of a word-bounded call-site match of `pat` (ending in `(`).
/// A `::` path prefix (`std::mem::forget`) still matches; an identifier
/// tail (`no_forget`) or a method receiver (`x.forget`) does not.
fn find_call(code: &str, pat: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        let bounded = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| lexer::is_ident(c) || c == '.');
        if bounded {
            return Some(at + 1);
        }
        from = at + pat.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        check(&PathBuf::from("x.rs"), &scan(src), &Policy::default())
    }

    #[test]
    fn wildcard_lock_binding_is_flagged() {
        let f = run("fn f(&self) {\n    let _ = lock(&self.inner);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("lock guard"));
    }

    #[test]
    fn wildcard_span_binding_is_flagged() {
        let f = run("fn f(&self) {\n    let _ = tracer.span(\"x\", &[]);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("trace span"));
    }

    #[test]
    fn named_bindings_are_clean() {
        let f = run("fn f(&self) {\n    let _g = lock(&self.inner);\n    let _span = tracer.span(\"x\", &[]);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wildcard_on_plain_results_is_clean() {
        let f = run("fn f(&self) {\n    let _ = self.tx.send(1);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mem_forget_is_flagged() {
        let f = run("fn f(g: G) {\n    mem::forget(g);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        // The fully-qualified path matches too, exactly once.
        let f = run("fn f(g: G) {\n    std::mem::forget(g);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        // …but an unrelated suffix like `self.no_forget(x)` is not.
        let f = run("fn f(&self) {\n    self.no_forget(1);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_smuggling_is_flagged_but_threading_is_not() {
        let smuggle = "impl S {\n    fn take(&self) -> MutexGuard<'_, Inner> {\n        lock(&self.inner)\n    }\n}\n";
        let f = run(smuggle);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("S::take"));
        // Guard-in, guard-out threading (the spill_trip shape) is fine.
        let thread = "impl S {\n    fn trip<'a>(&'a self, g: MutexGuard<'a, Inner>) -> (MutexGuard<'a, Inner>, u32) {\n        (g, 0)\n    }\n}\n";
        assert!(run(thread).is_empty());
    }

    #[test]
    fn primitive_files_are_exempt_from_smuggling() {
        let src = "pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }\n";
        let policy = Policy {
            primitive_files: vec!["sync.rs".into()],
            ..Policy::default()
        };
        let f = check(&PathBuf::from("crates/x/src/sync.rs"), &scan(src), &policy);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("#[cfg(test)]\nmod t {\n    fn f(&self) { let _ = lock(&self.inner); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
