//! Lock-order lint: a static lock-acquisition graph for the dataplane.
//!
//! All mutex acquisition in `jbs-transport` goes through the shared
//! poison-tolerant helper `sync::lock(&…)`, which gives this lint a
//! reliable syntactic anchor: every `lock(&path)` call is an
//! acquisition of the lock named by `path`'s last segment
//! (`self.conns` → `conns`, `slot.conn` → `conn`).
//!
//! Guard lifetimes are tracked heuristically but conservatively:
//!
//! * a `let`-bound guard lives to the end of its enclosing block
//!   (tracked by brace depth);
//! * a temporary guard (`lock(&self.stats).x += 1;`) lives to the end
//!   of its statement (the next `;` at or below its depth).
//!
//! Acquiring lock `B` while any guard `A` is live records edge `A → B`.
//! The lint then rejects
//!
//! 1. **cycles** in the resulting graph across the whole crate — the
//!    classic ABBA deadlock (a self-edge `A → A` is a guaranteed
//!    deadlock with `std::sync::Mutex` and is reported as a cycle);
//! 2. **order violations**: every edge must go strictly forward in the
//!    documented order (`[policy] lock_order` in `allow.toml`), and
//!    every lock name must appear in that order — so the documentation
//!    cannot silently rot.
//!
//! Limits (documented in DESIGN.md §9): the analysis is per-function and
//! syntactic — edges through calls (e.g. a callback locking `stats`
//! while a caller holds `conn`) must be encoded in the documented order
//! by hand, and explicit `drop(guard)` calls are not modeled (none are
//! used on the dataplane).

use super::Finding;
use crate::lexer::{self, ScannedFile};
use crate::policy::Policy;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One `A → B` acquisition edge with its witness site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired while holding `held`.
    pub acquired: String,
    /// Witness file.
    pub file: PathBuf,
    /// Witness line (1-based).
    pub line: usize,
}

/// Extract the lock-acquisition edges of one scanned file.
pub fn edges(path: &Path, scanned: &ScannedFile) -> Vec<Edge> {
    #[derive(Debug)]
    struct Guard {
        name: String,
        /// Brace depth at acquisition.
        depth: usize,
        /// Temporaries die at the next `;` at depth <= `depth`.
        temporary: bool,
    }

    let chars: Vec<char> = scanned.masked.chars().collect();
    // Map char offset -> line number and test-ness.
    let mut line_of = Vec::with_capacity(chars.len());
    {
        let mut ln = 1usize;
        for &c in &chars {
            line_of.push(ln);
            if c == '\n' {
                ln += 1;
            }
        }
    }
    let in_test = |off: usize| {
        let ln = line_of.get(off).copied().unwrap_or(1);
        scanned.lines.get(ln - 1).is_some_and(|l| l.in_test)
    };

    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            '{' => {
                depth += 1;
                i += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                // Scoped guards die when their block closes; a temporary
                // in a block-statement header (`match lock(&a)… { … }`)
                // dies at the brace that returns to its own depth.
                guards.retain(|g| g.depth <= depth && !(g.temporary && g.depth == depth));
                i += 1;
            }
            ';' => {
                guards.retain(|g| !(g.temporary && depth <= g.depth));
                i += 1;
            }
            'l' if is_lock_call(&chars, i) => {
                let (name, end) = lock_name(&chars, i);
                if let Some(name) = name {
                    if !in_test(i) {
                        for g in &guards {
                            out.push(Edge {
                                held: g.name.clone(),
                                acquired: name.clone(),
                                file: path.to_path_buf(),
                                line: line_of.get(i).copied().unwrap_or(0),
                            });
                        }
                    }
                    guards.push(Guard {
                        name,
                        depth,
                        temporary: !stmt_has_let(&chars, i),
                    });
                }
                i = end;
            }
            _ => i += 1,
        }
    }
    out
}

/// Is `chars[i..]` a call of the `lock(&…)` helper (not a method call
/// like `.lock(` and not an identifier suffix like `try_lock(`)?
fn is_lock_call(chars: &[char], i: usize) -> bool {
    if chars[i..].iter().take(5).collect::<String>() != "lock(" {
        return false;
    }
    if i > 0 && (lexer::is_ident(chars[i - 1]) || chars[i - 1] == '.') {
        return false;
    }
    chars.get(i + 5) == Some(&'&')
}

/// Parse the lock name out of `lock(&path)`; returns (name, end offset).
fn lock_name(chars: &[char], i: usize) -> (Option<String>, usize) {
    let mut j = i + 6; // past "lock(&"
    let mut path = String::new();
    while j < chars.len() && (lexer::is_ident(chars[j]) || chars[j] == '.' || chars[j] == ' ') {
        path.push(chars[j]);
        j += 1;
    }
    if chars.get(j) != Some(&')') {
        // Not a simple `lock(&a.b.c)` form; skip rather than guess.
        return (None, j);
    }
    let name = path
        .trim()
        .rsplit('.')
        .next()
        .map(str::to_string)
        .filter(|s| !s.is_empty());
    (name, j + 1)
}

/// Does the statement containing offset `i` bind with `let` (scoped
/// guard) or not (temporary)? Scans backwards to the statement start.
/// `if let` / `while let` scrutinees are NOT bindings of the guard —
/// those temporaries die with the `if`/`while` statement.
fn stmt_has_let(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        match chars[j - 1] {
            ';' | '{' | '}' => break,
            _ => j -= 1,
        }
    }
    let stmt: String = chars[j..i].iter().collect();
    let words: Vec<&str> = stmt
        .split(|c: char| !lexer::is_ident(c))
        .filter(|w| !w.is_empty())
        .collect();
    words.iter().enumerate().any(|(k, w)| {
        *w == "let"
            && !matches!(
                k.checked_sub(1).and_then(|p| words.get(p)),
                Some(&"if") | Some(&"while")
            )
    })
}

/// Check all edges for cycles and documented-order violations.
pub fn check(all_edges: &[Edge], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Order violations + undocumented locks.
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for e in all_edges {
        names.insert(&e.held);
        names.insert(&e.acquired);
        match (policy.lock_rank(&e.held), policy.lock_rank(&e.acquired)) {
            (Some(a), Some(b)) if a >= b => findings.push(Finding {
                lint: "lock-order",
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "acquires `{}` while holding `{}`, contrary to the documented order {:?}",
                    e.acquired, e.held, policy.lock_order
                ),
                code: String::new(),
            }),
            _ => {}
        }
    }
    for n in names {
        if policy.lock_rank(n).is_none() {
            let witness = all_edges
                .iter()
                .find(|e| e.held == n || e.acquired == n)
                .map(|e| (e.file.clone(), e.line));
            let (file, line) = witness.unwrap_or_default();
            findings.push(Finding {
                lint: "lock-order",
                file,
                line,
                message: format!(
                    "lock `{n}` participates in nesting but is not in `[policy] lock_order`; document it"
                ),
                code: String::new(),
            });
        }
    }

    // Cycle detection over the name graph (includes self-edges).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in all_edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
    }
    if let Some(cycle) = find_cycle(&adj) {
        let witness = all_edges
            .iter()
            .find(|e| cycle.contains(&e.held) && cycle.contains(&e.acquired))
            .cloned();
        let (file, line) = witness.map(|e| (e.file, e.line)).unwrap_or_default();
        findings.push(Finding {
            lint: "lock-order",
            file,
            line,
            message: format!(
                "lock-acquisition cycle (potential deadlock): {}",
                cycle.join(" -> ")
            ),
            code: String::new(),
        });
    }
    findings
}

fn find_cycle(adj: &BTreeMap<&str, BTreeSet<&str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            match marks.get(next).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> = stack
                        .get(pos..)
                        .unwrap_or(&[])
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = dfs(next, adj, marks, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }
    let mut marks = BTreeMap::new();
    for &node in adj.keys() {
        if marks.get(node).copied().unwrap_or(Mark::White) == Mark::White {
            if let Some(c) = dfs(node, adj, &mut marks, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use std::path::PathBuf;

    fn edges_of(src: &str) -> Vec<Edge> {
        edges(&PathBuf::from("x.rs"), &scan(src))
    }

    fn policy(order: &[&str]) -> Policy {
        Policy {
            lock_order: order.iter().map(|s| s.to_string()).collect(),
            allows: Vec::new(),
        }
    }

    #[test]
    fn scoped_guard_nesting_yields_edge() {
        let src = "fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!(
            e.first().map(|e| (e.held.as_str(), e.acquired.as_str())),
            Some(("alpha", "beta"))
        );
    }

    #[test]
    fn inner_block_releases_before_next_lock() {
        let src = "fn f(&self) { let s = { let a = lock(&self.alpha); a.len() }; let b = lock(&self.beta); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn f(&self) { lock(&self.alpha).x += 1; let b = lock(&self.beta); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn temporary_guard_nests_within_its_statement() {
        let src = "fn f(&self) { lock(&self.alpha).insert(lock(&self.beta).pop()); }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
    }

    #[test]
    fn abba_is_a_cycle() {
        let a = edges_of("fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }");
        let b = edges_of("fn g(&self) { let b = lock(&self.beta); let a = lock(&self.alpha); }");
        let all: Vec<Edge> = a.into_iter().chain(b).collect();
        let f = check(&all, &policy(&["alpha", "beta"]));
        assert!(f.iter().any(|f| f.message.contains("cycle")), "{f:?}");
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let e = edges_of("fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.alpha); }");
        let f = check(&e, &policy(&["alpha"]));
        assert!(f.iter().any(|f| f.message.contains("cycle")), "{f:?}");
    }

    #[test]
    fn order_violation_without_cycle_is_reported() {
        let e = edges_of("fn f(&self) { let b = lock(&self.beta); let a = lock(&self.alpha); }");
        let f = check(&e, &policy(&["alpha", "beta"]));
        assert!(
            f.iter()
                .any(|f| f.message.contains("contrary to the documented order")),
            "{f:?}"
        );
    }

    #[test]
    fn undocumented_lock_is_reported() {
        let e = edges_of("fn f(&self) { let a = lock(&self.alpha); let g = lock(&self.gamma); }");
        let f = check(&e, &policy(&["alpha"]));
        assert!(
            f.iter()
                .any(|f| f.message.contains("not in `[policy] lock_order`")),
            "{f:?}"
        );
    }

    #[test]
    fn clean_order_passes() {
        let e = edges_of("fn f(&self) { let a = lock(&self.alpha); lock(&self.beta).x += 1; }");
        let f = check(&e, &policy(&["alpha", "beta"]));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn match_scrutinee_guard_covers_arms_then_dies() {
        // The scrutinee guard is live inside the arms…
        let src = "fn f(&self) { match lock(&self.alpha).get() { Some(_) => { lock(&self.beta).x += 1; } None => {} } }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        // …but not past the match statement.
        let src =
            "fn f(&self) { match lock(&self.alpha).get() { _ => {} } let b = lock(&self.beta); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_is_temporary() {
        // Live inside the body…
        let src = "fn f(&self) { if let Some(e) = lock(&self.alpha).get(k) { lock(&self.beta).x += 1; } }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        // …dead after the `if` statement (the verbs.rs `catalog_entry` shape).
        let src = "fn f(&self) { if let Some(e) = lock(&self.alpha).get(k) { return; } let q = lock(&self.beta); lock(&self.alpha).insert(k); }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!(
            e.first().map(|e| (e.held.as_str(), e.acquired.as_str())),
            Some(("beta", "alpha"))
        );
    }

    #[test]
    fn method_lock_calls_are_ignored() {
        let src = "fn f(&self) { let a = self.m.lock().unwrap(); let b = try_lock(&x); }";
        assert!(edges_of(src).is_empty());
    }
}
