//! Lock-order lint: the documented-order and deadlock-cycle checks
//! over the interprocedural acquisition graph.
//!
//! All mutex acquisition in the dataplane goes through the shared
//! poison-tolerant helper `sync::lock(&…)`, which gives the analysis a
//! reliable syntactic anchor: every `lock(&path)` call is an
//! acquisition of the lock named by `path`'s last segment
//! (`self.conns` → `conns`, `slot.conn` → `conn`).
//!
//! Edge extraction lives in [`crate::callgraph`]: local guard lifetimes
//! are simulated per function (let-bound = block-scoped, temporary =
//! statement-scoped, `drop`/moves/`wait` modeled), and held sets
//! propagate caller → callee to a fixpoint, so an edge like "callback
//! locks `stats` while `SlotMap::with_conn` holds `conn`" is found
//! without policy hints and reported with its full call chain.
//!
//! This module judges the resulting edges:
//!
//! 1. **cycles** in the graph across the whole workspace — the classic
//!    ABBA deadlock (a self-edge `A → A` is a guaranteed deadlock with
//!    `std::sync::Mutex` and is reported as a cycle);
//! 2. **order violations**: every edge must go strictly forward in the
//!    documented order (`[policy] lock_order` in `allow.toml`), and
//!    every lock name must appear in that order — so the documentation
//!    cannot silently rot.

use super::Finding;
use crate::callgraph::Edge;
use crate::policy::Policy;
use std::collections::{BTreeMap, BTreeSet};

/// Check all edges for cycles and documented-order violations.
pub fn check(all_edges: &[Edge], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Order violations + undocumented locks.
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for e in all_edges {
        names.insert(&e.held);
        names.insert(&e.acquired);
        match (policy.lock_rank(&e.held), policy.lock_rank(&e.acquired)) {
            (Some(a), Some(b)) if a >= b => findings.push(Finding {
                lint: "lock-order",
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "acquires `{}` while holding `{}`, contrary to the documented order {:?}",
                    e.acquired, e.held, policy.lock_order
                ),
                code: String::new(),
                chain: e.chain.clone(),
            }),
            _ => {}
        }
    }
    for n in names {
        if policy.lock_rank(n).is_none() {
            let witness = all_edges.iter().find(|e| e.held == n || e.acquired == n);
            let (file, line, chain) = witness
                .map(|e| (e.file.clone(), e.line, e.chain.clone()))
                .unwrap_or_default();
            findings.push(Finding {
                lint: "lock-order",
                file,
                line,
                message: format!(
                    "lock `{n}` participates in nesting but is not in `[policy] lock_order`; document it"
                ),
                code: String::new(),
                chain,
            });
        }
    }

    // Cycle detection over the name graph (includes self-edges).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in all_edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
    }
    if let Some(cycle) = find_cycle(&adj) {
        let witness = all_edges
            .iter()
            .find(|e| cycle.contains(&e.held) && cycle.contains(&e.acquired))
            .cloned();
        let (file, line, chain) = witness
            .map(|e| (e.file, e.line, e.chain))
            .unwrap_or_default();
        findings.push(Finding {
            lint: "lock-order",
            file,
            line,
            message: format!(
                "lock-acquisition cycle (potential deadlock): {}",
                cycle.join(" -> ")
            ),
            code: String::new(),
            chain,
        });
    }
    findings
}

fn find_cycle(adj: &BTreeMap<&str, BTreeSet<&str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            match marks.get(next).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> = stack
                        .get(pos..)
                        .unwrap_or(&[])
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = dfs(next, adj, marks, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }
    let mut marks = BTreeMap::new();
    for &node in adj.keys() {
        if marks.get(node).copied().unwrap_or(Mark::White) == Mark::White {
            if let Some(c) = dfs(node, adj, &mut marks, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::lexer::scan;
    use std::path::PathBuf;

    fn edges_of(src: &str) -> Vec<Edge> {
        let files = vec![(PathBuf::from("x.rs"), scan(src))];
        callgraph::analyze(&files, &[]).edges
    }

    fn policy(order: &[&str]) -> Policy {
        Policy {
            lock_order: order.iter().map(|s| s.to_string()).collect(),
            ..Policy::default()
        }
    }

    #[test]
    fn abba_is_a_cycle() {
        let a = edges_of("fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }");
        let b = edges_of("fn g(&self) { let b = lock(&self.beta); let a = lock(&self.alpha); }");
        let all: Vec<Edge> = a.into_iter().chain(b).collect();
        let f = check(&all, &policy(&["alpha", "beta"]));
        assert!(f.iter().any(|f| f.message.contains("cycle")), "{f:?}");
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let e = edges_of("fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.alpha); }");
        let f = check(&e, &policy(&["alpha"]));
        assert!(f.iter().any(|f| f.message.contains("cycle")), "{f:?}");
    }

    #[test]
    fn cross_function_abba_is_a_cycle() {
        // Each function is clean in isolation; the inversion only
        // exists through the call.
        let src = r#"
impl S {
    fn forward(&self) {
        let a = lock(&self.alpha);
        self.take_beta();
    }
    fn take_beta(&self) {
        lock(&self.beta).touch();
    }
    fn backward(&self) {
        let b = lock(&self.beta);
        self.take_alpha();
    }
    fn take_alpha(&self) {
        lock(&self.alpha).touch();
    }
}
"#;
        let e = edges_of(src);
        let f = check(&e, &policy(&["alpha", "beta"]));
        let cycle = f
            .iter()
            .find(|f| f.message.contains("cycle"))
            .expect("cycle");
        assert!(
            !cycle.chain.is_empty(),
            "cycle finding carries the call chain: {cycle:?}"
        );
    }

    #[test]
    fn order_violation_without_cycle_is_reported() {
        let e = edges_of("fn f(&self) { let b = lock(&self.beta); let a = lock(&self.alpha); }");
        let f = check(&e, &policy(&["alpha", "beta"]));
        assert!(
            f.iter()
                .any(|f| f.message.contains("contrary to the documented order")),
            "{f:?}"
        );
    }

    #[test]
    fn undocumented_lock_is_reported() {
        let e = edges_of("fn f(&self) { let a = lock(&self.alpha); let g = lock(&self.gamma); }");
        let f = check(&e, &policy(&["alpha"]));
        assert!(
            f.iter()
                .any(|f| f.message.contains("not in `[policy] lock_order`")),
            "{f:?}"
        );
    }

    #[test]
    fn clean_order_passes() {
        let e = edges_of("fn f(&self) { let a = lock(&self.alpha); lock(&self.beta).x += 1; }");
        let f = check(&e, &policy(&["alpha", "beta"]));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn match_scrutinee_guard_covers_arms_then_dies() {
        // The scrutinee guard is live inside the arms…
        let src = "fn f(&self) { match lock(&self.alpha).get() { Some(_) => { lock(&self.beta).x += 1; } None => {} } }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        // …but not past the match statement.
        let src =
            "fn f(&self) { match lock(&self.alpha).get() { _ => {} } let b = lock(&self.beta); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_is_temporary() {
        // Live inside the body…
        let src = "fn f(&self) { if let Some(e) = lock(&self.alpha).get(k) { lock(&self.beta).x += 1; } }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        // …dead after the `if` statement (the verbs.rs `catalog_entry` shape).
        let src = "fn f(&self) { if let Some(e) = lock(&self.alpha).get(k) { return; } let q = lock(&self.beta); lock(&self.alpha).insert(k); }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!(
            e.first().map(|e| (e.held.as_str(), e.acquired.as_str())),
            Some(("beta", "alpha"))
        );
    }

    #[test]
    fn method_lock_calls_are_ignored() {
        let src = "fn f(&self) { let a = self.m.lock().unwrap(); let b = try_lock(&x); }";
        assert!(edges_of(src).is_empty());
    }
}
