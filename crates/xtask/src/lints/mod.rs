//! The lint families of `cargo xtask analyze`.
//!
//! Every lint produces [`Finding`]s; the driver in `lib.rs` applies the
//! allowlist, reports stale allowlist entries, and turns any surviving
//! finding into a nonzero exit.

pub mod determinism;
pub mod hygiene;
pub mod lockorder;
pub mod panics;
pub mod print;

use std::fmt;
use std::path::PathBuf;

/// One rule violation at one call site.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint family (`panic`, `lock-order`, `determinism`, `hygiene`,
    /// `print`).
    pub lint: &'static str,
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// What was matched and why it is denied.
    pub message: String,
    /// The masked source line, for allowlist matching.
    pub code: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.lint,
            self.file.display(),
            self.line,
            self.message
        )
    }
}
