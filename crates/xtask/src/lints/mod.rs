//! The lint families of `cargo xtask analyze`.
//!
//! Every lint produces [`Finding`]s; the driver in `lib.rs` applies the
//! allowlist, reports stale allowlist entries, and turns any surviving
//! finding into a nonzero exit.

pub mod blocking;
pub mod determinism;
pub mod durability;
pub mod guardbalance;
pub mod hygiene;
pub mod lockorder;
pub mod nonblocking;
pub mod panics;
pub mod print;

use std::fmt;
use std::path::PathBuf;

/// One rule violation at one call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint family (`panic`, `lock-order`, `blocking`, `nonblocking`,
    /// `guard-balance`, `determinism`, `durability`, `hygiene`,
    /// `print`).
    pub lint: &'static str,
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// What was matched and why it is denied.
    pub message: String,
    /// The masked source line, for allowlist matching.
    pub code: String,
    /// Call-chain frames (`Fn (file:line)`) for interprocedural
    /// findings; empty for findings local to one function.
    pub chain: Vec<String>,
}

/// Map a lint name back to its canonical `&'static str` (so a parsed
/// JSON report uses the same statics as a live run).
pub fn lint_name(name: &str) -> Option<&'static str> {
    [
        "panic",
        "lock-order",
        "blocking",
        "nonblocking",
        "guard-balance",
        "determinism",
        "durability",
        "hygiene",
        "print",
    ]
    .into_iter()
    .find(|&known| name == known)
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.lint,
            self.file.display(),
            self.line,
            self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    via {}", self.chain.join("\n     -> "))?;
        }
        Ok(())
    }
}
