//! Print-statement lint for the instrumented dataplane crates.
//!
//! The dataplane reports through structured tracing (`jbs-obs`) and
//! typed stats, never ad-hoc stdout/stderr writes: stray prints corrupt
//! benchmark JSON piped from `shuffle_bench`, interleave garbage into
//! test harness output, and bypass the trace's ring-buffer bound. So in
//! `crates/transport`, `crates/net`, and `crates/core`, the print
//! macros (`println!`, `print!`, `eprintln!`, `eprint!`) and `dbg!` are
//! denied outside `#[cfg(test)]` — record an event on a
//! [`Trace`](../../../obs) or extend the stats snapshot instead.

use super::Finding;
use crate::lexer::ScannedFile;
use std::path::Path;

/// Macro invocations denied in dataplane code.
const DENIED: &[(&str, &str)] = &[
    (
        "println!",
        "use a `jbs_obs::Trace` event or a stats counter, not stdout",
    ),
    (
        "print!",
        "use a `jbs_obs::Trace` event or a stats counter, not stdout",
    ),
    (
        "eprintln!",
        "use a `jbs_obs::Trace` event or a typed error, not stderr",
    ),
    (
        "eprint!",
        "use a `jbs_obs::Trace` event or a typed error, not stderr",
    ),
    (
        "dbg!",
        "debug prints do not belong on the dataplane; trace it instead",
    ),
];

/// True when `line` invokes the macro `pat` (which ends in `!`) as its
/// own token — `print!` must not fire inside `println!`, nor `println!`
/// inside `eprintln!`, nor any of them inside identifiers.
fn invokes(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(i) = line[from..].find(pat) {
        let at = from + i;
        let preceded = line[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if !preceded {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Run the print lint over one scanned file.
pub fn check(path: &Path, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for line in &scanned.lines {
        if line.in_test {
            continue;
        }
        for (pat, why) in DENIED {
            if invokes(&line.code, pat) {
                findings.push(Finding {
                    lint: "print",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!("`{pat}`: {why} — `{}`", line.raw.trim()),
                    code: line.code.clone(),
                    chain: Vec::new(),
                });
                // One finding per line: `println!` should not also
                // report as `print!` were the guard ever relaxed.
                break;
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use std::path::PathBuf;

    #[test]
    fn flags_each_print_macro_once() {
        let src = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n    print!(\"z\");\n    eprint!(\"w\");\n    dbg!(1);\n}\n";
        let f = check(&PathBuf::from("x.rs"), &scan(src));
        assert_eq!(f.len(), 5, "{f:?}");
        // `println!` reports as `println!`, not as `print!`.
        assert!(f[0].message.starts_with("`println!`"), "{}", f[0].message);
        assert!(f[1].message.starts_with("`eprintln!`"), "{}", f[1].message);
    }

    #[test]
    fn test_code_strings_and_identifiers_pass() {
        let src = concat!(
            "fn f() { let print_count = 1; my_println!(print_count); }\n",
            "fn g() { let s = \"println!(not code)\"; }\n",
            "#[cfg(test)]\nmod t { fn h() { println!(\"fine in tests\"); } }\n"
        );
        let f = check(&PathBuf::from("x.rs"), &scan(src));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn macro_token_detection_is_positional() {
        assert!(invokes("println!(\"a\")", "println!"));
        assert!(!invokes("println!(\"a\")", "print!"));
        assert!(!invokes("eprintln!(\"a\")", "println!"));
        assert!(invokes("eprintln!(\"a\")", "eprintln!"));
        assert!(!invokes("debug!(x)", "dbg!"));
        assert!(invokes("foo(); dbg!(x)", "dbg!"));
    }
}
