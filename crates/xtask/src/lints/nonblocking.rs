//! Nonblocking-context lint.
//!
//! The event-driven supplier (DESIGN.md §14) multiplexes every
//! connection of a reactor shard onto one poll thread. A single
//! blocking call anywhere in that thread's reach — a file read, a
//! socket `write_all`, a `sleep`, a channel `recv`, a condvar wait —
//! stalls *every* connection on the shard, not just the one being
//! served. So files declared `nonblocking_context` in the policy get a
//! stricter rule than blocking-under-lock: functions defined there may
//! not reach a blocking primitive at all, locks held or not. Disk work
//! must leave through the prefetch queue to the permit-bounded worker
//! pool; socket I/O must go through the nonblocking `read`/`write`
//! forms that return `WouldBlock` instead of parking.
//!
//! The reachability (with witness call chains) comes from
//! [`crate::callgraph`], which propagates each function's blocking
//! primitives up the call graph to a fixpoint — a wrapper three calls
//! deep is flagged at the reactor entry point with the chain that gets
//! there. Closures handed to `spawn` run on their own thread and are
//! not charged to the spawning context.
//!
//! Policy hooks:
//!
//! * `[policy] nonblocking_context = ["crates/…/reactor.rs", …]` —
//!   path suffixes of the event-loop files. Empty list = lint off.
//! * `[[allow]]` entries with `lint = "nonblocking"` for audited
//!   sites (e.g. an `accept` on a listener already set nonblocking).

use super::Finding;
use crate::callgraph::Analysis;
use crate::policy::Policy;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Flag every blocking primitive reachable from a function defined in
/// a `nonblocking_context` file. One finding per blocking site: when
/// several context functions reach the same site, the shortest witness
/// chain is reported.
pub fn check(analysis: &Analysis, policy: &Policy) -> Vec<Finding> {
    if policy.nonblocking_context.is_empty() {
        return Vec::new();
    }
    let mut best: BTreeMap<(PathBuf, usize, String), Finding> = BTreeMap::new();
    for r in &analysis.reachable_blocking {
        let from = r.from_file.to_string_lossy().replace('\\', "/");
        if !policy
            .nonblocking_context
            .iter()
            .any(|f| from.ends_with(f.as_str()))
        {
            continue;
        }
        let key = (r.file.clone(), r.line, r.code.clone());
        if let Some(f) = best.get(&key) {
            if f.chain.len() <= r.chain.len() {
                continue;
            }
        }
        best.insert(
            key,
            Finding {
                lint: "nonblocking",
                file: r.file.clone(),
                line: r.line,
                message: format!(
                    "{} reachable from `{}` ({}) — a nonblocking context; one \
                     blocked call stalls every connection on the reactor shard",
                    r.what,
                    r.from_fn,
                    r.from_file.display(),
                ),
                code: r.code.clone(),
                chain: r.chain.clone(),
            },
        );
    }
    best.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::lexer::scan;
    use std::path::PathBuf;

    fn run(named: &[(&str, &str)], context: &[&str]) -> Vec<Finding> {
        let files: Vec<(PathBuf, _)> = named
            .iter()
            .map(|(path, src)| (PathBuf::from(path), scan(src)))
            .collect();
        let analysis = callgraph::analyze(&files, &[]);
        let policy = Policy {
            nonblocking_context: context.iter().map(|s| s.to_string()).collect(),
            ..Policy::default()
        };
        check(&analysis, &policy)
    }

    #[test]
    fn direct_blocking_in_context_is_flagged_without_any_lock() {
        let src = "fn poll_one(&self) { self.sock.write_all(b\"x\"); }";
        let f = run(&[("reactor.rs", src)], &["reactor.rs"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("stream write"), "{}", f[0].message);
        assert!(f[0].chain.is_empty(), "local site carries no chain");
    }

    #[test]
    fn no_context_files_means_lint_off() {
        let src = "fn poll_one(&self) { self.sock.write_all(b\"x\"); }";
        assert!(run(&[("reactor.rs", src)], &[]).is_empty());
    }

    #[test]
    fn blocking_outside_context_is_not_flagged() {
        let files = [
            ("reactor.rs", "fn poll_one(&self) { self.tally(); }"),
            ("server.rs", "fn stage(&self) { fs::read(p); }"),
        ];
        assert!(run(&files, &["reactor.rs"]).is_empty());
    }

    #[test]
    fn transitive_blocking_is_charged_to_the_context_with_a_chain() {
        let files = [
            (
                "reactor.rs",
                "impl R { fn poll_one(&self) { self.drain(); } }",
            ),
            (
                "server.rs",
                "impl R { fn drain(&self) { self.out.flush(); } }",
            ),
        ];
        let f = run(&files, &["reactor.rs"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("stream flush"), "{}", f[0].message);
        assert_eq!(
            f[0].file,
            PathBuf::from("server.rs"),
            "finding anchors at the blocking site itself"
        );
        assert!(
            f[0].chain.iter().any(|fr| fr.contains("R::poll_one")),
            "chain names the reactor entry: {:?}",
            f[0].chain
        );
    }

    #[test]
    fn condvar_wait_counts_even_though_the_guard_is_waived() {
        let src = "fn park(&self) { let g = lock(&self.q); let g = wait(&self.cv, g); }";
        let f = run(&[("reactor.rs", src)], &["reactor.rs"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("condvar wait"), "{}", f[0].message);
    }

    #[test]
    fn spawned_closures_block_their_own_thread_not_the_reactor() {
        let src = "fn start(&self) { thread::spawn(move || { fs::read(p); }); }";
        assert!(run(&[("reactor.rs", src)], &["reactor.rs"]).is_empty());
    }

    #[test]
    fn one_finding_per_site_with_the_shortest_chain() {
        let files = [
            (
                "reactor.rs",
                "impl R { fn a(&self) { self.b(); } fn b(&self) { self.c(); } }",
            ),
            ("server.rs", "impl R { fn c(&self) { self.f.sync_all(); } }"),
        ];
        let f = run(&files, &["reactor.rs"]);
        assert_eq!(f.len(), 1, "deduped to one finding per site: {f:?}");
        assert_eq!(
            f[0].chain.len(),
            1,
            "shortest witness wins: {:?}",
            f[0].chain
        );
    }
}
