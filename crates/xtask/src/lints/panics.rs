//! Panic-freedom lint for dataplane crates.
//!
//! A fetch path that panics takes a poisoned lock — or a whole supplier
//! — down with it, so in `crates/transport` and `crates/net` the
//! panic-capable constructs are denied outside `#[cfg(test)]` code:
//!
//! * `.unwrap()` / `.expect(…)` on `Option`/`Result`;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`-free
//!   (plain `assert` is allowed: invariant checks that fire in tests are
//!   wanted; the deny list targets *unhandled fallibility*);
//! * slice/map indexing `x[i]` — which hides a bounds panic — unless the
//!   expression goes through `.get(…)`.
//!
//! Call sites that are genuinely infallible can be exempted in
//! `allow.toml` with a written justification.

use super::Finding;
use crate::lexer::{self, ScannedFile};
use std::path::Path;

/// Substring patterns denied in non-test dataplane code.
const DENIED: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "`.unwrap()` can panic; handle the error or justify in allow.toml",
    ),
    (
        ".expect(",
        "`.expect(…)` can panic; handle the error or justify in allow.toml",
    ),
    ("panic!", "`panic!` is denied on the dataplane"),
    (
        "unreachable!",
        "`unreachable!` is denied on the dataplane; return an error instead",
    ),
    ("todo!", "`todo!` must not ship on the dataplane"),
    (
        "unimplemented!",
        "`unimplemented!` must not ship on the dataplane",
    ),
];

/// Keywords that may directly precede `[` without forming an index
/// expression (`&mut [u8]`, `return [a, b]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "let", "ref", "in", "as", "return", "match", "if", "else", "move", "dyn", "impl",
    "where", "box", "static", "const", "break", "use", "pub", "crate", "type", "fn", "vec",
];

/// Run the panic-freedom lint over one scanned file.
pub fn check(path: &Path, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for line in &scanned.lines {
        if line.in_test {
            continue;
        }
        for (pat, why) in DENIED {
            if line.code.contains(pat) {
                findings.push(Finding {
                    lint: "panic",
                    file: path.to_path_buf(),
                    line: line.number,
                    message: format!("{why} — `{}`", line.raw.trim()),
                    code: line.code.clone(),
                    chain: Vec::new(),
                });
            }
        }
        for col in index_sites(&line.code) {
            findings.push(Finding {
                lint: "panic",
                file: path.to_path_buf(),
                line: line.number,
                message: format!(
                    "indexing without `.get(…)` can panic on out-of-bounds (col {col}) — `{}`",
                    line.raw.trim()
                ),
                code: line.code.clone(),
                chain: Vec::new(),
            });
        }
    }
    findings
}

/// Columns (1-based) of `[` characters that begin an index expression:
/// the previous non-space char belongs to an identifier or is a closing
/// `)` / `]`, and the preceding word is not a keyword.
fn index_sites(code: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Attribute `#[…]` and macro `name![…]` forms are not indexing.
        let mut p = i;
        while p > 0 && chars[p - 1] == ' ' {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let prev = chars[p - 1];
        let is_index = if prev == ')' || prev == ']' {
            true
        } else if lexer::is_ident(prev) {
            // Walk back over the identifier and reject keywords.
            let mut s = p - 1;
            while s > 0 && lexer::is_ident(chars[s - 1]) {
                s -= 1;
            }
            let word: String = chars[s..p].iter().collect();
            !NON_INDEX_KEYWORDS.contains(&word.as_str())
                && !word.chars().all(|c| c.is_ascii_digit())
        } else {
            false
        };
        if is_index {
            out.push(i + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        check(&PathBuf::from("x.rs"), &scan(src))
    }

    #[test]
    fn flags_unwrap_and_expect_outside_tests() {
        let f = run("fn f() { a.unwrap(); b.expect(\"boom\"); }");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn ignores_test_code_and_comments() {
        let f = run("// a.unwrap()\n#[cfg(test)]\nmod t { fn f() { a.unwrap(); panic!(); } }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_indexing_but_not_types_or_macros() {
        let f = run("fn f(x: &[u8], v: Vec<u8>) -> u8 { let _a: [u8; 2] = [0, 1]; x[0] + v[1] }");
        assert_eq!(f.len(), 2, "{f:?}");
        let f = run("fn f() { let v = vec![1]; }\n#[derive(Debug)]\nstruct S;");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_else_is_fine() {
        let f = run("fn f() { m.lock().unwrap_or_else(|e| e.into_inner()); }");
        assert!(f.is_empty(), "{f:?}");
    }
}
