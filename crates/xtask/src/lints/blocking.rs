//! Blocking-under-lock lint.
//!
//! The paper's dataplane wins by never blocking inside a critical
//! section: a file read, socket write, `thread::sleep`, or condvar
//! wait under a mutex turns every other thread contending on that
//! mutex into a convoy — exactly what the upcoming nonblocking event
//! loop (ROADMAP item 1) cannot tolerate on its hot path.
//!
//! The heavy lifting happens in [`crate::callgraph`]: every blocking
//! primitive (file/socket I/O, `sleep`, `recv`, `Condvar::wait`) is
//! recorded with the locks that may be held at that site, *including
//! locks held by callers arbitrarily far up the call graph*. A
//! `drain_to_remote`-style wrapper is reached transitively — the lint
//! needs no pattern for it, only for the primitives it bottoms out in.
//!
//! Policy hooks:
//!
//! * `[policy] blocking_allowed_under = ["conn", …]` — locks whose
//!   entire purpose is to serialize blocking work (the per-connection
//!   `conn` lock exists precisely to serialize that connection's
//!   socket I/O; flagging it would be noise). Findings whose *every*
//!   held lock is in this list are suppressed into the allowed set,
//!   still visible with `-v`.
//! * `[policy] primitive_files` — the sync-helper layer itself
//!   (`lock`/`wait` wrappers), excluded from the scan in `callgraph`.
//! * `[[allow]]` entries with `lint = "blocking"` for individual
//!   audited sites.

use super::Finding;
use crate::callgraph::Analysis;
use crate::policy::Policy;

/// Judge the analysis' blocking sites against the policy; the second
/// vector holds sites waived because every held lock is listed in
/// `blocking_allowed_under` (surfaced as allowed, never silent).
pub fn split(analysis: &Analysis, policy: &Policy) -> (Vec<Finding>, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut waived = Vec::new();
    for site in &analysis.blocking {
        let flagged: Vec<&(String, Vec<String>)> = site
            .held
            .iter()
            .filter(|(lock, _)| !policy.blocking_allowed_under.contains(lock))
            .collect();
        let all_waived = flagged.is_empty();
        let report: Vec<&(String, Vec<String>)> = if all_waived {
            site.held.iter().collect()
        } else {
            flagged
        };
        let locks: Vec<String> = report.iter().map(|(l, _)| format!("`{l}`")).collect();
        let chain = report
            .iter()
            .map(|(_, c)| c)
            .find(|c| !c.is_empty())
            .cloned()
            .unwrap_or_default();
        let finding = Finding {
            lint: "blocking",
            file: site.file.clone(),
            line: site.line,
            message: format!(
                "{} in `{}` while holding {}{}",
                site.what,
                site.in_fn,
                locks.join(", "),
                if all_waived {
                    " (waived: listed in `blocking_allowed_under`)"
                } else {
                    " — blocking under a lock convoys every contender"
                },
            ),
            code: site.code.clone(),
            chain,
        };
        if all_waived {
            waived.push(finding);
        } else {
            findings.push(finding);
        }
    }
    (findings, waived)
}

/// The fatal findings only (test/CLI convenience).
pub fn check(analysis: &Analysis, policy: &Policy) -> Vec<Finding> {
    split(analysis, policy).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::lexer::scan;
    use std::path::PathBuf;

    fn run(src: &str, allowed_under: &[&str]) -> Vec<Finding> {
        let files = vec![(PathBuf::from("x.rs"), scan(src))];
        let analysis = callgraph::analyze(&files, &[]);
        let policy = Policy {
            blocking_allowed_under: allowed_under.iter().map(|s| s.to_string()).collect(),
            ..Policy::default()
        };
        check(&analysis, &policy)
    }

    #[test]
    fn sleep_under_lock_is_flagged() {
        let src = "fn f(&self) { let g = lock(&self.inner); thread::sleep(d); }";
        let f = run(src, &[]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("thread sleep"), "{}", f[0].message);
    }

    #[test]
    fn sleep_after_drop_is_clean() {
        let src = "fn f(&self) { let g = lock(&self.inner); drop(g); thread::sleep(d); }";
        assert!(run(src, &[]).is_empty());
    }

    #[test]
    fn io_with_no_lock_is_clean() {
        let src = "fn f(&self) { self.file.write_all(b\"x\"); fs::read(p); }";
        assert!(run(src, &[]).is_empty());
    }

    #[test]
    fn allowed_under_suppresses_only_listed_locks() {
        let src = "fn f(&self) { let g = lock(&self.conn); w.write_all(b\"x\"); }";
        assert!(run(src, &["conn"]).is_empty());
        let src2 = "fn f(&self) { let g = lock(&self.conn); let s = lock(&self.stats); w.write_all(b\"x\"); }";
        let f = run(src2, &["conn"]);
        assert_eq!(f.len(), 1, "unlisted `stats` still flags: {f:?}");
        assert!(f[0].message.contains("`stats`"));
        assert!(!f[0].message.contains("`conn`"));
    }

    #[test]
    fn transitive_blocking_carries_chain() {
        let src = r#"
impl S {
    fn top(&self) { let g = lock(&self.store); self.drain_to_remote(); }
    fn drain_to_remote(&self) { fs::write(p, data); }
}
"#;
        let f = run(src, &[]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].chain.iter().any(|fr| fr.contains("S::top")),
            "chain names the lock holder: {:?}",
            f[0].chain
        );
    }
}
