//! CLI entry point:
//! `cargo xtask analyze [--root PATH] [--format text|json] [--baseline FILE] [-v]`.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::policy::Policy;
use xtask::{analyze, json, Config};

const USAGE: &str =
    "usage: cargo xtask analyze [--root PATH] [--format text|json] [--baseline FILE] [-v]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if cmd != "analyze" {
        eprintln!("unknown subcommand `{cmd}`; available: analyze");
        return ExitCode::FAILURE;
    }
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut format = String::from("text");
    let mut baseline: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                other => {
                    eprintln!("--format takes `text` or `json`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "-v" | "--verbose" => verbose = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Under `cargo xtask`, the working directory is already the
    // workspace root; fall back to the manifest's grandparent when the
    // binary is run directly from target/.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("Cargo.toml").is_file() && cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or(cwd)
        }
    });

    let policy_path = root.join("crates/xtask/allow.toml");
    let policy = match Policy::load(&policy_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match Config::for_workspace(&root, &policy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask: cannot discover workspace members: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut report = match analyze(&config, &policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &baseline {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match json::baseline_ids(&text) {
                Ok(ids) => report.apply_baseline(&ids),
                Err(e) => {
                    eprintln!("xtask: bad baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("xtask: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if format == "json" {
        // The report (findings, baselined debt, allowed exemptions,
        // stale entries) goes to stdout; the verdict stays on stderr so
        // the artifact is pure JSON.
        print!("{}", json::to_json(&report));
        if report.clean() {
            eprintln!("xtask analyze: clean");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "xtask analyze: {} violation(s), {} stale allowlist entr(ies)",
            report.findings.len(),
            report.stale_allows.len()
        );
        return ExitCode::FAILURE;
    }

    if verbose {
        for f in &report.allowed {
            println!("allowed  {f}");
        }
        for f in &report.baselined {
            println!("baselined  {f}");
        }
    }
    for f in &report.findings {
        println!("{f}");
    }
    for a in &report.stale_allows {
        println!(
            "[stale-allow] allow.toml:{}: entry (lint={}, file={}, contains=\"{}\") matched nothing; remove it",
            a.defined_at, a.lint, a.file, a.contains
        );
    }
    if report.clean() {
        println!(
            "xtask analyze: clean ({} audited exemption{}{})",
            report.allowed.len(),
            if report.allowed.len() == 1 { "" } else { "s" },
            if report.baselined.is_empty() {
                String::new()
            } else {
                format!(", {} baselined", report.baselined.len())
            }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask analyze: {} violation{} ({} stale allowlist entr{})",
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" },
            report.stale_allows.len(),
            if report.stale_allows.len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
        ExitCode::FAILURE
    }
}
