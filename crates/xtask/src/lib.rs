//! `cargo xtask analyze` — repo-specific static analysis for the JBS
//! workspace.
//!
//! Eight lint families, built on a hand-rolled scanner ([`lexer`]) and
//! an interprocedural call graph ([`callgraph`]) so the workspace stays
//! fully offline (no syn/proc-macro/registry deps):
//!
//! * [`lints::panics`] — panic-freedom on the dataplane crates;
//! * [`lints::lockorder`] — the workspace-wide lock-acquisition graph
//!   (held sets propagated across calls to a fixpoint), cycle
//!   detection, and the documented order;
//! * [`lints::blocking`] — no file/socket I/O, `sleep`, or condvar
//!   wait while any lock is held, through arbitrarily deep calls;
//! * [`lints::nonblocking`] — files declared `nonblocking_context`
//!   (the reactor's event loop) must not reach a blocking primitive
//!   at all, locks held or not;
//! * [`lints::guardbalance`] — lock guards and trace spans must have
//!   structured lifetimes (no `let _ =`, no `mem::forget`, no
//!   guard-returning functions outside the sync-primitive layer);
//! * [`lints::determinism`] — no wall clocks / sleeps / OS entropy in
//!   the simulated-time crates;
//! * [`lints::hygiene`] — workspace `[lints]` opt-in everywhere and
//!   the `unsafe` fence;
//! * [`lints::print`] — no stdout/stderr prints on the instrumented
//!   dataplane crates; report through `jbs-obs` traces instead.
//!
//! Lint scope is discovered from the workspace manifest's `members`
//! list; crates opt *out* per family through `[policy]` keys in
//! `crates/xtask/allow.toml` ([`policy`]). Exemptions for individual
//! call sites are `[[allow]]` entries with a mandatory one-line
//! justification; stale entries are themselves errors. Findings
//! serialize to versioned JSON with stable ids ([`json`]) so CI can
//! diff against a committed baseline. See DESIGN.md §9.

pub mod callgraph;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod policy;

use lexer::ScannedFile;
use lints::Finding;
use policy::Policy;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Which lints apply to which parts of the tree.
pub struct Config {
    /// Workspace root.
    pub root: PathBuf,
    /// Directories (relative) whose sources get the panic-freedom lint.
    pub panic_dirs: Vec<PathBuf>,
    /// Directories (relative) whose sources get the determinism lint.
    pub determinism_dirs: Vec<PathBuf>,
    /// Directories (relative) whose sources feed the interprocedural
    /// analysis (lock order, blocking-under-lock, guard balance).
    pub analysis_dirs: Vec<PathBuf>,
    /// Directories (relative) whose sources get the print lint.
    pub print_dirs: Vec<PathBuf>,
}

impl Config {
    /// Discover the lint scope from the workspace manifest: every
    /// `crates/*` member is in scope for every source lint unless its
    /// crate name appears in the matching `[policy] *_exempt` list.
    /// (`shims/*` members are vendored stand-ins — never linted as
    /// sources, though hygiene still checks their manifests.)
    pub fn for_workspace(root: &Path, policy: &Policy) -> std::io::Result<Config> {
        let manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
        let mut crate_dirs: Vec<(String, PathBuf)> = Vec::new();
        for member in workspace_members(&manifest) {
            for dir in expand_member(root, &member)? {
                let rel = dir.strip_prefix(root).unwrap_or(&dir).to_path_buf();
                let relstr = rel.to_string_lossy().replace('\\', "/");
                if !relstr.starts_with("crates/") {
                    continue;
                }
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().to_string())
                    .unwrap_or_default();
                if dir.join("src").is_dir() {
                    crate_dirs.push((name, rel.join("src")));
                }
            }
        }
        crate_dirs.sort();
        let select = |exempt: &[String]| -> Vec<PathBuf> {
            crate_dirs
                .iter()
                .filter(|(name, _)| !exempt.iter().any(|e| e == name))
                .map(|(_, d)| d.clone())
                .collect()
        };
        let determinism_dirs = if policy.determinism_dirs.is_empty() {
            vec![
                "crates/des/src".into(),
                "crates/core/src".into(),
                "crates/mapred/src/sim".into(),
            ]
        } else {
            policy.determinism_dirs.iter().map(PathBuf::from).collect()
        };
        Ok(Config {
            root: root.to_path_buf(),
            panic_dirs: select(&policy.panic_exempt),
            determinism_dirs,
            analysis_dirs: select(&policy.analysis_exempt),
            print_dirs: select(&policy.print_exempt),
        })
    }
}

/// The `members = [...]` globs of the workspace manifest.
fn workspace_members(manifest: &str) -> Vec<String> {
    let Some(start) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = manifest[start + open..].find(']') else {
        return Vec::new();
    };
    manifest[start + open + 1..start + open + close]
        .split(',')
        .filter_map(|p| {
            let p = p.trim().trim_matches('"');
            (!p.is_empty()).then(|| p.to_string())
        })
        .collect()
}

/// Expand one member glob (`crates/*`) or literal path.
fn expand_member(root: &Path, member: &str) -> std::io::Result<Vec<PathBuf>> {
    if let Some(prefix) = member.strip_suffix("/*") {
        let base = root.join(prefix);
        let mut out = Vec::new();
        if base.is_dir() {
            for entry in std::fs::read_dir(&base)? {
                let path = entry?.path();
                if path.is_dir() && path.join("Cargo.toml").is_file() {
                    out.push(path);
                }
            }
        }
        out.sort();
        Ok(out)
    } else {
        let p = root.join(member);
        Ok(if p.is_dir() { vec![p] } else { Vec::new() })
    }
}

/// The analyzer result: surviving findings plus stale allowlist entries.
pub struct Report {
    /// Findings not covered by the allowlist or baseline.
    pub findings: Vec<Finding>,
    /// Findings present in the committed baseline (known debt).
    pub baselined: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale; also fatal).
    pub stale_allows: Vec<policy::AllowEntry>,
    /// Findings that were suppressed by the allowlist or by
    /// `blocking_allowed_under` (for `-v`).
    pub allowed: Vec<Finding>,
}

impl Report {
    /// Did the analysis pass?
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }

    /// Move findings whose stable id is in `baseline` into the
    /// baselined set (CI fails only on findings *not* in the baseline).
    pub fn apply_baseline(&mut self, baseline: &BTreeSet<String>) {
        let ids = json::finding_ids(&self.findings);
        let mut keep = Vec::new();
        for (f, id) in std::mem::take(&mut self.findings).into_iter().zip(ids) {
            if baseline.contains(&id) {
                self.baselined.push(f);
            } else {
                keep.push(f);
            }
        }
        self.findings = keep;
    }
}

/// Read and scan every source in the interprocedural analysis scope,
/// keyed by workspace-relative path. Exposed for the integration tests
/// that assert the call graph rediscovers known cross-function facts.
pub fn scan_analysis_files(config: &Config) -> std::io::Result<Vec<(PathBuf, ScannedFile)>> {
    let mut files = Vec::new();
    for dir in &config.analysis_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            files.push((rel(&config.root, &path), scanned));
        }
    }
    Ok(files)
}

/// Run every lint over the workspace under `config`, applying `policy`.
pub fn analyze(config: &Config, policy: &Policy) -> std::io::Result<Report> {
    let mut findings = Vec::new();

    // Panic-freedom over the dataplane.
    for dir in &config.panic_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            findings.extend(lints::panics::check(&rel(&config.root, &path), &scanned));
        }
    }

    // Determinism over the simulated-time crates.
    for dir in &config.determinism_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            findings.extend(lints::determinism::check(
                &rel(&config.root, &path),
                &scanned,
            ));
        }
    }

    // Write→sync→publish ordering in the crash-consistent persistence
    // files (the durable spill manifest and its neighbors).
    for rel_path in &policy.durability_files {
        let path = config.root.join(rel_path);
        if !path.is_file() {
            continue;
        }
        let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
        findings.extend(lints::durability::check(
            &rel(&config.root, &path),
            &scanned,
        ));
    }

    // No prints on the instrumented dataplane.
    for dir in &config.print_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            findings.extend(lints::print::check(&rel(&config.root, &path), &scanned));
        }
    }

    // The interprocedural pass: one scan feeds the call graph, the
    // lock-order judgment, blocking-under-lock, and guard balance.
    let files = scan_analysis_files(config)?;
    let analysis = callgraph::analyze(&files, &policy.primitive_files);
    findings.extend(lints::lockorder::check(&analysis.edges, policy));
    let (blocked, waived) = lints::blocking::split(&analysis, policy);
    findings.extend(blocked);
    findings.extend(lints::nonblocking::check(&analysis, policy));
    for (path, scanned) in &files {
        findings.extend(lints::guardbalance::check(path, scanned, policy));
    }

    // Hygiene: manifests…
    let root_manifest = config.root.join("Cargo.toml");
    findings.extend(lints::hygiene::check_root_manifest(
        &rel(&config.root, &root_manifest),
        &std::fs::read_to_string(&root_manifest)?,
    ));
    for manifest in lints::hygiene::member_manifests(&config.root) {
        findings.extend(lints::hygiene::check_manifest(
            &rel(&config.root, &manifest),
            &std::fs::read_to_string(&manifest)?,
        ));
    }
    // …and the unsafe fence over all workspace sources.
    for path in workspace_sources(&config.root)? {
        let relp = rel(&config.root, &path);
        let allowed = lints::hygiene::unsafe_allowed(&relp);
        if allowed {
            continue;
        }
        let masked = lexer::mask(&std::fs::read_to_string(&path)?);
        findings.extend(lints::hygiene::check_source(&relp, &masked, false));
    }

    let mut report = apply_allowlist(findings, policy);
    // Blocking findings waived by `blocking_allowed_under` are not
    // silent: they surface in the allowed set (`-v`).
    report.allowed.extend(waived);
    Ok(report)
}

/// Split findings into surviving / allowed, and collect stale entries.
pub fn apply_allowlist(findings: Vec<Finding>, policy: &Policy) -> Report {
    let mut used = vec![false; policy.allows.len()];
    let mut surviving = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        let file = f.file.to_string_lossy().replace('\\', "/");
        let hit = policy.allows.iter().enumerate().find(|(_, a)| {
            a.lint == f.lint && file.ends_with(&a.file) && f.code.contains(&a.contains)
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                allowed.push(f);
            }
            None => surviving.push(f),
        }
    }
    let stale_allows = policy
        .allows
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| a.clone())
        .collect();
    Report {
        findings: surviving,
        baselined: Vec::new(),
        stale_allows,
        allowed,
    }
}

/// All `.rs` files under `dir`, recursively, sorted.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Every workspace source the unsafe fence covers: `src/`, `tests/`,
/// `benches/`, `examples/` of the root and of each `crates/*` member.
/// The analyzer's own lint fixtures are excluded (they are bad on
/// purpose), as are `shims/` and `target/` (scanned never / exempt).
fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.to_path_buf()];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        roots.extend(entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()));
    }
    for r in roots {
        for sub in ["src", "tests", "benches", "examples"] {
            for f in rust_files(&r.join(sub))? {
                // Exclusion is relative to the scan root so the
                // analyzer still works when pointed AT a fixture tree.
                let p = rel(root, &f).to_string_lossy().replace('\\', "/");
                if p.contains("fixtures/") {
                    continue;
                }
                out.push(f);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}
