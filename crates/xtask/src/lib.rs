//! `cargo xtask analyze` — repo-specific static analysis for the JBS
//! workspace.
//!
//! Four lint families, built on a hand-rolled scanner ([`lexer`]) so the
//! workspace stays fully offline (no syn/proc-macro/registry deps):
//!
//! * [`lints::panics`] — panic-freedom on the dataplane crates
//!   (`crates/transport`, `crates/net`);
//! * [`lints::lockorder`] — a static lock-acquisition graph over the
//!   transport crate, cycle detection, and the documented order;
//! * [`lints::determinism`] — no wall clocks / sleeps / OS entropy in
//!   the simulated-time crates (`des`, `mapred/sim`, `core`);
//! * [`lints::hygiene`] — workspace `[lints]` opt-in everywhere and the
//!   `unsafe` fence;
//! * [`lints::print`] — no stdout/stderr prints on the instrumented
//!   dataplane crates (`transport`, `net`, `core`); report through
//!   `jbs-obs` traces and typed stats instead.
//!
//! Exemptions live in `crates/xtask/allow.toml` ([`policy`]), each with
//! a mandatory one-line justification; stale entries are themselves
//! errors. See DESIGN.md §9 for the contract this enforces.

pub mod lexer;
pub mod lints;
pub mod policy;

use lints::Finding;
use policy::Policy;
use std::path::{Path, PathBuf};

/// Which lints apply to which parts of the tree.
pub struct Config {
    /// Workspace root.
    pub root: PathBuf,
    /// Directories (relative) whose sources get the panic-freedom lint.
    pub panic_dirs: Vec<PathBuf>,
    /// Directories (relative) whose sources get the determinism lint.
    pub determinism_dirs: Vec<PathBuf>,
    /// Directories (relative) whose sources feed the lock-order graph.
    pub lock_dirs: Vec<PathBuf>,
    /// Directories (relative) whose sources get the print lint.
    pub print_dirs: Vec<PathBuf>,
}

impl Config {
    /// The JBS workspace layout.
    pub fn for_workspace(root: &Path) -> Config {
        Config {
            root: root.to_path_buf(),
            panic_dirs: vec![
                "crates/transport/src".into(),
                "crates/net/src".into(),
                "crates/store-hybrid/src".into(),
            ],
            determinism_dirs: vec![
                "crates/des/src".into(),
                "crates/core/src".into(),
                "crates/mapred/src/sim".into(),
            ],
            lock_dirs: vec![
                "crates/transport/src".into(),
                "crates/store-hybrid/src".into(),
            ],
            print_dirs: vec![
                "crates/transport/src".into(),
                "crates/net/src".into(),
                "crates/core/src".into(),
                "crates/store-hybrid/src".into(),
            ],
        }
    }
}

/// The analyzer result: surviving findings plus stale allowlist entries.
pub struct Report {
    /// Findings not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale; also fatal).
    pub stale_allows: Vec<policy::AllowEntry>,
    /// Findings that were suppressed by the allowlist (for `-v`).
    pub allowed: Vec<Finding>,
}

impl Report {
    /// Did the analysis pass?
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }
}

/// Run every lint over the workspace under `config`, applying `policy`.
pub fn analyze(config: &Config, policy: &Policy) -> std::io::Result<Report> {
    let mut findings = Vec::new();

    // Panic-freedom over the dataplane.
    for dir in &config.panic_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            findings.extend(lints::panics::check(&rel(&config.root, &path), &scanned));
        }
    }

    // Determinism over the simulated-time crates.
    for dir in &config.determinism_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            findings.extend(lints::determinism::check(
                &rel(&config.root, &path),
                &scanned,
            ));
        }
    }

    // No prints on the instrumented dataplane.
    for dir in &config.print_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            findings.extend(lints::print::check(&rel(&config.root, &path), &scanned));
        }
    }

    // Lock-order graph across the transport crate.
    let mut edges = Vec::new();
    for dir in &config.lock_dirs {
        for path in rust_files(&config.root.join(dir))? {
            let scanned = lexer::scan(&std::fs::read_to_string(&path)?);
            edges.extend(lints::lockorder::edges(&rel(&config.root, &path), &scanned));
        }
    }
    findings.extend(lints::lockorder::check(&edges, policy));

    // Hygiene: manifests…
    let root_manifest = config.root.join("Cargo.toml");
    findings.extend(lints::hygiene::check_root_manifest(
        &rel(&config.root, &root_manifest),
        &std::fs::read_to_string(&root_manifest)?,
    ));
    for manifest in lints::hygiene::member_manifests(&config.root) {
        findings.extend(lints::hygiene::check_manifest(
            &rel(&config.root, &manifest),
            &std::fs::read_to_string(&manifest)?,
        ));
    }
    // …and the unsafe fence over all workspace sources.
    for path in workspace_sources(&config.root)? {
        let relp = rel(&config.root, &path);
        let allowed = lints::hygiene::unsafe_allowed(&relp);
        if allowed {
            continue;
        }
        let masked = lexer::mask(&std::fs::read_to_string(&path)?);
        findings.extend(lints::hygiene::check_source(&relp, &masked, false));
    }

    Ok(apply_allowlist(findings, policy))
}

/// Split findings into surviving / allowed, and collect stale entries.
pub fn apply_allowlist(findings: Vec<Finding>, policy: &Policy) -> Report {
    let mut used = vec![false; policy.allows.len()];
    let mut surviving = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        let file = f.file.to_string_lossy().replace('\\', "/");
        let hit = policy.allows.iter().enumerate().find(|(_, a)| {
            a.lint == f.lint && file.ends_with(&a.file) && f.code.contains(&a.contains)
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                allowed.push(f);
            }
            None => surviving.push(f),
        }
    }
    let stale_allows = policy
        .allows
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| a.clone())
        .collect();
    Report {
        findings: surviving,
        stale_allows,
        allowed,
    }
}

/// All `.rs` files under `dir`, recursively, sorted.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Every workspace source the unsafe fence covers: `src/`, `tests/`,
/// `benches/`, `examples/` of the root and of each `crates/*` member.
/// The analyzer's own lint fixtures are excluded (they are bad on
/// purpose), as are `shims/` and `target/` (scanned never / exempt).
fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.to_path_buf()];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        roots.extend(entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()));
    }
    for r in roots {
        for sub in ["src", "tests", "benches", "examples"] {
            for f in rust_files(&r.join(sub))? {
                // Exclusion is relative to the scan root so the
                // analyzer still works when pointed AT a fixture tree.
                let p = rel(root, &f).to_string_lossy().replace('\\', "/");
                if p.contains("fixtures/") {
                    continue;
                }
                out.push(f);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}
