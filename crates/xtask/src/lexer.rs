//! A small hand-rolled Rust scanner.
//!
//! The analyzer does not need a full parser: every lint in this crate
//! works from a *masked* view of the source in which comment bodies and
//! the interiors of string/char literals are blanked out (newlines are
//! preserved so offsets and line numbers survive masking). On top of the
//! mask it computes the spans of `#[cfg(test)]`-gated items, so lints can
//! skip test code without understanding the grammar.
//!
//! The scanner understands: line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! count, with `b`/`c` prefixes), byte strings, char literals, and the
//! char-literal/lifetime ambiguity (`'a'` vs `&'a str`).

/// One logical source line of the masked view.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Masked code: comments and literal interiors are spaces.
    pub code: String,
    /// Original source text of the line (for reports).
    pub raw: String,
    /// True when the line is inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// A scanned source file: the masked text plus per-line views.
#[derive(Debug)]
pub struct ScannedFile {
    /// Masked full text (same length as the input, newlines preserved).
    pub masked: String,
    /// Per-line masked/raw views with test-region flags.
    pub lines: Vec<Line>,
}

/// Scan `src` into its masked view and line table.
pub fn scan(src: &str) -> ScannedFile {
    let masked = mask(src);
    let test_spans = test_item_spans(&masked);
    let mut lines = Vec::new();
    let mut offset = 0usize;
    for (i, (raw, code)) in src.lines().zip(masked.lines()).enumerate() {
        let in_test = test_spans
            .iter()
            .any(|&(lo, hi)| offset >= lo && offset < hi);
        lines.push(Line {
            number: i + 1,
            code: code.to_string(),
            raw: raw.to_string(),
            in_test,
        });
        offset += raw.chars().count() + 1; // '\n'
    }
    ScannedFile { masked, lines }
}

/// Is `c` part of an identifier?
pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Blank out comments and literal interiors, preserving length and
/// newlines. Quote characters of string/char literals are kept so that
/// patterns like `.expect(` can never match inside a literal but the
/// structure of the code stays visible.
pub fn mask(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0usize;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and byte/C) strings: r"…", r#"…"#, br"…", cr#"…"#…
        if (c == 'r' || c == 'b' || c == 'c') && !prev_is_ident(&out) {
            let mut j = i;
            if (b[j] == 'b' || b[j] == 'c') && b.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while b.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if b.get(k) == Some(&'"') {
                    // Copy the prefix and opening quote literally.
                    for &p in &b[i..=k] {
                        out.push(p);
                    }
                    i = k + 1;
                    // Blank until `"` followed by `hashes` hashes.
                    while i < b.len() {
                        if b[i] == '"'
                            && b[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            out.push('"');
                            out.extend(std::iter::repeat_n('#', hashes));
                            i += 1 + hashes;
                            break;
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain / byte string.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char_lit = match b.get(i + 1) {
                Some('\\') => true,
                Some(&n) => b.get(i + 2) == Some(&'\'') && n != '\'',
                None => false,
            };
            if is_char_lit {
                out.push('\'');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push(' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else if b[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

fn prev_is_ident(out: &[char]) -> bool {
    out.last().is_some_and(|&c| is_ident(c))
}

/// Char-offset spans (half-open) of items gated behind `#[test]`,
/// `#[cfg(test)]`, or any `cfg` attribute mentioning `test` (e.g.
/// Does a cfg predicate contain the word `test` outside every
/// `not(…)` group? `all(test, not(loom))` → yes; `not(test)` → no.
fn has_test_outside_not(s: &str) -> bool {
    let b: Vec<char> = s.chars().collect();
    // Balanced spans of every `not(…)` group.
    let mut not_spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i + 4 <= b.len() {
        let word_start = i == 0 || !is_ident(b[i - 1]);
        if word_start
            && b.get(i..i + 4)
                .is_some_and(|w| w.iter().collect::<String>() == "not(")
        {
            let mut d = 0usize;
            let mut j = i + 3;
            while j < b.len() {
                match b[j] {
                    '(' => d += 1,
                    ')' => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            not_spans.push((i, j));
            i += 4;
        } else {
            i += 1;
        }
    }
    let mut k = 0usize;
    while k + 4 <= b.len() {
        let is_word = b
            .get(k..k + 4)
            .is_some_and(|w| w.iter().collect::<String>() == "test")
            && (k == 0 || !is_ident(b[k - 1]))
            && b.get(k + 4).is_none_or(|&c| !is_ident(c));
        if is_word && !not_spans.iter().any(|&(a, z)| k > a && k < z) {
            return true;
        }
        k += 1;
    }
    false
}

/// `#[cfg(all(loom, test))]`) — but not `#[cfg(not(test))]`.
fn test_item_spans(masked: &str) -> Vec<(usize, usize)> {
    let b: Vec<char> = masked.chars().collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] != '#' || b.get(i + 1) != Some(&'[') {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the matching `]` of the attribute.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < b.len() {
            match b[j] {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= b.len() {
            break;
        }
        let content: String = b[i + 2..j].iter().collect();
        let is_test_attr = {
            let trimmed = content.trim();
            trimmed == "test" || (trimmed.starts_with("cfg") && has_test_outside_not(trimmed))
        };
        i = j + 1;
        if !is_test_attr {
            continue;
        }
        // Skip whitespace and any further attributes, then take the item:
        // through its matching `}` if a block opens first, else to `;`.
        let mut k = i;
        loop {
            while k < b.len() && b[k].is_whitespace() {
                k += 1;
            }
            if b.get(k) == Some(&'#') && b.get(k + 1) == Some(&'[') {
                let mut d = 0usize;
                while k < b.len() {
                    match b[k] {
                        '[' => d += 1,
                        ']' => {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        let mut end = k;
        let mut brace = 0usize;
        let mut saw_brace = false;
        while end < b.len() {
            match b[end] {
                '{' => {
                    brace += 1;
                    saw_brace = true;
                }
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        end += 1;
                        break;
                    }
                }
                ';' if !saw_brace => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        spans.push((attr_start, end));
        i = end;
    }
    spans
}

/// Does `haystack` contain `word` delimited by non-identifier chars?
pub fn has_word(haystack: &str, word: &str) -> bool {
    let h: Vec<char> = haystack.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if w.is_empty() || h.len() < w.len() {
        return false;
    }
    for start in 0..=h.len() - w.len() {
        if h[start..start + w.len()] == w[..] {
            let before_ok = start == 0 || !is_ident(h[start - 1]);
            let after = start + w.len();
            let after_ok = after == h.len() || !is_ident(h[after]);
            if before_ok && after_ok {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"unwrap() inside\"; // unwrap() comment\nlet y = 1; /* panic! */";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let x = \""));
        assert_eq!(m.chars().count(), src.chars().count());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = r##"let r = r#"panic!("x")"#; let c = 'x'; let l: &'static str = "";"##;
        let m = mask(src);
        assert!(!m.contains("panic"));
        assert!(m.contains("&'static str"), "lifetimes survive: {m}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ unwrap() */ let z = 3;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let z = 3;"));
    }

    #[test]
    fn cfg_test_region_is_flagged() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "code after the test mod is live");
    }

    #[test]
    fn cfg_all_loom_test_region_is_flagged() {
        let src = "#[cfg(all(loom, test))]\nmod loom_models { fn m() {} }\nfn live() {}\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_not_test_is_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = scan(src);
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("cfg(all(loom, test))", "test"));
        assert!(!has_word("cfg(testing)", "test"));
        assert!(!has_word("latest", "test"));
    }

    #[test]
    fn test_outside_not_groups() {
        assert!(has_test_outside_not("cfg(test)"));
        assert!(has_test_outside_not("cfg(all(test, loom))"));
        assert!(has_test_outside_not("cfg(all(test, not(loom)))"));
        assert!(!has_test_outside_not("cfg(not(test))"));
        assert!(!has_test_outside_not("cfg(all(not(test), loom))"));
        assert!(!has_test_outside_not("cfg(attest)"));
    }

    #[test]
    fn cfg_test_with_not_loom_is_a_test_region() {
        let src = "#[cfg(all(test, not(loom)))]\nmod tests { fn f() { x.unwrap(); } }\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
    }
}
