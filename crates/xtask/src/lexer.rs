//! A small hand-rolled Rust scanner.
//!
//! The analyzer does not need a full parser: every lint in this crate
//! works from a *masked* view of the source in which comment bodies and
//! the interiors of string/char literals are blanked out (newlines are
//! preserved so offsets and line numbers survive masking). On top of the
//! mask it computes the spans of `#[cfg(test)]`-gated items, so lints can
//! skip test code without understanding the grammar.
//!
//! The scanner understands: line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! count, with `b`/`c` prefixes), byte strings, char literals, and the
//! char-literal/lifetime ambiguity (`'a'` vs `&'a str`).

/// One logical source line of the masked view.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Masked code: comments and literal interiors are spaces.
    pub code: String,
    /// Original source text of the line (for reports).
    pub raw: String,
    /// True when the line is inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// A scanned source file: the masked text plus per-line views.
#[derive(Debug)]
pub struct ScannedFile {
    /// Masked full text (same length as the input, newlines preserved).
    pub masked: String,
    /// Per-line masked/raw views with test-region flags.
    pub lines: Vec<Line>,
}

/// Scan `src` into its masked view and line table.
pub fn scan(src: &str) -> ScannedFile {
    let masked = mask(src);
    let test_spans = test_item_spans(&masked);
    let mut lines = Vec::new();
    let mut offset = 0usize;
    for (i, (raw, code)) in src.lines().zip(masked.lines()).enumerate() {
        let in_test = test_spans
            .iter()
            .any(|&(lo, hi)| offset >= lo && offset < hi);
        lines.push(Line {
            number: i + 1,
            code: code.to_string(),
            raw: raw.to_string(),
            in_test,
        });
        offset += raw.chars().count() + 1; // '\n'
    }
    ScannedFile { masked, lines }
}

/// Is `c` part of an identifier?
pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Blank out comments and literal interiors, preserving length and
/// newlines. Quote characters of string/char literals are kept so that
/// patterns like `.expect(` can never match inside a literal but the
/// structure of the code stays visible.
pub fn mask(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0usize;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and byte/C) strings: r"…", r#"…"#, br"…", cr#"…"#…
        if (c == 'r' || c == 'b' || c == 'c') && !prev_is_ident(&out) {
            let mut j = i;
            if (b[j] == 'b' || b[j] == 'c') && b.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while b.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if b.get(k) == Some(&'"') {
                    // Copy the prefix and opening quote literally.
                    for &p in &b[i..=k] {
                        out.push(p);
                    }
                    i = k + 1;
                    // Blank until `"` followed by `hashes` hashes.
                    while i < b.len() {
                        if b[i] == '"'
                            && b[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            out.push('"');
                            out.extend(std::iter::repeat_n('#', hashes));
                            i += 1 + hashes;
                            break;
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain / byte string.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char_lit = match b.get(i + 1) {
                Some('\\') => true,
                Some(&n) => b.get(i + 2) == Some(&'\'') && n != '\'',
                None => false,
            };
            if is_char_lit {
                out.push('\'');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push(' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else if b[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

fn prev_is_ident(out: &[char]) -> bool {
    out.last().is_some_and(|&c| is_ident(c))
}

/// Char-offset spans (half-open) of items gated behind `#[test]`,
/// `#[cfg(test)]`, or any `cfg` attribute mentioning `test` (e.g.
/// Does a cfg predicate contain the word `test` outside every
/// `not(…)` group? `all(test, not(loom))` → yes; `not(test)` → no.
fn has_test_outside_not(s: &str) -> bool {
    let b: Vec<char> = s.chars().collect();
    // Balanced spans of every `not(…)` group.
    let mut not_spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i + 4 <= b.len() {
        let word_start = i == 0 || !is_ident(b[i - 1]);
        if word_start
            && b.get(i..i + 4)
                .is_some_and(|w| w.iter().collect::<String>() == "not(")
        {
            let mut d = 0usize;
            let mut j = i + 3;
            while j < b.len() {
                match b[j] {
                    '(' => d += 1,
                    ')' => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            not_spans.push((i, j));
            i += 4;
        } else {
            i += 1;
        }
    }
    let mut k = 0usize;
    while k + 4 <= b.len() {
        let is_word = b
            .get(k..k + 4)
            .is_some_and(|w| w.iter().collect::<String>() == "test")
            && (k == 0 || !is_ident(b[k - 1]))
            && b.get(k + 4).is_none_or(|&c| !is_ident(c));
        if is_word && !not_spans.iter().any(|&(a, z)| k > a && k < z) {
            return true;
        }
        k += 1;
    }
    false
}

/// `#[cfg(all(loom, test))]`) — but not `#[cfg(not(test))]`.
fn test_item_spans(masked: &str) -> Vec<(usize, usize)> {
    let b: Vec<char> = masked.chars().collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] != '#' || b.get(i + 1) != Some(&'[') {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the matching `]` of the attribute.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < b.len() {
            match b[j] {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= b.len() {
            break;
        }
        let content: String = b[i + 2..j].iter().collect();
        let is_test_attr = {
            let trimmed = content.trim();
            trimmed == "test" || (trimmed.starts_with("cfg") && has_test_outside_not(trimmed))
        };
        i = j + 1;
        if !is_test_attr {
            continue;
        }
        // Skip whitespace and any further attributes, then take the item:
        // through its matching `}` if a block opens first, else to `;`.
        let mut k = i;
        loop {
            while k < b.len() && b[k].is_whitespace() {
                k += 1;
            }
            if b.get(k) == Some(&'#') && b.get(k + 1) == Some(&'[') {
                let mut d = 0usize;
                while k < b.len() {
                    match b[k] {
                        '[' => d += 1,
                        ']' => {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        let mut end = k;
        let mut brace = 0usize;
        let mut saw_brace = false;
        while end < b.len() {
            match b[end] {
                '{' => {
                    brace += 1;
                    saw_brace = true;
                }
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        end += 1;
                        break;
                    }
                }
                ';' if !saw_brace => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        spans.push((attr_start, end));
        i = end;
    }
    spans
}

/// One parameter of an extracted function signature.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (with any `mut` stripped); empty for patterns the
    /// extractor does not model.
    pub name: String,
    /// The parameter's type text, verbatim (masked).
    pub ty: String,
}

/// One function definition extracted from a masked file.
///
/// This is not a parse — just enough signature and body structure for
/// the call-graph pass: who the function is (`Type::name` when inside
/// an `impl` block), what it takes (so guard moves and callback
/// parameters can be modeled), what it returns (guard smuggling), and
/// where its body is (a char span into the masked text).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name.
    pub name: String,
    /// `Type::name` inside an `impl Type` block, else `name`.
    pub qualified: String,
    /// Enclosing impl type, if any.
    pub self_type: Option<String>,
    /// Parameters (excluding any `self` receiver).
    pub params: Vec<Param>,
    /// Generic-parameter and `where`-clause text (for `Fn` bounds).
    pub bounds: String,
    /// Return-type text (empty for `()`).
    pub ret: String,
    /// Char span (half-open) of the body in the masked text, if the
    /// item has one (trait declarations do not).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// Extract every function definition in `masked` (see [`FnDef`]).
///
/// Tracks `impl` blocks so methods get qualified names; `impl Trait for
/// Type` attributes methods to `Type`. Nested functions are not
/// descended into (their bodies stay part of the enclosing span).
pub fn functions(masked: &str) -> Vec<FnDef> {
    let b: Vec<char> = masked.chars().collect();
    let mut line_of = Vec::with_capacity(b.len());
    {
        let mut ln = 1usize;
        for &c in &b {
            line_of.push(ln);
            if c == '\n' {
                ln += 1;
            }
        }
    }
    let mut out = Vec::new();
    // (type name, brace depth its block opened at)
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            '{' => {
                depth += 1;
                i += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                while impls.last().is_some_and(|&(_, d)| d > depth) {
                    impls.pop();
                }
                i += 1;
            }
            'i' if word_at(&b, i, "impl") => {
                // Parse the impl header up to its `{`.
                let start = i + 4;
                let mut j = start;
                while j < b.len() && b[j] != '{' && b[j] != ';' {
                    j += 1;
                }
                let header: String = b[start..j].iter().collect();
                if b.get(j) == Some(&'{') {
                    if let Some(ty) = impl_type(&header) {
                        impls.push((ty, depth + 1));
                    }
                    depth += 1;
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            'f' if word_at(&b, i, "fn") => {
                let line = line_of.get(i).copied().unwrap_or(1);
                // `next` is already past the body's closing brace, so
                // nested `impl`/`fn` keywords inside stay attributed to
                // this item and the impl brace accounting stays intact.
                let (def, next) = parse_fn(&b, i, impls.last().map(|(t, _)| t.as_str()), line);
                if let Some(mut def) = def {
                    def.qualified = match &def.self_type {
                        Some(t) => format!("{t}::{}", def.name),
                        None => def.name.clone(),
                    };
                    out.push(def);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    out
}

/// Extract `field name → type head` pairs from every struct definition
/// in `masked` (`extents: Vec<Extent>` → `("extents", "Vec")`). Used to
/// type method receivers like `part.extents.push(…)`.
pub fn struct_fields(masked: &str) -> Vec<(String, String)> {
    let b: Vec<char> = masked.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !word_at(&b, i, "struct") {
            i += 1;
            continue;
        }
        let mut j = i + 6;
        // Name + optional generics, up to `{`, `(`, or `;`.
        while j < b.len() && b[j] != '{' && b[j] != '(' && b[j] != ';' {
            j += 1;
        }
        if b.get(j) != Some(&'{') {
            // Tuple or unit struct: no named fields.
            i = j + 1;
            continue;
        }
        let Some(end) = matching_brace(&b, j) else {
            break;
        };
        let body: String = b[j + 1..end].iter().collect();
        for field in split_top_level(&body, ',') {
            let Some(colon) = field.find(':') else {
                continue;
            };
            let name = field[..colon]
                .split_whitespace()
                .next_back()
                .unwrap_or("")
                .to_string();
            let head = type_head(&field[colon + 1..]);
            if !name.is_empty() && !head.is_empty() {
                out.push((name, head));
            }
        }
        i = end + 1;
    }
    out
}

/// First path segment of a type (`Vec<Extent>` → `Vec`, `&mut T` → `T`).
pub fn type_head(ty: &str) -> String {
    let t = ty
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("'static ")
        .trim();
    // Skip a leading lifetime.
    let t = match t.strip_prefix('\'') {
        Some(rest) => rest
            .split_once(char::is_whitespace)
            .map(|(_, r)| r)
            .unwrap_or(""),
        None => t,
    };
    t.chars().take_while(|&c| is_ident(c)).collect::<String>()
}

/// The last top-level type argument of a generic type, as a head name
/// (`MutexGuard<'a, Inner>` → `Inner`). Empty when there are none.
pub fn last_type_arg(ty: &str) -> String {
    let Some(open) = ty.find('<') else {
        return String::new();
    };
    let Some(close) = ty.rfind('>') else {
        return String::new();
    };
    if close <= open {
        return String::new();
    }
    let inner = &ty[open + 1..close];
    split_top_level(inner, ',')
        .into_iter()
        .map(|s| s.trim().to_string())
        .rfind(|s| !s.starts_with('\''))
        .map(|s| type_head(&s))
        .unwrap_or_default()
}

/// Split `s` on `sep` at zero `()`/`[]`/`{}`/`<>` nesting depth. Angle
/// brackets are tracked `->`-aware so `Fn() -> T` does not desync.
pub fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let b: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut start = 0usize;
    let (mut par, mut ang) = (0isize, 0isize);
    for (k, &c) in b.iter().enumerate() {
        match c {
            '(' | '[' | '{' => par += 1,
            ')' | ']' | '}' => par -= 1,
            '<' => ang += 1,
            '>' if k == 0 || b[k - 1] != '-' => ang -= 1,
            c if c == sep && par == 0 && ang <= 0 => {
                out.push(b[start..k].iter().collect());
                start = k + 1;
            }
            _ => {}
        }
    }
    let tail: String = b[start..].iter().collect();
    if !tail.trim().is_empty() {
        out.push(tail);
    }
    out
}

/// Offset of the `}` matching the `{` at `open` (tracking all three
/// bracket kinds), if balanced.
pub fn matching_brace(b: &[char], open: usize) -> Option<usize> {
    let close = match b.get(open) {
        Some('{') => '}',
        Some('(') => ')',
        Some('[') => ']',
        _ => return None,
    };
    let opener = b[open];
    let mut depth = 0isize;
    for (k, &c) in b.iter().enumerate().skip(open) {
        if c == opener {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn word_at(b: &[char], i: usize, word: &str) -> bool {
    let w: Vec<char> = word.chars().collect();
    if i + w.len() > b.len() || b[i..i + w.len()] != w[..] {
        return false;
    }
    let before_ok = i == 0 || !is_ident(b[i - 1]);
    let after_ok = b.get(i + w.len()).is_none_or(|&c| !is_ident(c));
    before_ok && after_ok
}

/// The implemented type of an impl header (`<T> SlotMap<K, C>` →
/// `SlotMap`, `fmt::Display for Finding` → `Finding`).
fn impl_type(header: &str) -> Option<String> {
    let mut rest = header.trim();
    // Skip leading generic parameters.
    if rest.starts_with('<') {
        let b: Vec<char> = rest.chars().collect();
        let mut depth = 0isize;
        let mut end = 0usize;
        for (k, &c) in b.iter().enumerate() {
            match c {
                '<' => depth += 1,
                '>' if k == 0 || b[k - 1] != '-' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest.get(end..).unwrap_or("").trim();
    }
    // `Trait for Type` → take the Type side; strip any where clause.
    let target = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    let target = target.split(" where ").next().unwrap_or(target).trim();
    // Last path segment before generics: `lru::LruCache<K>` → `LruCache`.
    let no_generics = target.split('<').next().unwrap_or(target);
    let seg = no_generics.rsplit("::").next().unwrap_or(no_generics);
    let name: String = seg.trim().chars().take_while(|&c| is_ident(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// Parse one `fn` starting at offset `i` (the `fn` keyword). Returns
/// the definition (if well-formed) and the offset to resume scanning at
/// (past the body when there is one).
fn parse_fn(b: &[char], i: usize, self_type: Option<&str>, line: usize) -> (Option<FnDef>, usize) {
    let mut j = i + 2;
    while j < b.len() && b[j].is_whitespace() {
        j += 1;
    }
    let name_start = j;
    while j < b.len() && is_ident(b[j]) {
        j += 1;
    }
    let name: String = b[name_start..j].iter().collect();
    if name.is_empty() {
        return (None, j);
    }
    let mut bounds = String::new();
    // Generic parameters (angle-balanced, `->`-aware).
    if b.get(j) == Some(&'<') {
        let mut depth = 0isize;
        let start = j;
        while j < b.len() {
            match b[j] {
                '<' => depth += 1,
                '>' if j == 0 || b[j - 1] != '-' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        bounds.push_str(&b[start..j].iter().collect::<String>());
    }
    while j < b.len() && b[j].is_whitespace() {
        j += 1;
    }
    if b.get(j) != Some(&'(') {
        return (None, j);
    }
    let Some(close) = matching_brace(b, j) else {
        return (None, j + 1);
    };
    let params_text: String = b[j + 1..close].iter().collect();
    let params = split_top_level(&params_text, ',')
        .into_iter()
        .filter_map(|p| {
            let p = p.trim();
            if p == "self" || p.ends_with("self") && !p.contains(':') {
                return None;
            }
            let (name_part, ty) = p.split_once(':')?;
            let name = name_part
                .split_whitespace()
                .next_back()
                .unwrap_or("")
                .to_string();
            Some(Param {
                name,
                ty: ty.trim().to_string(),
            })
        })
        .collect();
    // Return type and where clause, up to `{` or `;`.
    let mut k = close + 1;
    while k < b.len() && b[k] != '{' && b[k] != ';' {
        k += 1;
    }
    let sig_tail: String = b[close + 1..k].iter().collect();
    let (ret, where_clause) = match sig_tail.find(" where ") {
        Some(p) => (sig_tail[..p].to_string(), sig_tail[p..].to_string()),
        None => (sig_tail.clone(), String::new()),
    };
    bounds.push_str(&where_clause);
    let ret = ret.trim().trim_start_matches("->").trim().to_string();
    let (body, next) = if b.get(k) == Some(&'{') {
        match matching_brace(b, k) {
            Some(end) => (Some((k + 1, end)), end + 1),
            None => (None, k + 1),
        }
    } else {
        (None, k + 1)
    };
    (
        Some(FnDef {
            qualified: String::new(),
            name,
            self_type: self_type.map(str::to_string),
            params,
            bounds,
            ret,
            body,
            line,
        }),
        next,
    )
}

/// Does `haystack` contain `word` delimited by non-identifier chars?
pub fn has_word(haystack: &str, word: &str) -> bool {
    let h: Vec<char> = haystack.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if w.is_empty() || h.len() < w.len() {
        return false;
    }
    for start in 0..=h.len() - w.len() {
        if h[start..start + w.len()] == w[..] {
            let before_ok = start == 0 || !is_ident(h[start - 1]);
            let after = start + w.len();
            let after_ok = after == h.len() || !is_ident(h[after]);
            if before_ok && after_ok {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"unwrap() inside\"; // unwrap() comment\nlet y = 1; /* panic! */";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let x = \""));
        assert_eq!(m.chars().count(), src.chars().count());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = r##"let r = r#"panic!("x")"#; let c = 'x'; let l: &'static str = "";"##;
        let m = mask(src);
        assert!(!m.contains("panic"));
        assert!(m.contains("&'static str"), "lifetimes survive: {m}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ unwrap() */ let z = 3;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let z = 3;"));
    }

    #[test]
    fn cfg_test_region_is_flagged() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "code after the test mod is live");
    }

    #[test]
    fn cfg_all_loom_test_region_is_flagged() {
        let src = "#[cfg(all(loom, test))]\nmod loom_models { fn m() {} }\nfn live() {}\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_not_test_is_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = scan(src);
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("cfg(all(loom, test))", "test"));
        assert!(!has_word("cfg(testing)", "test"));
        assert!(!has_word("latest", "test"));
    }

    #[test]
    fn test_outside_not_groups() {
        assert!(has_test_outside_not("cfg(test)"));
        assert!(has_test_outside_not("cfg(all(test, loom))"));
        assert!(has_test_outside_not("cfg(all(test, not(loom)))"));
        assert!(!has_test_outside_not("cfg(not(test))"));
        assert!(!has_test_outside_not("cfg(all(not(test), loom))"));
        assert!(!has_test_outside_not("cfg(attest)"));
    }

    #[test]
    fn cfg_test_with_not_loom_is_a_test_region() {
        let src = "#[cfg(all(test, not(loom)))]\nmod tests { fn f() { x.unwrap(); } }\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
    }

    #[test]
    fn cfg_test_on_impl_block_covers_every_method() {
        let src = "struct S;\n#[cfg(test)]\nimpl S {\n    fn helper(&self) { x.unwrap(); }\n    fn other(&self) {}\n}\nimpl S { fn live(&self) {} }\n";
        let f = scan(src);
        assert!(f.lines[3].in_test, "method inside #[cfg(test)] impl");
        assert!(f.lines[4].in_test, "second method too");
        assert!(!f.lines[6].in_test, "the next impl block is live");
    }

    #[test]
    fn raw_string_braces_do_not_derail_function_extraction() {
        let src = "fn f() { let s = r#\"fn ghost() { }\"#; }\nfn real() { g(); }\n";
        let defs = functions(&mask(src));
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["f", "real"], "no phantom fn from the raw string");
        let real = &defs[1];
        assert_eq!(real.line, 2);
        assert!(real.body.is_some());
    }

    #[test]
    fn char_literal_close_brace_does_not_derail_extraction() {
        let src = "fn f() { let c = '}'; let o = '{'; }\nimpl S { fn m(&self) {} }\n";
        let defs = functions(&mask(src));
        assert_eq!(defs.len(), 2, "{defs:?}");
        assert_eq!(
            defs[1].qualified, "S::m",
            "impl attribution survives the literals"
        );
    }

    #[test]
    fn lifetimes_survive_extraction_where_char_literals_are_masked() {
        let src = "fn f<'a>(x: &'a str, c: char) -> &'a str { let q = 'a'; x }\n";
        let defs = functions(&mask(src));
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].params.len(), 2);
        assert_eq!(defs[0].params[0].ty, "&'a str", "lifetime kept in the type");
        assert!(defs[0].ret.contains("&'a str"));
    }

    #[test]
    fn nested_fn_and_impl_keep_outer_attribution() {
        let src = "impl S {\n    fn outer(&self) {\n        fn inner() {}\n    }\n    fn after(&self) {}\n}\n";
        let defs = functions(&mask(src));
        let quals: Vec<&str> = defs.iter().map(|d| d.qualified.as_str()).collect();
        assert!(quals.contains(&"S::outer"));
        assert!(
            quals.contains(&"S::after"),
            "the impl stack survives a nested fn: {quals:?}"
        );
    }

    #[test]
    fn struct_fields_extracts_names_and_types() {
        let src =
            "pub struct Merger {\n    qps: Mutex<Vec<QueuePair>>,\n    pd: ProtectionDomain,\n}\n";
        let fields = struct_fields(&mask(src));
        assert!(fields
            .iter()
            .any(|(n, t)| n == "qps" && t.contains("Mutex")));
        assert!(fields
            .iter()
            .any(|(n, t)| n == "pd" && t == "ProtectionDomain"));
    }
}
