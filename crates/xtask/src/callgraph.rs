//! Workspace-wide call graph with held-lock-set propagation.
//!
//! The per-function lock scanner (PR 2) could not see edges through
//! calls: a callback locking `stats` while `SlotMap::with_conn` holds
//! the slot's `conn` lock had to be hand-encoded in the documented
//! order. This module closes that gap:
//!
//! 1. **Extraction** — every function ([`crate::lexer::functions`]) and
//!    every closure literal becomes a node. One linear walk per body
//!    collects, with a binding-aware local guard simulation, the lock
//!    acquisitions, call sites, blocking operations, and closure
//!    definitions, each annotated with the locally held guard set.
//! 2. **Resolution** — call sites resolve to candidate nodes:
//!    `Type::name(…)` through `impl Type`, `self.name(…)` through the
//!    enclosing impl, `self.field.name(…)` through a struct-field type
//!    map, bare `name(…)` to free functions, and otherwise by unique
//!    name — except names that collide with std prelude methods
//!    (`push`, `get`, …), which resolve only through a typed receiver.
//!    Ambiguity yields the union of candidates (conservative).
//! 3. **Fixpoint** — ambient held sets `H(F)` ("locks that may be held
//!    when `F` runs") propagate caller → callee until stable, with a
//!    provenance chain per lock for diagnostics. Closures inherit the
//!    held set at their definition site plus, when passed to a function
//!    that invokes a callable parameter, that function's
//!    `callback_held` set — this is what rediscovers the `conn` →
//!    `stats` edge with zero policy hints.
//!
//! Guard *moves* are modeled so the hybrid store's guard-threading
//! (`append` → `spill_trip` → `flush_one`, and `wait(&cv, g)`) does not
//! produce false self-edges or false blocking reports: a bare live
//! guard identifier passed by value to a `MutexGuard`-typed parameter
//! leaves the caller's held set and enters the callee as an entry
//! guard; `drop(g)` kills a binding; a call that moved a guard in and
//! returns one rebinds it; `g = g2;` renames; `wait(&cv, g)` releases
//! `g` for the duration of the blocking wait.

use crate::lexer::{self, FnDef, ScannedFile};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Method names that collide with std prelude/collection methods: a
/// bare `.name(…)` with an untyped receiver is never resolved through
/// these (a `Vec::push` must not link to our `DispatchQueue::push`).
#[rustfmt::skip]
const STD_METHODS: &[&str] = &[
    "push", "pop", "insert", "get", "get_mut", "remove", "len", "is_empty", "clear", "contains",
    "contains_key", "clone", "next", "iter", "iter_mut", "into_iter", "write", "read", "flush",
    "send", "recv", "take", "drain", "extend", "entry", "keys", "values", "map", "and_then",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok_or", "ok_or_else", "join", "lock",
    "wait", "new", "default", "fmt", "drop", "eq", "cmp", "hash", "from", "into", "as_ref",
    "as_mut", "to_string", "to_vec", "push_back", "push_front", "pop_front", "pop_back",
    "split_off", "retain", "position", "find", "any", "all", "min", "max", "abs", "swap",
    "replace", "get_or_insert_with", "sort", "sort_by", "sort_by_key", "dedup", "rev", "chain",
    "zip", "filter", "collect", "count", "sum", "last", "first", "expect", "unwrap", "starts_with",
    "ends_with", "trim", "split", "parse", "clamp", "notify_all", "notify_one", "load", "store",
    "fetch_add", "compare_exchange", "spawn", "accept", "connect", "shutdown", "set_nodelay",
    "flat_map", "copied", "cloned", "cursor", "resize", "truncate", "append", "seek", "index",
];

/// Std type-path heads whose associated calls are never resolved into
/// the lint scope.
const STD_TYPES: &[&str] = &[
    "Vec",
    "String",
    "Box",
    "Arc",
    "Rc",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "VecDeque",
    "Option",
    "Result",
    "Some",
    "Ok",
    "Err",
    "io",
    "fs",
    "std",
    "thread",
    "mem",
    "ptr",
    "fmt",
    "Instant",
    "Duration",
    "SystemTime",
    "SocketAddr",
    "TcpStream",
    "TcpListener",
    "Ordering",
    "AtomicBool",
    "AtomicU64",
    "AtomicUsize",
    "Mutex",
    "MutexGuard",
    "Condvar",
    "PathBuf",
    "Path",
    "File",
    "OpenOptions",
    "SeekFrom",
    "Cow",
    "Cell",
    "RefCell",
    "Iterator",
    "IntoIterator",
    "Default",
    "Clone",
    "Copy",
    "Drop",
    "From",
    "Into",
    "TryFrom",
    "char",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "isize",
    "f32",
    "f64",
    "str",
    "slice",
    "array",
];

/// Blocking operations: `(pattern, human label)`. A pattern starting
/// with `.` matches as a method call; otherwise it must sit on an
/// identifier boundary. The interprocedural pass makes a long list
/// unnecessary — `drain_to_remote`-style wrappers are reached through
/// the call graph down to these primitives.
const BLOCKING: &[(&str, &str)] = &[
    ("thread::sleep", "thread sleep"),
    ("File::open", "file open"),
    ("File::create", "file create"),
    ("OpenOptions::new", "file open"),
    ("fs::write", "file write"),
    ("fs::read", "file read"),
    ("fs::remove_file", "file remove"),
    ("fs::remove_dir", "file remove"),
    ("fs::create_dir", "dir create"),
    ("fs::rename", "file rename"),
    ("fs::copy", "file copy"),
    ("fs::metadata", "fs metadata"),
    ("TcpStream::connect", "socket connect"),
    (".write_all(", "stream write"),
    (".read_exact(", "stream read"),
    (".read_to_end(", "stream read"),
    (".flush(", "stream flush"),
    (".sync_all(", "file sync"),
    (".sync_data(", "file sync"),
    (".seek(", "file seek"),
    (".recv()", "channel receive"),
    (".recv_timeout(", "channel receive"),
    (".accept(", "socket accept"),
];

/// One `A → B` acquisition edge with its witness site and, for edges
/// that cross function boundaries, the call chain that carries `A` to
/// the acquisition of `B`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired while holding `held`.
    pub acquired: String,
    /// Witness file.
    pub file: PathBuf,
    /// Witness line (1-based).
    pub line: usize,
    /// Call-chain frames (`Fn (file:line)`) from where `held` was
    /// acquired to the function acquiring `acquired`; empty for edges
    /// local to one function.
    pub chain: Vec<String>,
}

/// One blocking operation that may execute while locks are held.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// What blocks (`thread sleep`, `stream write`, …).
    pub what: &'static str,
    /// The pattern that matched, for allowlist `contains` matching.
    pub code: String,
    /// Witness file.
    pub file: PathBuf,
    /// Witness line.
    pub line: usize,
    /// Locks that may be held here, each with its provenance chain
    /// (empty chain = held locally in this function).
    pub held: Vec<(String, Vec<String>)>,
    /// Qualified name of the function containing the site.
    pub in_fn: String,
}

/// One blocking operation transitively reachable from a function,
/// regardless of locks held — the raw material of the
/// nonblocking-context lint, which bans blocking from event-loop code
/// outright rather than only under a lock.
#[derive(Debug, Clone)]
pub struct BlockingReach {
    /// Qualified name of the function the reachability is rooted at.
    pub from_fn: String,
    /// File defining `from_fn` (nonblocking contexts are per-file).
    pub from_file: PathBuf,
    /// What blocks (`thread sleep`, `stream write`, …).
    pub what: &'static str,
    /// The pattern that matched, for allowlist `contains` matching.
    pub code: String,
    /// File of the blocking site itself.
    pub file: PathBuf,
    /// Line of the blocking site.
    pub line: usize,
    /// Call-chain frames from `from_fn` down to the site; empty when
    /// the site sits in `from_fn`'s own body.
    pub chain: Vec<String>,
}

/// The result of the interprocedural analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All lock-nesting edges, local and propagated.
    pub edges: Vec<Edge>,
    /// Blocking operations with a nonempty may-held set.
    pub blocking: Vec<BlockingSite>,
    /// Blocking operations each function may reach on its own thread
    /// (held or not); closures handed to `spawn` run elsewhere and are
    /// excluded.
    pub reachable_blocking: Vec<BlockingReach>,
    /// `fn qualified name → lock → chain`: every lock a function may
    /// acquire directly or transitively, with a witness call chain.
    pub transitive_acquires: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    /// `fn qualified name → lock → chain`: locks held at the point a
    /// function invokes one of its callable parameters.
    pub callback_held: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

// ---------------------------------------------------------------------
// Per-function body summaries (computed once, reused at fixpoint).

#[derive(Debug, Clone)]
struct LocalHeld {
    lock: String,
    line: usize,
}

#[derive(Debug)]
struct Acq {
    name: String,
    line: usize,
    held_local: Vec<LocalHeld>,
}

#[derive(Debug)]
struct CallSite {
    candidates: Vec<usize>,
    line: usize,
    held_local: Vec<LocalHeld>,
    /// Lock names moved into the callee at this site (by-value guards).
    moved: Vec<String>,
    /// True when the callee text names a callable parameter of the
    /// enclosing function (a callback invocation).
    invokes_param: bool,
    /// Bare-identifier arguments that are callable parameters of the
    /// *caller* (callback forwarding).
    forwards_callback: bool,
    /// Closure nodes passed as arguments at this site.
    closures: Vec<usize>,
    /// Suppress held-set inheritance into the closures (thread spawn).
    detached: bool,
}

#[derive(Debug)]
struct BlockOp {
    what: &'static str,
    code: String,
    line: usize,
    held_local: Vec<LocalHeld>,
    /// Guard released for the duration of the wait, if any.
    waived: Option<String>,
}

#[derive(Debug)]
struct ClosureDef {
    node: usize,
    line: usize,
    held_local: Vec<LocalHeld>,
}

#[derive(Debug, Default)]
struct Summary {
    acquisitions: Vec<Acq>,
    calls: Vec<CallSite>,
    blocking: Vec<BlockOp>,
    closures: Vec<ClosureDef>,
}

#[derive(Debug)]
struct Node {
    qualified: String,
    file: PathBuf,
    /// Names of `Fn`-bound parameters (callback slots).
    callable_params: Vec<String>,
    /// Guard-typed parameters: (binding name, lock name).
    guard_params: Vec<(String, String)>,
    /// Parameter names in order (for positional guard-move matching).
    /// Indices (into the parameter list) that are guard-typed.
    guard_param_idx: Vec<usize>,
    returns_guard: bool,
    summary: Summary,
}

/// Chain map: lock name → provenance frames.
type Held = BTreeMap<String, Vec<String>>;

/// Run the interprocedural analysis over `files` (relative path +
/// scanned contents). `primitive_files` are path suffixes of the sync
/// primitive layer (its `lock`/`wait` helpers), which is excluded from
/// blocking analysis.
pub fn analyze(files: &[(PathBuf, ScannedFile)], primitive_files: &[String]) -> Analysis {
    let mut nodes: Vec<Node> = Vec::new();
    let mut field_types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // (file idx, FnDef) pending body analysis.
    let mut defs: Vec<(usize, FnDef)> = Vec::new();

    for (fi, (_path, scanned)) in files.iter().enumerate() {
        for (name, head) in lexer::struct_fields(&scanned.masked) {
            field_types.entry(name).or_default().insert(head);
        }
        for def in lexer::functions(&scanned.masked) {
            // Skip functions defined inside test regions.
            let test = scanned
                .lines
                .get(def.line.saturating_sub(1))
                .is_some_and(|l| l.in_test);
            if !test {
                defs.push((fi, def));
            }
        }
    }

    // Node table: one per function; closures are appended during body
    // analysis. Build the resolution index over the named functions.
    for (fi, def) in &defs {
        nodes.push(make_node(&files[*fi].0, def));
    }
    let mut by_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut by_free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, (_, def)) in defs.iter().enumerate() {
        match &def.self_type {
            Some(t) => by_method
                .entry((t.clone(), def.name.clone()))
                .or_default()
                .push(idx),
            None => by_free.entry(def.name.clone()).or_default().push(idx),
        }
        by_name.entry(def.name.clone()).or_default().push(idx);
    }
    let index = Index {
        by_method,
        by_free,
        by_name,
        field_types,
    };

    // Body analysis: walk every named function; closures found inside
    // are pushed as new nodes and queued for their own walk.
    // (node index, file index, body span, entry-held guards)
    type WalkItem = (usize, usize, (usize, usize), Vec<(String, String)>);
    let mut queue: Vec<WalkItem> = Vec::new();
    for (idx, (fi, def)) in defs.iter().enumerate() {
        if let Some(span) = def.body {
            let entry_guards = nodes[idx].guard_params.clone();
            queue.push((idx, *fi, span, entry_guards));
        }
    }
    let mut qi = 0usize;
    while qi < queue.len() {
        let (node, fi, span, entry_guards) = queue[qi].clone();
        qi += 1;
        let summary = walk_body(
            node,
            &files[fi].1,
            &files[fi].0,
            span,
            &entry_guards,
            &index,
            &mut nodes,
            &mut |closure_node, closure_span| {
                queue.push((closure_node, fi, closure_span, Vec::new()));
            },
        );
        nodes[node].summary = summary;
    }

    fixpoint(&mut nodes, primitive_files)
}

struct Index {
    by_method: BTreeMap<(String, String), Vec<usize>>,
    by_free: BTreeMap<String, Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
    field_types: BTreeMap<String, BTreeSet<String>>,
}

fn make_node(file: &Path, def: &FnDef) -> Node {
    let callable_params: Vec<String> = def
        .params
        .iter()
        .filter(|p| is_callable(&p.ty, &def.bounds))
        .map(|p| p.name.clone())
        .collect();
    let mut guard_params = Vec::new();
    let mut guard_param_idx = Vec::new();
    for (i, p) in def.params.iter().enumerate() {
        if p.ty.contains("MutexGuard") {
            let lock = lexer::last_type_arg(&p.ty).to_lowercase();
            guard_params.push((p.name.clone(), lock));
            guard_param_idx.push(i);
        }
    }
    Node {
        qualified: def.qualified.clone(),
        file: file.to_path_buf(),
        callable_params,
        guard_params,
        guard_param_idx,
        returns_guard: def.ret.contains("MutexGuard"),
        summary: Summary::default(),
    }
}

/// Is a parameter type callable — `impl Fn…`, a bare `Fn…` bound, or a
/// generic whose bound mentions `Fn`?
fn is_callable(ty: &str, bounds: &str) -> bool {
    let t = ty.trim();
    for fnk in ["FnOnce", "FnMut", "Fn("] {
        if t.contains(fnk) {
            return true;
        }
    }
    // `f: F` with `F: FnOnce(…)` in the generics or where clause.
    let head = lexer::type_head(t);
    if head.is_empty() || head != t.trim_start_matches('&').trim() {
        return false;
    }
    for seg in lexer::split_top_level(bounds.trim_start_matches('<').trim_end_matches('>'), ',') {
        let seg = seg.trim().trim_start_matches("where ").trim();
        if let Some((name, bound)) = seg.split_once(':') {
            if name.trim() == head && ["FnOnce", "FnMut", "Fn("].iter().any(|f| bound.contains(f)) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Body walk: binding-aware local guard simulation + event collection.

#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    binding: Option<String>,
    depth: usize,
    temporary: bool,
    line: usize,
}

#[allow(clippy::too_many_arguments)]
fn walk_body(
    node: usize,
    scanned: &ScannedFile,
    file: &Path,
    span: (usize, usize),
    entry_guards: &[(String, String)],
    index: &Index,
    nodes: &mut Vec<Node>,
    enqueue_closure: &mut dyn FnMut(usize, (usize, usize)),
) -> Summary {
    let chars: Vec<char> = scanned.masked.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len());
    {
        let mut ln = 1usize;
        for &c in &chars {
            line_of.push(ln);
            if c == '\n' {
                ln += 1;
            }
        }
    }
    let line_at = |off: usize| line_of.get(off).copied().unwrap_or(1);
    let in_test = |off: usize| {
        scanned
            .lines
            .get(line_at(off).saturating_sub(1))
            .is_some_and(|l| l.in_test)
    };

    // Closure literals in this body become their own nodes; the walk
    // skips their spans.
    let closure_spans = find_closures(&chars, span);
    let mut closure_nodes: Vec<(usize, (usize, usize))> = Vec::new();
    for &(cs, body_start, ce) in &closure_spans {
        let qualified = format!("{}::{{closure@{}}}", nodes[node].qualified, line_at(cs));
        let idx = nodes.len();
        nodes.push(Node {
            qualified,
            file: file.to_path_buf(),
            callable_params: Vec::new(),
            guard_params: Vec::new(),
            guard_param_idx: Vec::new(),
            returns_guard: false,
            summary: Summary::default(),
        });
        // The closure's own walk covers only its body — re-walking the
        // `move |…|` header would re-detect the closure forever.
        enqueue_closure(idx, (body_start, ce));
        closure_nodes.push((idx, (cs, ce)));
    }
    let closure_at = |off: usize| {
        closure_nodes
            .iter()
            .find(|(_, (s, _))| *s == off)
            .map(|&(idx, _)| idx)
    };
    let skip_span = |off: usize| {
        closure_spans
            .iter()
            .find(|&&(s, _, _)| s == off)
            .map(|&(_, _, e)| e)
    };

    let mut summary = Summary::default();
    let mut guards: Vec<Guard> = entry_guards
        .iter()
        .map(|(binding, lock)| Guard {
            lock: lock.clone(),
            binding: Some(binding.clone()),
            depth: 0,
            temporary: false,
            line: line_at(span.0),
        })
        .collect();
    let held_snapshot = |guards: &[Guard]| -> Vec<LocalHeld> {
        guards
            .iter()
            .map(|g| LocalHeld {
                lock: g.lock.clone(),
                line: g.line,
            })
            .collect()
    };
    let my_callables = nodes[node].callable_params.clone();

    let mut depth = 0usize;
    let mut i = span.0;
    while i < span.1 {
        if let Some(end) = skip_span(i) {
            // Closure definition: record the held set at its site —
            // unless an already-recorded call site claimed it as an
            // argument (the call processing owns its held set then, and
            // a `spawn` argument must inherit nothing at all).
            if let Some(cn) = closure_at(i) {
                let claimed = summary.calls.iter().any(|c| c.closures.contains(&cn));
                if !claimed {
                    summary.closures.push(ClosureDef {
                        node: cn,
                        line: line_at(i),
                        held_local: held_snapshot(&guards),
                    });
                }
            }
            i = end;
            continue;
        }
        let c = chars[i];
        match c {
            '{' => {
                depth += 1;
                i += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth && !(g.temporary && g.depth == depth));
                i += 1;
            }
            ';' => {
                // `a = b;` guard rename before temporaries die.
                apply_rename(&chars, span.0, i, &mut guards);
                guards.retain(|g| !(g.temporary && depth <= g.depth));
                i += 1;
            }
            'l' if is_lock_call(&chars, i) => {
                let (name, end) = lock_name(&chars, i);
                if let Some(name) = name {
                    if !in_test(i) {
                        summary.acquisitions.push(Acq {
                            name: name.clone(),
                            line: line_at(i),
                            held_local: held_snapshot(&guards),
                        });
                    }
                    let binding = stmt_binding(&chars, span.0, i);
                    guards.retain(|g| {
                        g.binding.is_none() || g.binding != binding || binding.is_none()
                    });
                    guards.push(Guard {
                        lock: name,
                        binding: binding.clone(),
                        depth,
                        temporary: binding.is_none(),
                        line: line_at(i),
                    });
                }
                i = end;
            }
            _ if c == '(' && i > 0 && lexer::is_ident(chars[i - 1]) => {
                // A call site. Macro invocations (`name!(`) are skipped.
                let callee = callee_text(&chars, i);
                if callee.is_empty() || chars[i - 1] == '!' {
                    i += 1;
                    continue;
                }
                let args_end = lexer::matching_brace(&chars, i).unwrap_or(i);
                let args = call_args(&chars, i, args_end);
                if in_test(i) {
                    i += 1;
                    continue;
                }
                handle_call(
                    &callee,
                    &args,
                    i,
                    line_at(i),
                    depth,
                    &chars,
                    span.0,
                    &mut guards,
                    &my_callables,
                    index,
                    nodes,
                    node,
                    &closure_nodes,
                    &mut summary,
                    &held_snapshot,
                );
                // Keep scanning inside the argument list (nested calls,
                // nested lock temporaries).
                i += 1;
            }
            _ => {
                if !in_test(i) {
                    if let Some((what, code)) = blocking_at(&chars, i, scanned, line_at(i)) {
                        summary.blocking.push(BlockOp {
                            what,
                            code,
                            line: line_at(i),
                            held_local: held_snapshot(&guards),
                            waived: None,
                        });
                        // Advance past the pattern head so `fs::write`
                        // does not re-fire at `write`.
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    summary
}

/// Handle one call site: classify, resolve, model guard moves/waits.
#[allow(clippy::too_many_arguments)]
fn handle_call(
    callee: &str,
    args: &[(String, usize)],
    off: usize,
    line: usize,
    depth: usize,
    chars: &[char],
    body_start: usize,
    guards: &mut Vec<Guard>,
    my_callables: &[String],
    index: &Index,
    nodes: &[Node],
    node: usize,
    closure_nodes: &[(usize, (usize, usize))],
    summary: &mut Summary,
    held_snapshot: &dyn Fn(&[Guard]) -> Vec<LocalHeld>,
) {
    let bare_args: Vec<(usize, String)> = args
        .iter()
        .enumerate()
        .filter(|(_, (a, _))| {
            !a.is_empty()
                && a.chars().all(lexer::is_ident)
                && !a.chars().next().is_some_and(|c| c.is_uppercase())
        })
        .map(|(i, (a, _))| (i, a.clone()))
        .collect();

    // `drop(g)`: kill the binding, no event.
    if callee == "drop" {
        if let Some((_, name)) = bare_args.first() {
            guards.retain(|g| g.binding.as_deref() != Some(name));
        }
        return;
    }

    // `wait(&cv, g)` / `cv.wait(g)`: the guard is released for the
    // duration of the blocking wait and reacquired on wake.
    if callee == "wait" || callee.ends_with(".wait") || callee.ends_with("::wait") {
        let mut waived = None;
        for (_, name) in &bare_args {
            if let Some(pos) = guards
                .iter()
                .position(|g| g.binding.as_deref() == Some(name.as_str()))
            {
                let g = guards.remove(pos);
                waived = Some(g.lock.clone());
                // Rebound by the enclosing `g = wait(…)` statement.
                if let Some(binding) = stmt_binding(chars, body_start, off) {
                    guards.push(Guard {
                        lock: g.lock,
                        binding: Some(binding),
                        depth,
                        temporary: false,
                        line: g.line,
                    });
                }
            }
        }
        summary.blocking.push(BlockOp {
            what: "condvar wait",
            code: format!("{callee}("),
            line,
            held_local: held_snapshot(guards),
            waived,
        });
        return;
    }

    let my_idx = node;
    let invokes_param = my_callables.iter().any(|p| p == callee);
    let forwards_callback = bare_args
        .iter()
        .any(|(_, a)| my_callables.iter().any(|p| p == a));

    let candidates = if invokes_param {
        Vec::new()
    } else {
        resolve(callee, nodes, my_idx, index)
    };

    // Guard moves: a bare live-guard identifier at a position the
    // callee types as `MutexGuard` transfers ownership.
    let mut moved = Vec::new();
    if !candidates.is_empty() {
        for (pos, name) in &bare_args {
            let takes_guard = candidates
                .iter()
                .any(|&c| nodes[c].guard_param_idx.contains(pos));
            if !takes_guard {
                continue;
            }
            if let Some(gpos) = guards
                .iter()
                .position(|g| g.binding.as_deref() == Some(name.as_str()))
            {
                let g = guards.remove(gpos);
                moved.push(g.lock.clone());
            }
        }
        // A call that moved a guard in and returns one hands it back to
        // the statement's binding (`let (g2, res) = self.spill_trip(g)`).
        if !moved.is_empty() && candidates.iter().any(|&c| nodes[c].returns_guard) {
            if let Some(binding) = stmt_binding(chars, body_start, off) {
                guards.push(Guard {
                    lock: moved[0].clone(),
                    binding: Some(binding),
                    depth,
                    temporary: false,
                    line,
                });
            }
        }
    }

    // Closure arguments defined at this site.
    let closures: Vec<usize> = args
        .iter()
        .filter_map(|(text, arg_off)| {
            let t = text.trim_start();
            if t.starts_with('|') || t.starts_with("move") {
                closure_nodes
                    .iter()
                    .find(|(_, (s, e))| *arg_off <= *s && *s < *e && *s < arg_off + text.len() + 8)
                    .map(|&(idx, _)| idx)
            } else {
                None
            }
        })
        .collect();
    let detached = callee.ends_with("spawn");

    summary.calls.push(CallSite {
        candidates,
        line,
        held_local: held_snapshot(guards),
        moved,
        invokes_param,
        forwards_callback,
        closures,
        detached,
    });
}

/// Resolve a call-site text to candidate node indices.
fn resolve(callee: &str, nodes: &[Node], caller: usize, index: &Index) -> Vec<usize> {
    let segs: Vec<&str> = callee
        .split(['.'])
        .flat_map(|s| s.split("::"))
        .filter(|s| !s.is_empty())
        .collect();
    let Some(&name) = segs.last() else {
        return Vec::new();
    };
    if name.chars().next().is_some_and(|c| c.is_uppercase()) {
        // Tuple-struct / enum-variant constructor.
        return Vec::new();
    }
    let fallback = |name: &str| -> Vec<usize> {
        if STD_METHODS.contains(&name) {
            return Vec::new();
        }
        index.by_name.get(name).cloned().unwrap_or_default()
    };
    if callee.contains("::") && !callee.contains('.') {
        // `Type::name(` — resolve through the impl index.
        let ty = segs[segs.len().saturating_sub(2)];
        if STD_TYPES.contains(&ty) {
            return Vec::new();
        }
        return index
            .by_method
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_else(|| fallback(name));
    }
    if !callee.contains('.') {
        // Bare `name(` — a free function.
        return index.by_free.get(name).cloned().unwrap_or_default();
    }
    // Method call. Type the receiver if we can.
    let recv_segs = &segs[..segs.len() - 1];
    if recv_segs == ["self"] {
        if let Some(ty) = nodes[caller]
            .qualified
            .split("::")
            .next()
            .filter(|t| t.chars().next().is_some_and(|c| c.is_uppercase()))
        {
            if let Some(c) = index.by_method.get(&(ty.to_string(), name.to_string())) {
                return c.clone();
            }
        }
        return fallback(name);
    }
    if let Some(&field) = recv_segs.last() {
        if let Some(heads) = index.field_types.get(field) {
            if heads.len() == 1 {
                let head = heads.iter().next().cloned().unwrap_or_default();
                // A known field of a known (std) type: definitively not
                // ours — do not fall back to name matching.
                if STD_TYPES.contains(&head.as_str()) {
                    return Vec::new();
                }
                if let Some(c) = index.by_method.get(&(head.clone(), name.to_string())) {
                    return c.clone();
                }
                return Vec::new();
            }
        }
    }
    fallback(name)
}

// ---------------------------------------------------------------------
// Fixpoint: ambient held sets and callback sets.

fn fixpoint(nodes: &mut [Node], primitive_files: &[String]) -> Analysis {
    let n = nodes.len();
    let mut ambient: Vec<Held> = vec![Held::new(); n];
    let mut callback: Vec<Held> = vec![Held::new(); n];
    // Reverse edges for callback re-propagation: for each node, the
    // callers whose processing depends on its callback set.
    let mut cb_dependents: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (idx, node) in nodes.iter().enumerate() {
        for call in &node.summary.calls {
            if !call.closures.is_empty() || call.forwards_callback {
                for &c in &call.candidates {
                    cb_dependents[c].insert(idx);
                }
            }
        }
    }

    let frame =
        |node: &Node, line: usize| format!("{} ({}:{})", node.qualified, node.file.display(), line);

    let mut work: Vec<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(f) = work.pop() {
        queued[f] = false;
        let mut grew: Vec<usize> = Vec::new();
        {
            let amb = ambient[f].clone();
            let node = &nodes[f];
            for call in &node.summary.calls {
                // Held set reaching the callee: ambient + local live at
                // the site, minus guards moved into this very call.
                let mut held: Held = amb.clone();
                for lh in &call.held_local {
                    held.entry(lh.lock.clone())
                        .or_insert_with(|| vec![frame(node, lh.line)]);
                }
                for m in &call.moved {
                    held.remove(m);
                }
                let mut step = held.clone();
                for chain in step.values_mut() {
                    chain.push(frame(node, call.line));
                }
                if call.invokes_param {
                    for (lock, chain) in &step {
                        if !callback[f].contains_key(lock) {
                            callback[f].insert(lock.clone(), chain.clone());
                            grew.extend(cb_dependents[f].iter().copied());
                        }
                    }
                    continue;
                }
                for &g in &call.candidates {
                    for (lock, chain) in &step {
                        if !ambient[g].contains_key(lock) {
                            ambient[g].insert(lock.clone(), chain.clone());
                            grew.push(g);
                        }
                    }
                    // Forwarding a callable parameter of ours into `g`:
                    // our callers' closures may run under whatever `g`
                    // runs its callbacks under.
                    if call.forwards_callback {
                        let cb_g = callback[g].clone();
                        for (lock, chain) in cb_g {
                            if let Entry::Vacant(slot) = callback[f].entry(lock) {
                                slot.insert(chain);
                                grew.extend(cb_dependents[f].iter().copied());
                            }
                        }
                    }
                    // Closures passed at this site may be invoked by
                    // `g` under its callback held set.
                    if !call.detached {
                        for &cl in &call.closures {
                            let cb_g = callback[g].clone();
                            for (lock, chain) in cb_g {
                                let mut chain = chain;
                                chain.push(frame(node, call.line));
                                if let Entry::Vacant(slot) = ambient[cl].entry(lock) {
                                    slot.insert(chain);
                                    grew.push(cl);
                                }
                            }
                        }
                    }
                }
                // Unresolved callee (or resolved): closures defined in
                // the argument list also inherit the held set at the
                // site — they run somewhere downstream of it.
                if !call.detached {
                    for &cl in &call.closures {
                        for (lock, chain) in &step {
                            if !ambient[cl].contains_key(lock) {
                                ambient[cl].insert(lock.clone(), chain.clone());
                                grew.push(cl);
                            }
                        }
                    }
                }
            }
            // Closure definitions outside call arguments (let-bound):
            // inherit the definition-site held set.
            for cd in &node.summary.closures {
                let mut held: Held = amb.clone();
                for lh in &cd.held_local {
                    held.entry(lh.lock.clone())
                        .or_insert_with(|| vec![frame(node, lh.line)]);
                }
                for (lock, mut chain) in held {
                    chain.push(frame(node, cd.line));
                    if let Entry::Vacant(slot) = ambient[cd.node].entry(lock) {
                        slot.insert(chain);
                        grew.push(cd.node);
                    }
                }
            }
        }
        for g in grew {
            if !queued[g] {
                queued[g] = true;
                work.push(g);
            }
        }
    }

    // Edges and blocking sites from the stabilized sets.
    let mut analysis = Analysis::default();
    let mut seen_edges: BTreeSet<(String, String, PathBuf, usize)> = BTreeSet::new();
    for (idx, node) in nodes.iter().enumerate() {
        for acq in &node.summary.acquisitions {
            for lh in &acq.held_local {
                let key = (
                    lh.lock.clone(),
                    acq.name.clone(),
                    node.file.clone(),
                    acq.line,
                );
                if seen_edges.insert(key) {
                    analysis.edges.push(Edge {
                        held: lh.lock.clone(),
                        acquired: acq.name.clone(),
                        file: node.file.clone(),
                        line: acq.line,
                        chain: Vec::new(),
                    });
                }
            }
            for (lock, chain) in &ambient[idx] {
                let key = (lock.clone(), acq.name.clone(), node.file.clone(), acq.line);
                if seen_edges.insert(key) {
                    let mut chain = chain.clone();
                    chain.push(frame(node, acq.line));
                    analysis.edges.push(Edge {
                        held: lock.clone(),
                        acquired: acq.name.clone(),
                        file: node.file.clone(),
                        line: acq.line,
                        chain,
                    });
                }
            }
        }
        let primitive = {
            let p = node.file.to_string_lossy().replace('\\', "/");
            primitive_files.iter().any(|s| p.ends_with(s.as_str()))
        };
        if !primitive {
            for b in &node.summary.blocking {
                let mut held: Vec<(String, Vec<String>)> = Vec::new();
                for lh in &b.held_local {
                    if Some(&lh.lock) == b.waived.as_ref() {
                        continue;
                    }
                    if !held.iter().any(|(l, _)| l == &lh.lock) {
                        held.push((lh.lock.clone(), Vec::new()));
                    }
                }
                for (lock, chain) in &ambient[idx] {
                    if Some(lock) == b.waived.as_ref() {
                        continue;
                    }
                    if !held.iter().any(|(l, _)| l == lock) {
                        held.push((lock.clone(), chain.clone()));
                    }
                }
                if !held.is_empty() {
                    analysis.blocking.push(BlockingSite {
                        what: b.what,
                        code: b.code.clone(),
                        file: node.file.clone(),
                        line: b.line,
                        held,
                        in_fn: node.qualified.clone(),
                    });
                }
            }
        }
    }

    // Transitive acquisitions (with witness chains) and callback sets.
    let mut trans: Vec<BTreeMap<String, Vec<String>>> = vec![BTreeMap::new(); n];
    for (idx, node) in nodes.iter().enumerate() {
        for acq in &node.summary.acquisitions {
            trans[idx]
                .entry(acq.name.clone())
                .or_insert_with(|| vec![frame(node, acq.line)]);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for idx in 0..n {
            let node = &nodes[idx];
            let mut add: Vec<(String, Vec<String>)> = Vec::new();
            for call in &node.summary.calls {
                for &g in call.candidates.iter().chain(call.closures.iter()) {
                    for (lock, chain) in &trans[g] {
                        if !trans[idx].contains_key(lock) {
                            let mut c = vec![frame(node, call.line)];
                            c.extend(chain.clone());
                            add.push((lock.clone(), c));
                        }
                    }
                }
            }
            for cd in &node.summary.closures {
                for (lock, chain) in trans[cd.node].clone() {
                    if !trans[idx].contains_key(&lock) {
                        let mut c = vec![frame(node, cd.line)];
                        c.extend(chain);
                        add.push((lock, c));
                    }
                }
            }
            for (lock, chain) in add {
                trans[idx].entry(lock).or_insert(chain);
                changed = true;
            }
        }
    }
    for (idx, node) in nodes.iter().enumerate() {
        if !trans[idx].is_empty() {
            analysis
                .transitive_acquires
                .insert(node.qualified.clone(), trans[idx].clone());
        }
        if !callback[idx].is_empty() {
            analysis
                .callback_held
                .insert(node.qualified.clone(), callback[idx].clone());
        }
    }

    // Blocking reachability, held sets ignored: which primitives can a
    // function hit on its own thread? Seeded from each body's blocking
    // ops (primitive-layer files excluded — their callers already get a
    // `condvar wait` event at the call site), then propagated up the
    // call graph like `trans` above. Closures passed to a `spawn` call
    // block the spawned thread, not the caller, so detached sites do
    // not contribute; a condvar wait counts even though it waives its
    // guard — the thread still parks.
    type ReachKey = (PathBuf, usize, String);
    let mut breach: Vec<BTreeMap<ReachKey, (&'static str, Vec<String>)>> = vec![BTreeMap::new(); n];
    for (idx, node) in nodes.iter().enumerate() {
        let primitive = {
            let p = node.file.to_string_lossy().replace('\\', "/");
            primitive_files.iter().any(|s| p.ends_with(s.as_str()))
        };
        if primitive {
            continue;
        }
        for b in &node.summary.blocking {
            breach[idx]
                .entry((node.file.clone(), b.line, b.code.clone()))
                .or_insert((b.what, Vec::new()));
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for idx in 0..n {
            let node = &nodes[idx];
            let mut add: Vec<(ReachKey, &'static str, Vec<String>)> = Vec::new();
            for call in &node.summary.calls {
                let attached_closures = (!call.detached).then_some(&call.closures);
                let targets = call
                    .candidates
                    .iter()
                    .chain(attached_closures.into_iter().flatten());
                for &g in targets {
                    for (key, (what, chain)) in &breach[g] {
                        if !breach[idx].contains_key(key) {
                            let mut c = vec![frame(node, call.line)];
                            c.extend(chain.clone());
                            add.push((key.clone(), what, c));
                        }
                    }
                }
            }
            for cd in &node.summary.closures {
                for (key, (what, chain)) in breach[cd.node].clone() {
                    if !breach[idx].contains_key(&key) {
                        let mut c = vec![frame(node, cd.line)];
                        c.extend(chain);
                        add.push((key, what, c));
                    }
                }
            }
            for (key, what, chain) in add {
                breach[idx].entry(key).or_insert((what, chain));
                changed = true;
            }
        }
    }
    for (idx, node) in nodes.iter().enumerate() {
        // Closure nodes are not roots: one invoked on the defining
        // thread already propagated its blocking into the enclosing
        // function above, and one that only ever crosses a `spawn`
        // blocks the spawned thread, which is the point of spawning.
        if node.qualified.contains("{closure@") {
            continue;
        }
        for ((file, line, code), (what, chain)) in &breach[idx] {
            analysis.reachable_blocking.push(BlockingReach {
                from_fn: node.qualified.clone(),
                from_file: node.file.clone(),
                what,
                code: code.clone(),
                file: file.clone(),
                line: *line,
                chain: chain.clone(),
            });
        }
    }
    analysis
}

// ---------------------------------------------------------------------
// Syntax helpers.

/// Is `chars[i..]` a call of the `lock(&…)` helper (not `.lock(`, not
/// `try_lock(`)?
fn is_lock_call(chars: &[char], i: usize) -> bool {
    if chars[i..].iter().take(5).collect::<String>() != "lock(" {
        return false;
    }
    if i > 0 && (lexer::is_ident(chars[i - 1]) || chars[i - 1] == '.') {
        return false;
    }
    chars.get(i + 5) == Some(&'&')
}

/// Parse the lock name out of `lock(&path)`; returns (name, end).
fn lock_name(chars: &[char], i: usize) -> (Option<String>, usize) {
    let mut j = i + 6;
    let mut path = String::new();
    while j < chars.len() && (lexer::is_ident(chars[j]) || chars[j] == '.' || chars[j] == ' ') {
        path.push(chars[j]);
        j += 1;
    }
    if chars.get(j) != Some(&')') {
        return (None, j);
    }
    let name = path
        .trim()
        .rsplit('.')
        .next()
        .map(str::to_string)
        .filter(|s| !s.is_empty());
    (name, j + 1)
}

/// The callee path text ending just before the `(` at `open`:
/// identifier chars, `.`, and `::` scanning backwards.
fn callee_text(chars: &[char], open: usize) -> String {
    let mut s = open;
    while s > 0 {
        let c = chars[s - 1];
        if lexer::is_ident(c) || c == '.' || c == ':' {
            s -= 1;
        } else {
            break;
        }
    }
    chars[s..open]
        .iter()
        .collect::<String>()
        .trim_matches(':')
        .to_string()
}

/// Top-level arguments of the call whose parens span `(open, close)`:
/// (text, absolute char offset of the argument start).
fn call_args(chars: &[char], open: usize, close: usize) -> Vec<(String, usize)> {
    if close <= open + 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let (mut par, mut start) = (0isize, open + 1);
    for k in open + 1..close {
        match chars[k] {
            '(' | '[' | '{' => par += 1,
            ')' | ']' | '}' => par -= 1,
            ',' if par == 0 => {
                let text: String = chars[start..k].iter().collect();
                out.push((
                    text.trim().to_string(),
                    start + leading_ws(&chars[start..k]),
                ));
                start = k + 1;
            }
            _ => {}
        }
    }
    let text: String = chars[start..close].iter().collect();
    if !text.trim().is_empty() {
        out.push((
            text.trim().to_string(),
            start + leading_ws(&chars[start..close]),
        ));
    }
    out
}

fn leading_ws(chars: &[char]) -> usize {
    chars.iter().take_while(|c| c.is_whitespace()).count()
}

/// Top-level closure literals within `span`, as
/// `(start, body_start, end)` absolute offsets — `start` covers the
/// whole `move |params| body`, `body_start` points just past the
/// parameter list (the walkable body). A `|` opens a closure when the
/// previous non-space char is `(`, `,`, `=`, `{`, `;`, or the previous
/// word is `move`/`return` — which excludes the boolean-or operator.
fn find_closures(chars: &[char], span: (usize, usize)) -> Vec<(usize, usize, usize)> {
    let mut out: Vec<(usize, usize, usize)> = Vec::new();
    let mut i = span.0;
    while i < span.1 {
        // Skip spans already claimed by an earlier (outer) closure so
        // only top-level closures of this body are returned; nested
        // ones belong to the closure's own walk.
        if let Some(&(_, _, e)) = out.iter().find(|&&(s, _, e)| s <= i && i < e) {
            i = e;
            continue;
        }
        if chars[i] != '|' {
            i += 1;
            continue;
        }
        if chars.get(i + 1) == Some(&'|') && chars.get(i.wrapping_sub(1)) == Some(&'|') {
            i += 1;
            continue;
        }
        let mut p = i;
        while p > span.0 && chars[p - 1].is_whitespace() {
            p -= 1;
        }
        let prev = if p > span.0 { chars[p - 1] } else { '\0' };
        let prev_word_is_move = {
            let mut e = p;
            let mut s = e;
            while s > span.0 && lexer::is_ident(chars[s - 1]) {
                s -= 1;
            }
            let w: String = chars[s..e.min(chars.len())].iter().collect();
            let _ = &mut e;
            w == "move" || w == "return"
        };
        let opens = matches!(prev, '(' | ',' | '=' | '{' | ';') || prev_word_is_move;
        if !opens {
            i += 1;
            continue;
        }
        let start = if prev_word_is_move { p - 4 } else { i };
        // Find the closing `|` of the parameter list.
        let params_end = if chars.get(i + 1) == Some(&'|') {
            i + 1
        } else {
            let mut j = i + 1;
            while j < span.1 && chars[j] != '|' {
                j += 1;
            }
            j
        };
        if params_end >= span.1 {
            i += 1;
            continue;
        }
        // Body: to the end of the expression — a balanced walk stopping
        // at a top-level `,` or a closing bracket below our level.
        let mut j = params_end + 1;
        let (mut par, mut done) = (0isize, j);
        while j < span.1 {
            match chars[j] {
                '(' | '[' | '{' => par += 1,
                ')' | ']' | '}' => {
                    if par == 0 {
                        done = j;
                        break;
                    }
                    par -= 1;
                    if par == 0 && chars[j] == '}' {
                        // A brace-bodied closure ends at its `}` when
                        // the body began with `{`.
                        let mut k = params_end + 1;
                        while k < span.1 && chars[k].is_whitespace() {
                            k += 1;
                        }
                        if k < span.1 && chars[k] == '{' {
                            done = j + 1;
                            break;
                        }
                    }
                }
                ',' | ';' if par == 0 => {
                    done = j;
                    break;
                }
                _ => {}
            }
            j += 1;
            done = j;
        }
        out.push((start, params_end + 1, done.min(span.1)));
        i = done.min(span.1);
    }
    out
}

/// The binding introduced by the statement containing offset `i`, when
/// its prefix is `let [mut] NAME =`, `let (A, …) =`, or `NAME =`.
fn stmt_binding(chars: &[char], body_start: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > body_start {
        match chars[j - 1] {
            ';' | '{' | '}' => break,
            _ => j -= 1,
        }
    }
    let stmt: String = chars[j..i].iter().collect();
    let stmt = stmt.trim();
    let eq = find_assign_eq(stmt)?;
    let lhs = stmt[..eq].trim();
    if stmt[eq + 1..].trim() != "" && !stmt[eq + 1..].trim().is_empty() {
        // The `=` we found is not the one binding this expression.
        // (Shouldn't happen: `i` points at the expression start.)
    }
    let lhs = lhs.strip_prefix("let").map(str::trim).unwrap_or(lhs);
    let lhs = lhs.strip_prefix("mut ").map(str::trim).unwrap_or(lhs);
    if let Some(inner) = lhs.strip_prefix('(') {
        let first = inner
            .trim_start_matches("mut ")
            .chars()
            .take_while(|&c| lexer::is_ident(c))
            .collect::<String>();
        return (!first.is_empty()).then_some(first);
    }
    (!lhs.is_empty() && lhs.chars().all(lexer::is_ident)).then(|| lhs.to_string())
}

/// The offset of the last top-level assignment `=` in `stmt` (not part
/// of `==`, `<=`, `+=`, `=>`, …).
fn find_assign_eq(stmt: &str) -> Option<usize> {
    let b: Vec<char> = stmt.chars().collect();
    let mut best = None;
    for (k, &c) in b.iter().enumerate() {
        if c != '=' {
            continue;
        }
        let prev = if k > 0 { b[k - 1] } else { '\0' };
        let next = b.get(k + 1).copied().unwrap_or('\0');
        if matches!(
            prev,
            '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
        ) {
            continue;
        }
        if next == '=' || next == '>' {
            continue;
        }
        best = Some(byte_offset(stmt, k));
    }
    best
}

fn byte_offset(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

/// `a = b;` where `b` is a live guard binding: rename it to `a`.
fn apply_rename(chars: &[char], body_start: usize, semi: usize, guards: &mut [Guard]) {
    let mut j = semi;
    while j > body_start {
        match chars[j - 1] {
            ';' | '{' | '}' => break,
            _ => j -= 1,
        }
    }
    let stmt: String = chars[j..semi].iter().collect();
    let stmt = stmt.trim();
    let Some(eq) = find_assign_eq(stmt) else {
        return;
    };
    let lhs = stmt[..eq]
        .trim()
        .strip_prefix("let")
        .map(str::trim)
        .unwrap_or_else(|| stmt[..eq].trim());
    let lhs = lhs.strip_prefix("mut ").map(str::trim).unwrap_or(lhs);
    let rhs = stmt[eq + 1..].trim();
    if lhs.is_empty()
        || rhs.is_empty()
        || !lhs.chars().all(lexer::is_ident)
        || !rhs.chars().all(lexer::is_ident)
    {
        return;
    }
    for g in guards.iter_mut() {
        if g.binding.as_deref() == Some(rhs) {
            g.binding = Some(lhs.to_string());
        }
    }
}

/// Does a blocking pattern match at offset `i`? Returns the label and
/// the matched raw-line text for allowlist matching.
fn blocking_at(
    chars: &[char],
    i: usize,
    scanned: &ScannedFile,
    line: usize,
) -> Option<(&'static str, String)> {
    for (pat, what) in BLOCKING {
        let p: Vec<char> = pat.chars().collect();
        if i + p.len() > chars.len() || chars[i..i + p.len()] != p[..] {
            continue;
        }
        if !pat.starts_with('.') {
            // Identifier-boundary check on the left: `xthread::sleep`
            // must not match, but a `std::` path prefix must
            // (`std::thread::sleep`, `std::fs::write`).
            if i > 0 && lexer::is_ident(chars[i - 1]) {
                continue;
            }
        }
        let code = scanned
            .lines
            .get(line.saturating_sub(1))
            .map(|l| l.code.clone())
            .unwrap_or_default();
        return Some((what, code));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(src: &str) -> Analysis {
        let files = vec![(PathBuf::from("x.rs"), scan(src))];
        analyze(&files, &["sync.rs".to_string()])
    }

    fn edge_pairs(a: &Analysis) -> Vec<(String, String)> {
        a.edges
            .iter()
            .map(|e| (e.held.clone(), e.acquired.clone()))
            .collect()
    }

    #[test]
    fn scoped_guard_nesting_yields_edge() {
        let a =
            run("impl S { fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); } }");
        assert_eq!(edge_pairs(&a), vec![("alpha".into(), "beta".into())]);
    }

    #[test]
    fn inner_block_releases_before_next_lock() {
        let a = run("fn f(&self) { let s = { let a = lock(&self.alpha); a.len() }; let b = lock(&self.beta); }");
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let a = run("fn f(&self) { lock(&self.alpha).x += 1; let b = lock(&self.beta); }");
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn temporary_guard_nests_within_its_statement() {
        let a = run("fn f(&self) { lock(&self.alpha).insert(lock(&self.beta).pop()); }");
        assert_eq!(a.edges.len(), 1, "{:?}", a.edges);
    }

    #[test]
    fn cross_function_edge_is_propagated_with_chain() {
        let src = r#"
impl S {
    fn outer(&self) {
        let a = lock(&self.alpha);
        self.inner_helper();
    }
    fn inner_helper(&self) {
        lock(&self.beta).touch();
    }
}
"#;
        let a = run(src);
        let e = a
            .edges
            .iter()
            .find(|e| e.held == "alpha" && e.acquired == "beta")
            .expect("propagated edge");
        assert!(
            e.chain.iter().any(|f| f.contains("S::outer")),
            "chain names the caller: {:?}",
            e.chain
        );
        assert!(
            e.chain.iter().any(|f| f.contains("S::inner_helper")),
            "chain names the acquirer: {:?}",
            e.chain
        );
    }

    #[test]
    fn callback_edge_is_rediscovered() {
        // The `with_conn` shape: a closure defined in one function is
        // invoked by another while it holds a lock.
        let src = r#"
impl Cache {
    fn with_conn(&self, event: impl FnMut(u32)) {
        let guard = lock(&self.conn);
        event(1);
    }
}
impl Client {
    fn go(&self) {
        self.cache.with_conn(|ev| {
            lock(&self.stats).count += ev;
        });
    }
}
struct Client { cache: Cache }
struct Cache { conn: u32 }
"#;
        let a = run(src);
        let e = a
            .edges
            .iter()
            .find(|e| e.held == "conn" && e.acquired == "stats")
            .unwrap_or_else(|| panic!("conn->stats rediscovered: {:?}", a.edges));
        assert!(
            e.chain.iter().any(|f| f.contains("with_conn")),
            "chain passes through with_conn: {:?}",
            e.chain
        );
    }

    #[test]
    fn guard_move_prevents_false_self_edge() {
        // The hybrid-store shape: append moves its guard into
        // spill_trip, which drops it before I/O and re-locks.
        let src = r#"
impl Store {
    fn append(&self) {
        let mut g = lock(&self.inner);
        let (g2, res) = self.spill_trip(g);
        g = g2;
        drop(g);
    }
    fn spill_trip<'a>(&'a self, mut g: MutexGuard<'a, Inner>) -> (MutexGuard<'a, Inner>, u32) {
        drop(g);
        self.write_local();
        let g = lock(&self.inner);
        (g, 0)
    }
    fn write_local(&self) {
        self.file.write_all(b"x");
    }
}
"#;
        let a = run(src);
        assert!(
            !edge_pairs(&a).contains(&("inner".into(), "inner".into())),
            "no false self-edge: {:?}",
            a.edges
        );
        assert!(
            a.blocking.is_empty(),
            "dropped guard before I/O: {:?}",
            a.blocking
        );
    }

    #[test]
    fn blocking_under_lock_is_found_through_calls() {
        let src = r#"
impl S {
    fn top(&self) {
        let g = lock(&self.inner);
        self.deep();
    }
    fn deep(&self) {
        self.file.write_all(b"x");
    }
}
"#;
        let a = run(src);
        assert_eq!(a.blocking.len(), 1, "{:?}", a.blocking);
        let b = &a.blocking[0];
        assert_eq!(b.what, "stream write");
        assert!(b.held.iter().any(|(l, _)| l == "inner"));
        assert!(b.held[0].1.iter().any(|f| f.contains("S::top")));
    }

    #[test]
    fn wait_releases_its_guard_but_not_others() {
        let src = r#"
fn one(&self) {
    let mut g = lock(&self.inner);
    g = wait(&self.cv, g);
    g.touch();
}
fn two(&self) {
    let a = lock(&self.alpha);
    let mut g = lock(&self.inner);
    g = wait(&self.cv, g);
}
"#;
        let a = run(src);
        // `one`: waiting with only its own guard — clean.
        // `two`: waiting while also holding `alpha` — a finding.
        let waits: Vec<_> = a
            .blocking
            .iter()
            .filter(|b| b.what == "condvar wait")
            .collect();
        assert_eq!(waits.len(), 1, "{:?}", a.blocking);
        assert!(waits[0].held.iter().any(|(l, _)| l == "alpha"));
    }

    #[test]
    fn transitive_acquires_attribute_cross_function_locks() {
        let src = r#"
impl S {
    fn serve(&self) {
        self.read_ahead();
    }
    fn read_ahead(&self) {
        let s = lock(&self.store);
    }
}
"#;
        let a = run(src);
        let serve = a.transitive_acquires.get("S::serve").expect("serve entry");
        let chain = serve.get("store").expect("store attributed to serve");
        assert!(
            chain.iter().any(|f| f.contains("read_ahead")),
            "witness chain passes through read_ahead: {chain:?}"
        );
    }

    #[test]
    fn std_method_names_do_not_link_via_untyped_receivers() {
        // `pieces.push(…)` under a lock must not link to our `push`.
        let src = r#"
struct Part { extents: Vec<u32> }
impl Queue {
    fn push(&self, v: u32) {
        let j = lock(&self.jobs);
    }
}
impl S {
    fn collect(&self, part: &Part) {
        let g = lock(&self.inner);
        let mut pieces = Vec::new();
        pieces.push(1);
        part.extents.push(2);
    }
}
"#;
        let a = run(src);
        assert!(
            !edge_pairs(&a).contains(&("inner".into(), "jobs".into())),
            "Vec::push must not resolve to Queue::push: {:?}",
            a.edges
        );
    }

    #[test]
    fn typed_receiver_links_distinctive_methods() {
        let src = r#"
struct S { q: Queue }
impl Queue {
    fn enqueue_job(&self, v: u32) {
        let j = lock(&self.jobs);
    }
}
impl S {
    fn submit(&self) {
        let g = lock(&self.inner);
        self.q.enqueue_job(1);
    }
}
"#;
        let a = run(src);
        assert!(
            edge_pairs(&a).contains(&("inner".into(), "jobs".into())),
            "field-typed receiver resolves: {:?}",
            a.edges
        );
    }

    #[test]
    fn spawned_closures_do_not_inherit_the_spawn_site_locks() {
        let src = r#"
fn go(&self) {
    let g = lock(&self.inner);
    thread::spawn(move || {
        self.file.write_all(b"x");
    });
}
"#;
        let a = run(src);
        assert!(
            a.blocking.is_empty(),
            "a spawned thread does not hold the spawner's locks: {:?}",
            a.blocking
        );
    }

    #[test]
    fn test_functions_are_excluded() {
        let src = "#[cfg(test)]\nmod t {\n    fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }\n}\n";
        let a = run(src);
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }
}
