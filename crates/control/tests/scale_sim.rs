//! 100+ node DES scale run of the control plane.
//!
//! 120 simulated suppliers heartbeat Zipf-skewed load digests into one
//! registry while seeded crash-stops and graceful decommissions churn
//! membership mid-run. The run asserts the control plane's scale and
//! safety properties: heartbeat fan-in stays O(nodes) per liveness
//! tick, no resolve probe ever returns a decommissioned (or
//! long-expired) node, and the whole run replays bit-identically from
//! its seed.

use jbs_control::{Health, SimCluster, SimConfig};
use jbs_des::SimTime;

fn scale_config() -> SimConfig {
    SimConfig {
        nodes: 120,
        mofs: 240,
        heartbeat_interval: SimTime::from_millis(500),
        tick_interval: SimTime::from_millis(500),
        zipf_theta: 0.9,
        kills: 8,
        decommissions: 6,
        resolves_per_tick: 32,
        duration: SimTime::from_secs(40),
        seed: 0xC1A5,
        ..SimConfig::default()
    }
}

#[test]
fn hundred_twenty_node_cluster_run_is_safe_and_deterministic() {
    let mut cluster = SimCluster::new(scale_config());
    let stats = cluster.run();

    // The run actually exercised the cluster.
    assert!(stats.events > 5_000, "suspiciously quiet run: {stats:?}");
    assert!(
        stats.heartbeats > 120 * 40, // well over half the nominal beat count
        "heartbeats missing: {stats:?}"
    );
    assert!(stats.ticks >= 70, "ticks missing: {stats:?}");
    assert!(stats.resolve_checks >= 70 * 32, "probes missing: {stats:?}");

    // Scale property: a liveness tick examines each node exactly once —
    // heartbeat fan-in is O(nodes) per tick, never more.
    assert!(
        stats.max_examined <= 120,
        "tick fan-in exceeded the node count: {stats:?}"
    );

    // Safety property: no resolve ever returned a decommissioned node
    // or a crash-silent node past its expiry window.
    assert_eq!(stats.resolve_violations, 0, "unsafe resolve: {stats:?}");

    // The churn really happened: every killed node expired (kills +
    // possibly decommissioned-then-expired never revive), and exactly
    // the decommissioned nodes carry tombstones.
    assert!(
        stats.unhealthy_marks >= 8,
        "killed nodes never expired: {stats:?}"
    );
    let registry = cluster.registry();
    let tombstones = cluster
        .addrs()
        .iter()
        .filter(|a| registry.health(**a) == Some(Health::Decommissioned))
        .count();
    assert_eq!(tombstones, 6, "decommission tombstones wrong");

    // Post-run, resolution is still clean: no placement resolves to a
    // tombstoned node.
    for mof in 0..cluster.mofs() {
        for a in registry.resolve(mof) {
            assert_eq!(
                registry.health(a),
                Some(Health::Live),
                "mof {mof} resolved to a non-live node"
            );
        }
    }

    // Determinism: the identical config replays to identical stats.
    let replay = SimCluster::new(scale_config()).run();
    assert_eq!(stats, replay, "same seed must replay bit-identically");
}

#[test]
fn uniform_and_skewed_load_reach_the_same_liveness_outcome() {
    // Load skew shapes the digests, not liveness: the same membership
    // churn under uniform load must expire the same node count.
    let skewed = SimCluster::new(scale_config()).run();
    let uniform = SimCluster::new(SimConfig {
        zipf_theta: 0.0,
        ..scale_config()
    })
    .run();
    assert_eq!(skewed.unhealthy_marks, uniform.unhealthy_marks);
    assert_eq!(skewed.resolve_violations, 0);
    assert_eq!(uniform.resolve_violations, 0);
    assert_eq!(skewed.ticks, uniform.ticks);
}
