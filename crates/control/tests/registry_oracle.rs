//! Property test: the registry against a flat oracle.
//!
//! A random interleaving of register / heartbeat / deregister / clock
//! advance / tick / assign / resolve ops runs against the real
//! [`Registry`] and a deliberately dumb model (flat maps, spec applied
//! literally). After every op the two must agree on every node's
//! health and every MOF's resolution; assign answers must be sticky,
//! lead with a live primary, contain only live distinct nodes, and —
//! replayed against a second identically-configured registry — come
//! out identical (placement is deterministic per seed).

use jbs_control::{Health, HeartbeatLoad, Registry, RegistryConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::SocketAddr;

const NODES: u16 = 8;
const MOFS: u64 = 16;
const INTERVAL: u64 = 100;
const MISSED: u32 = 2;
const EXPIRY: u64 = INTERVAL * MISSED as u64;

fn addr(n: u16) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 1000 + n))
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Register(u16),
    Heartbeat(u16),
    Deregister(u16),
    Advance(u64),
    Tick,
    Assign(u64, u16),
    Resolve(u64),
}

/// Map a raw `(selector, a, b)` tuple onto an op; proptest shrinks the
/// tuples, which shrinks the op sequence.
fn decode((sel, a, b): (u8, u8, u8)) -> Op {
    let node = u16::from(a) % NODES;
    match sel % 7 {
        0 => Op::Register(node),
        1 => Op::Heartbeat(node),
        2 => Op::Deregister(node),
        3 => Op::Advance(u64::from(b) % (EXPIRY * 2) + 1),
        4 => Op::Tick,
        5 => Op::Assign(u64::from(b) % MOFS, node),
        _ => Op::Resolve(u64::from(b) % MOFS),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MHealth {
    Live,
    Unhealthy,
    Dead,
}

/// The flat oracle: the registry spec applied with no cleverness.
#[derive(Default)]
struct Oracle {
    now: u64,
    nodes: BTreeMap<u16, (MHealth, u64)>,
    placements: BTreeMap<u64, Vec<u16>>,
}

impl Oracle {
    fn live(&self, n: u16) -> bool {
        matches!(self.nodes.get(&n), Some((MHealth::Live, _)))
    }

    fn resolve(&self, mof: u64) -> Vec<SocketAddr> {
        self.placements
            .get(&mof)
            .map(|p| {
                p.iter()
                    .filter(|n| self.live(**n))
                    .map(|n| addr(*n))
                    .collect()
            })
            .unwrap_or_default()
    }
}

fn cfg() -> RegistryConfig {
    RegistryConfig {
        heartbeat_interval_nanos: INTERVAL,
        unhealthy_after_missed: MISSED,
        replication: 2,
        ..RegistryConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn registry_matches_flat_oracle(raw in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..80)) {
        let registry = Registry::new(cfg());
        let twin = Registry::new(cfg()); // replays the same ops
        let mut oracle = Oracle::default();

        for op in raw.into_iter().map(decode) {
            match op {
                Op::Register(n) => {
                    registry.register(addr(n), oracle.now);
                    twin.register(addr(n), oracle.now);
                    oracle.nodes.insert(n, (MHealth::Live, oracle.now));
                }
                Op::Heartbeat(n) => {
                    // Quote the live incarnation: this oracle models
                    // liveness, not fencing (fencing has its own tests).
                    let inc = registry.incarnation(addr(n)).unwrap_or(0);
                    let accepted =
                        registry.heartbeat(addr(n), inc, HeartbeatLoad::default(), oracle.now);
                    twin.heartbeat(addr(n), inc, HeartbeatLoad::default(), oracle.now);
                    let expect = match oracle.nodes.get_mut(&n) {
                        Some((h, last)) if *h != MHealth::Dead => {
                            *h = MHealth::Live;
                            *last = oracle.now;
                            true
                        }
                        _ => false,
                    };
                    prop_assert_eq!(accepted, expect, "heartbeat acceptance diverged");
                }
                Op::Deregister(n) => {
                    registry.deregister(addr(n), oracle.now);
                    twin.deregister(addr(n), oracle.now);
                    if let Some((h, _)) = oracle.nodes.get_mut(&n) {
                        if *h != MHealth::Dead {
                            *h = MHealth::Dead;
                        }
                    }
                }
                Op::Advance(d) => {
                    oracle.now += d;
                }
                Op::Tick => {
                    let report = registry.tick(oracle.now);
                    twin.tick(oracle.now);
                    prop_assert_eq!(report.examined as usize, oracle.nodes.len());
                    let mut expect_newly = Vec::new();
                    for (n, (h, last)) in oracle.nodes.iter_mut() {
                        if *h == MHealth::Live && oracle.now.saturating_sub(*last) > EXPIRY {
                            *h = MHealth::Unhealthy;
                            expect_newly.push(addr(*n));
                        }
                    }
                    prop_assert_eq!(report.newly_unhealthy, expect_newly, "expiry set diverged");
                }
                Op::Assign(mof, primary) => {
                    let placed = registry.assign(mof, addr(primary));
                    let twin_placed = twin.assign(mof, addr(primary));
                    prop_assert_eq!(&placed, &twin_placed, "placement not deterministic");
                    match oracle.placements.get(&mof) {
                        Some(prior) => {
                            // Sticky: assign never moves an existing placement.
                            let prior_addrs: Vec<SocketAddr> =
                                prior.iter().map(|n| addr(*n)).collect();
                            prop_assert_eq!(&placed, &prior_addrs, "placement moved");
                        }
                        None => {
                            // Fresh: at most RF nodes, all live, distinct,
                            // primary first when the primary is live.
                            prop_assert!(placed.len() <= 2);
                            for a in &placed {
                                let n = (a.port() - 1000) as u16;
                                prop_assert!(oracle.live(n), "placed a non-live node");
                            }
                            let mut dedup = placed.clone();
                            dedup.sort();
                            dedup.dedup();
                            prop_assert_eq!(dedup.len(), placed.len(), "duplicate replica");
                            if oracle.live(primary) {
                                prop_assert_eq!(placed.first(), Some(&addr(primary)));
                            }
                            oracle.placements.insert(
                                mof,
                                placed.iter().map(|a| (a.port() - 1000) as u16).collect(),
                            );
                        }
                    }
                }
                Op::Resolve(mof) => {
                    prop_assert_eq!(registry.resolve(mof), oracle.resolve(mof), "resolve diverged");
                }
            }

            // Global invariant after every op: health agrees everywhere,
            // and every resolution is live-only within its placement.
            for n in 0..NODES {
                let expect = oracle.nodes.get(&n).map(|(h, _)| match h {
                    MHealth::Live => Health::Live,
                    MHealth::Unhealthy => Health::Unhealthy,
                    MHealth::Dead => Health::Decommissioned,
                });
                prop_assert_eq!(registry.health(addr(n)), expect, "health diverged for node {}", n);
            }
            for mof in oracle.placements.keys() {
                let resolved = registry.resolve(*mof);
                for a in &resolved {
                    let n = (a.port() - 1000) as u16;
                    prop_assert!(oracle.live(n), "resolved a non-live node");
                    prop_assert!(
                        oracle.placements.get(mof).map(|p| p.contains(&n)).unwrap_or(false),
                        "resolved outside the placement"
                    );
                }
            }
        }
    }
}
