//! # jbs-control — cluster control plane
//!
//! A coordinator-lite for the JVM-bypass shuffle: suppliers
//! heartbeat-register with a load + tier-residency digest, segment
//! placements are replicated across nodes, NetMergers resolve MOF ids
//! through the registry, and readers fail over across replicas when a
//! supplier's breaker opens or the registry marks it unhealthy.
//!
//! Layering: this crate sits *above* the data plane. `jbs-transport`
//! never calls into it — the registry pushes its view down into a
//! [`jbs_transport::RouteTable`] (via [`Registry::sync_routes`]) that
//! the fetch scheduler and client consult locally, so a slow registry
//! can never stall a fetch.
//!
//! - [`registry`]: the node table, heartbeats, liveness ticks, replica
//!   placement (rendezvous-hashed), resolution.
//! - [`replicate`]: pipeline-mode fan-out of segment writes to every
//!   replica in a placement.
//! - [`live`]: wall-clock heartbeat/monitor threads and the graceful
//!   [`decommission`] sequence (deregister → reroute → replica-aware
//!   drain).
//! - [`sim`]: a DES model of the whole control plane for 100+ node
//!   scale runs, deterministic per seed.

pub mod live;
pub mod registry;
pub mod replicate;
pub mod sim;
mod sync;

pub use live::{decommission, ControlClock, Heartbeater, Monitor};
pub use registry::{Health, HeartbeatLoad, Registry, RegistryConfig, TickReport};
pub use replicate::Replicator;
pub use sim::{SimCluster, SimConfig, SimStats};
