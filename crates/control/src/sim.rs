//! Discrete-event simulation of the control plane at cluster scale.
//!
//! Drives one [`Registry`] with hundreds of simulated suppliers on the
//! `jbs-des` event queue: Zipf-skewed load digests, periodic liveness
//! ticks, seeded crash-stops (heartbeats just cease) and graceful
//! decommissions, and a steady stream of resolve probes that check the
//! control plane's core safety property — a resolve never names a node
//! that is decommissioned or has stopped heartbeating past its expiry
//! window. Everything is a pure function of the seed, so a run is
//! replayable bit-for-bit.

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;

use jbs_des::{DetRng, EventQueue, SimTime};

use crate::registry::{HeartbeatLoad, Registry, RegistryConfig, TickReport};

/// Shape of one simulated cluster run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Supplier count.
    pub nodes: usize,
    /// MOFs placed across the cluster (mof `m`'s primary is node
    /// `m % nodes`).
    pub mofs: u64,
    /// Spacing between one node's heartbeats.
    pub heartbeat_interval: SimTime,
    /// Spacing between registry liveness ticks.
    pub tick_interval: SimTime,
    /// Zipf skew of per-node load digests (0 = uniform).
    pub zipf_theta: f64,
    /// Nodes that crash-stop (heartbeats cease, no deregister).
    pub kills: usize,
    /// Nodes that gracefully decommission (deregister).
    pub decommissions: usize,
    /// Resolve probes sampled per liveness tick.
    pub resolves_per_tick: usize,
    /// Simulated run length.
    pub duration: SimTime,
    /// Master seed; every stream of randomness is forked from it.
    pub seed: u64,
    /// Registry tuning (trace, expiry, replication).
    pub registry: RegistryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 100,
            mofs: 200,
            heartbeat_interval: SimTime::from_millis(500),
            tick_interval: SimTime::from_millis(500),
            zipf_theta: 0.9,
            kills: 5,
            decommissions: 5,
            resolves_per_tick: 16,
            duration: SimTime::from_secs(30),
            seed: 0x5EED,
            registry: RegistryConfig::default(),
        }
    }
}

/// Aggregate counters from one run. Deterministic per seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Heartbeats delivered.
    pub heartbeats: u64,
    /// Liveness ticks run.
    pub ticks: u64,
    /// Largest `examined` any tick reported — the per-tick fan-in,
    /// which must stay O(nodes).
    pub max_examined: u64,
    /// Live -> Unhealthy transitions observed.
    pub unhealthy_marks: u64,
    /// Resolve probes checked.
    pub resolve_checks: u64,
    /// Probes that returned a dead or decommissioned node. The scale
    /// test asserts this stays zero.
    pub resolve_violations: u64,
    /// Probes that came back empty (every replica down).
    pub resolve_empty: u64,
    /// Events processed in total.
    pub events: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimEvent {
    /// Node `i` heartbeats (and reschedules itself).
    Heartbeat(usize),
    /// Registry liveness tick + resolve probes (reschedules itself).
    Tick,
    /// Node `i` crash-stops: heartbeats cease, nothing is deregistered.
    Kill(usize),
    /// Node `i` gracefully decommissions.
    Decommission(usize),
}

/// A simulated cluster: one registry, `nodes` synthetic suppliers.
pub struct SimCluster {
    cfg: SimConfig,
    registry: Registry,
    queue: EventQueue<SimEvent>,
    rng: DetRng,
    addrs: Vec<SocketAddr>,
    /// Incarnation each node registered with, quoted on its beats.
    incarnations: Vec<u64>,
    /// Nodes whose heartbeats have ceased (killed or decommissioned),
    /// keyed to the time they went silent.
    silent: BTreeMap<usize, SimTime>,
    /// Nodes that were gracefully deregistered.
    decommissioned: BTreeSet<usize>,
    stats: SimStats,
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("nodes", &self.addrs.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Synthetic address of simulated node `i`: 10.(i>>16).(i>>8).(i):7070.
fn node_addr(i: usize) -> SocketAddr {
    let i = i as u32;
    SocketAddr::from(([10, (i >> 16) as u8, (i >> 8) as u8, i as u8], 7070))
}

impl SimCluster {
    /// Build the cluster: register every node at t=0, assign every MOF
    /// round-robin across primaries, schedule heartbeats (phase-spread
    /// by the seeded RNG so they do not thundering-herd), the first
    /// tick, and the seeded kill/decommission times.
    pub fn new(cfg: SimConfig) -> Self {
        let registry = Registry::new(cfg.registry.clone());
        let mut queue = EventQueue::new();
        let mut rng = DetRng::new(cfg.seed);
        let addrs: Vec<SocketAddr> = (0..cfg.nodes).map(node_addr).collect();

        let mut incarnations = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            incarnations.push(registry.register(*addr, 0));
            // Spread first beats across one interval.
            let phase = rng.uniform_u64(0, cfg.heartbeat_interval.as_nanos().max(1));
            queue.push(SimTime::from_nanos(phase), SimEvent::Heartbeat(i));
        }
        for mof in 0..cfg.mofs {
            if let Some(primary) = addrs.get((mof % cfg.nodes.max(1) as u64) as usize) {
                registry.assign(mof, *primary);
            }
        }
        queue.push(cfg.tick_interval, SimEvent::Tick);

        // Pick distinct victims for kills then decommissions, spread
        // over the middle half of the run so the registry sees churn
        // while traffic continues.
        let mut victims: BTreeSet<usize> = BTreeSet::new();
        let span_lo = cfg.duration.as_nanos() / 4;
        let span_hi = cfg.duration.as_nanos() / 4 * 3;
        for k in 0..cfg.kills.saturating_add(cfg.decommissions) {
            let mut v = rng.uniform_u64(0, cfg.nodes.max(1) as u64) as usize;
            let mut spins = 0;
            while victims.contains(&v) && spins < cfg.nodes {
                v = (v + 1) % cfg.nodes.max(1);
                spins += 1;
            }
            victims.insert(v);
            let at = SimTime::from_nanos(rng.uniform_u64(span_lo, span_hi.max(span_lo + 1)));
            let ev = if k < cfg.kills {
                SimEvent::Kill(v)
            } else {
                SimEvent::Decommission(v)
            };
            queue.push(at, ev);
        }

        SimCluster {
            cfg,
            registry,
            queue,
            rng,
            addrs,
            incarnations,
            silent: BTreeMap::new(),
            decommissioned: BTreeSet::new(),
            stats: SimStats::default(),
        }
    }

    /// Zipf-skewed synthetic load for node `i` at heartbeat time: a few
    /// hot nodes carry most of the traffic, like a skewed shuffle.
    fn synth_load(&mut self, i: usize) -> HeartbeatLoad {
        let n = self.cfg.nodes.max(1) as u64;
        let rank = self.rng.zipf(n, self.cfg.zipf_theta);
        let requests = (n.saturating_sub(rank)).saturating_mul(8);
        HeartbeatLoad {
            requests,
            bytes: requests.saturating_mul(1 << 16),
            connections: requests / 16,
            prefetch_queue_len: u64::from(i as u32 % 4),
            memory_bytes: requests.saturating_mul(1 << 12),
            spilled_bytes: requests.saturating_mul(1 << 10),
            remote_bytes: 0,
        }
    }

    /// True when the node's heartbeats have ceased (crash or
    /// decommission) — resolve must never return it once the expiry
    /// window has passed, and never at all once decommissioned.
    fn is_silent(&self, i: usize) -> bool {
        self.silent.contains_key(&i)
    }

    /// Check one resolve answer against ground truth: a returned
    /// address must never be decommissioned, and a crash-silent node
    /// may linger only inside its expiry window (plus tick slack)
    /// before the registry must have expired it out of resolve.
    fn check_resolve(&mut self, mof: u64, now: SimTime) {
        self.stats.resolve_checks += 1;
        let resolved = self.registry.resolve(mof);
        if resolved.is_empty() {
            self.stats.resolve_empty += 1;
            return;
        }
        let expiry = self
            .cfg
            .registry
            .heartbeat_interval_nanos
            .saturating_mul(u64::from(self.cfg.registry.unhealthy_after_missed.max(1)));
        let slack = expiry.saturating_add(self.cfg.tick_interval.as_nanos().saturating_mul(2));
        for addr in resolved {
            let Some(i) = self.addrs.iter().position(|a| *a == addr) else {
                self.stats.resolve_violations += 1;
                continue;
            };
            if self.decommissioned.contains(&i) {
                self.stats.resolve_violations += 1;
                continue;
            }
            if let Some(silent_at) = self.silent.get(&i) {
                if now.as_nanos().saturating_sub(silent_at.as_nanos()) > slack {
                    self.stats.resolve_violations += 1;
                }
            }
        }
    }

    fn on_tick(&mut self, now: SimTime) -> TickReport {
        let report = self.registry.tick(now.as_nanos());
        self.stats.ticks += 1;
        self.stats.max_examined = self.stats.max_examined.max(report.examined);
        self.stats.unhealthy_marks += report.newly_unhealthy.len() as u64;
        for _ in 0..self.cfg.resolves_per_tick {
            let mof = self.rng.uniform_u64(0, self.cfg.mofs.max(1));
            self.check_resolve(mof, now);
        }
        report
    }

    /// Run to completion. Deterministic: same config -> same stats.
    /// The cluster (registry included) stays inspectable afterwards.
    pub fn run(&mut self) -> SimStats {
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.cfg.duration {
                break;
            }
            self.stats.events += 1;
            match ev {
                SimEvent::Heartbeat(i) => {
                    if self.is_silent(i) {
                        continue;
                    }
                    if let Some(addr) = self.addrs.get(i).copied() {
                        let load = self.synth_load(i);
                        let inc = self.incarnations.get(i).copied().unwrap_or(1);
                        if self.registry.heartbeat(addr, inc, load, now.as_nanos()) {
                            self.stats.heartbeats += 1;
                        }
                    }
                    // Small jitter keeps beats from phase-locking.
                    let jitter = self
                        .rng
                        .uniform_u64(0, (self.cfg.heartbeat_interval.as_nanos() / 16).max(1));
                    self.queue.push(
                        now + self.cfg.heartbeat_interval + SimTime::from_nanos(jitter),
                        SimEvent::Heartbeat(i),
                    );
                }
                SimEvent::Tick => {
                    self.on_tick(now);
                    self.queue
                        .push(now + self.cfg.tick_interval, SimEvent::Tick);
                }
                SimEvent::Kill(i) => {
                    self.silent.entry(i).or_insert(now);
                }
                SimEvent::Decommission(i) => {
                    self.silent.entry(i).or_insert(now);
                    self.decommissioned.insert(i);
                    if let Some(addr) = self.addrs.get(i).copied() {
                        self.registry.deregister(addr, now.as_nanos());
                    }
                }
            }
        }
        self.stats
    }

    /// The registry under simulation (for post-run assertions).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Synthetic addresses of every simulated node, index-aligned.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The MOF count this cluster placed.
    pub fn mofs(&self) -> u64 {
        self.cfg.mofs
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn small_sim_is_deterministic_and_violation_free() {
        let cfg = SimConfig {
            nodes: 12,
            mofs: 24,
            kills: 2,
            decommissions: 1,
            duration: SimTime::from_secs(8),
            ..SimConfig::default()
        };
        let a = SimCluster::new(cfg.clone()).run();
        let b = SimCluster::new(cfg).run();
        assert_eq!(a, b, "same seed must replay identically");
        assert_eq!(a.resolve_violations, 0);
        assert!(a.heartbeats > 0);
        assert!(a.max_examined <= 12);
        assert!(a.unhealthy_marks >= 2, "killed nodes must expire");
    }
}
