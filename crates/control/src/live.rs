//! Wall-clock glue: background heartbeat and monitor threads, and the
//! graceful decommission sequence.
//!
//! The registry itself is time-explicit; this module owns the one place
//! real time enters the control plane — a shared [`ControlClock`]
//! anchor converts `Instant` into the `now_nanos` the registry expects,
//! so every thread in a process observes one monotonic timeline.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use jbs_store_hybrid::HybridStore;
use jbs_transport::{MofSupplierServer, RouteTable};

use crate::registry::{HeartbeatLoad, Registry};

/// Granularity at which background threads re-check their stop flag
/// while sleeping, so `stop()` returns promptly even for long periods.
const STOP_POLL: Duration = Duration::from_millis(10);

/// Shared monotonic time source for the live control plane.
#[derive(Debug)]
pub struct ControlClock {
    anchor: Instant,
}

impl ControlClock {
    pub fn new() -> Arc<Self> {
        Arc::new(ControlClock {
            anchor: Instant::now(),
        })
    }

    /// Nanoseconds since the clock was created.
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Sleep `total`, waking early when `stop` is raised. Returns false if
/// stopped.
fn interruptible_sleep(stop: &AtomicBool, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        thread::sleep((deadline - now).min(STOP_POLL));
    }
}

/// Background thread heartbeating one supplier into the registry.
#[derive(Debug)]
pub struct Heartbeater {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Heartbeater {
    /// Register `addr` and start heartbeating every `interval`,
    /// shipping the load digest `load_fn` produces each beat. The beats
    /// quote the incarnation the registration returned, so beats from a
    /// previous life of this address (a crashed process whose thread
    /// lingered, or queued beats delivered late) are fenced by the
    /// registry instead of masquerading as this one.
    pub fn spawn<F>(
        registry: Arc<Registry>,
        clock: Arc<ControlClock>,
        addr: SocketAddr,
        interval: Duration,
        load_fn: F,
    ) -> Self
    where
        F: Fn() -> HeartbeatLoad + Send + 'static,
    {
        let incarnation = registry.register(addr, clock.now_nanos());
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name(format!("jbs-heartbeat-{}", addr.port()))
            .spawn(move || {
                while interruptible_sleep(&flag, interval) {
                    if !registry.heartbeat(addr, incarnation, load_fn(), clock.now_nanos()) {
                        // Decommissioned, deregistered, or fenced by a
                        // newer incarnation underneath us: this life of
                        // the supplier is over, stop beating.
                        return;
                    }
                }
            })
            .ok();
        Heartbeater { stop, handle }
    }

    /// Stop the heartbeat thread and wait for it to exit. The node is
    /// *not* deregistered: a stopped heartbeater models a crash (the
    /// monitor will expire the node), while [`decommission`] models a
    /// graceful exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Heartbeater {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Background thread running liveness ticks and pushing the registry's
/// view into a data-plane route table.
#[derive(Debug)]
pub struct Monitor {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Monitor {
    pub fn spawn(
        registry: Arc<Registry>,
        clock: Arc<ControlClock>,
        routes: Arc<RouteTable>,
        period: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("jbs-registry-monitor".to_string())
            .spawn(move || {
                while interruptible_sleep(&flag, period) {
                    registry.tick(clock.now_nanos());
                    registry.sync_routes(&routes);
                }
            })
            .ok();
        Monitor { stop, handle }
    }

    /// Stop the monitor thread and wait for it to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Gracefully decommission the supplier at `addr`:
///
/// 1. deregister from the registry (tombstone — resolve stops naming it)
/// 2. push the updated view into the route table so in-flight fetch
///    schedulers reroute away immediately,
/// 3. mark every hybrid partition that a *surviving* replica also holds,
///    so the drain inside `server.drain` drops those instead of copying
///    them to the remote tier,
/// 4. drain the server: stop accepting, wait out active connections,
///    then run the hybrid `drain_to_remote` for whatever only this node
///    held.
///
/// Returns `server.drain`'s verdict: true when connections drained and
/// the tier drain ran inside `drain_timeout`.
pub fn decommission(
    registry: &Registry,
    routes: &RouteTable,
    addr: SocketAddr,
    server: MofSupplierServer,
    hybrid: &HybridStore,
    drain_timeout: Duration,
    now_nanos: u64,
) -> bool {
    registry.deregister(addr, now_nanos);
    registry.sync_routes(routes);
    for (mof, reducer) in hybrid.partitions() {
        if registry.resolve(mof).iter().any(|a| *a != addr) {
            hybrid.mark_replicated(mof, reducer);
        }
    }
    server.drain(drain_timeout)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    #[test]
    fn heartbeater_keeps_node_live_and_monitor_expires_after_stop() {
        let clock = ControlClock::new();
        let registry = Arc::new(Registry::new(RegistryConfig {
            heartbeat_interval_nanos: 20_000_000, // 20ms
            unhealthy_after_missed: 2,
            ..RegistryConfig::default()
        }));
        let routes = Arc::new(RouteTable::new());

        let hb = Heartbeater::spawn(
            Arc::clone(&registry),
            Arc::clone(&clock),
            addr(1),
            Duration::from_millis(5),
            HeartbeatLoad::default,
        );
        let monitor = Monitor::spawn(
            Arc::clone(&registry),
            Arc::clone(&clock),
            Arc::clone(&routes),
            Duration::from_millis(5),
        );

        // Several expiry windows pass while the heartbeater runs: the
        // node must stay live.
        thread::sleep(Duration::from_millis(120));
        assert!(registry.is_live(addr(1)));
        assert!(!routes.is_unhealthy(addr(1)));

        // Crash-stop the heartbeater: the monitor expires the node and
        // pushes the unhealthy mark into the route table.
        hb.stop();
        let deadline = Instant::now() + Duration::from_secs(10);
        while registry.is_live(addr(1)) && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(!registry.is_live(addr(1)), "node never expired");
        let deadline = Instant::now() + Duration::from_secs(10);
        while !routes.is_unhealthy(addr(1)) && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(routes.is_unhealthy(addr(1)), "route mark never synced");
        monitor.stop();
    }

    #[test]
    fn heartbeater_exits_once_deregistered() {
        let clock = ControlClock::new();
        let registry = Arc::new(Registry::new(RegistryConfig::default()));
        let hb = Heartbeater::spawn(
            Arc::clone(&registry),
            Arc::clone(&clock),
            addr(2),
            Duration::from_millis(2),
            HeartbeatLoad::default,
        );
        thread::sleep(Duration::from_millis(10));
        registry.deregister(addr(2), clock.now_nanos());
        // The thread notices the rejection and exits on its own; stop()
        // then just reaps it.
        thread::sleep(Duration::from_millis(20));
        hb.stop();
        assert_eq!(
            registry.health(addr(2)),
            Some(crate::registry::Health::Decommissioned)
        );
    }
}
