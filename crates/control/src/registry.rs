//! Coordinator-lite supplier registry.
//!
//! Suppliers register and then heartbeat with a load digest; a periodic
//! liveness tick expires nodes whose heartbeats stopped; NetMergers
//! resolve a MOF id to the live subset of its replica placement. The
//! registry is deliberately *not* on the per-segment data path — the
//! data plane consults a [`jbs_transport::RouteTable`] that the registry
//! pushes into via [`Registry::sync_routes`], so a slow or contended
//! registry can never stall a fetch.
//!
//! All methods are time-explicit (`now_nanos: u64`), the same style as
//! the transport circuit breaker: callers own the clock, which makes the
//! registry usable unchanged under the DES simulator ([`crate::sim`]),
//! the loom model checker, and real wall-clock threads
//! ([`crate::live`]).
//!
//! Locking: one mutex (`nodes`) guards both the node table and the
//! placement map so a resolve can never observe a placement referring
//! to a node state from a different epoch (no torn liveness read — the
//! `loom_` test below checks exactly this). The guard is never held
//! across I/O or another lock; `sync_routes` snapshots under the lock
//! and releases it before touching the route table.

use std::collections::BTreeMap;
use std::net::{IpAddr, SocketAddr};

use jbs_obs::{Entity, Trace};

use crate::sync::{lock, Mutex};

/// Tuning and instrumentation for a [`Registry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Expected spacing between a supplier's heartbeats, in nanoseconds.
    pub heartbeat_interval_nanos: u64,
    /// A live node is marked unhealthy once `now - last_heartbeat`
    /// exceeds `heartbeat_interval_nanos * unhealthy_after_missed`.
    /// Values below 1 behave as 1.
    pub unhealthy_after_missed: u32,
    /// Replica count for new placements (primary included). Values below
    /// 1 behave as 1.
    pub replication: u32,
    /// Seed for the rendezvous hash that picks secondary replicas.
    /// Placement is a pure function of (seed, mof, live node set), so
    /// two registries configured identically place identically.
    pub placement_seed: u64,
    /// Event sink for registry transitions.
    pub trace: Trace,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            heartbeat_interval_nanos: 500_000_000,
            unhealthy_after_missed: 3,
            replication: 2,
            placement_seed: 0x4a42_5243,
            trace: Trace::disabled(),
        }
    }
}

/// Liveness state of a registered supplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Heartbeating within the expiry window; eligible for placement and
    /// returned by resolve.
    Live,
    /// Missed heartbeats; excluded from resolve until a heartbeat
    /// revives it.
    Unhealthy,
    /// Gracefully deregistered. Terminal: heartbeats are rejected and
    /// the tombstone is retained so a placement entry naming the node
    /// stays explainable.
    Decommissioned,
}

/// Load digest a supplier ships with each heartbeat: a flattened view of
/// its transport stats and hybrid-store tier residency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeartbeatLoad {
    /// Segment requests served (transport `requests`).
    pub requests: u64,
    /// Payload bytes served.
    pub bytes: u64,
    /// Currently open connections.
    pub connections: u64,
    /// Prefetch queue depth at snapshot time.
    pub prefetch_queue_len: u64,
    /// Bytes resident in the memory tier.
    pub memory_bytes: u64,
    /// Bytes resident in the local spill tier.
    pub spilled_bytes: u64,
    /// Bytes drained to the remote tier.
    pub remote_bytes: u64,
}

impl HeartbeatLoad {
    /// Flatten a supplier's transport stats and (optional) hybrid tier
    /// stats into a heartbeat payload.
    pub fn from_stats(
        stats: &jbs_transport::SupplierStatsSnapshot,
        tiers: Option<&jbs_store_hybrid::TierStatsSnapshot>,
    ) -> Self {
        HeartbeatLoad {
            requests: stats.requests,
            bytes: stats.bytes,
            connections: stats.connections,
            prefetch_queue_len: stats.prefetch_queue_len,
            memory_bytes: tiers.map_or(0, |t| t.memory_bytes),
            spilled_bytes: tiers.map_or(0, |t| t.spilled_bytes),
            remote_bytes: tiers.map_or(0, |t| t.remote_bytes),
        }
    }

    /// Scalar pressure score used for reporting (not placement, which is
    /// rendezvous-hashed for determinism).
    pub fn score(&self) -> u64 {
        self.connections
            .saturating_add(self.prefetch_queue_len)
            .saturating_add(self.requests / 64)
    }
}

/// Per-node registry record.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    health: Health,
    last_heartbeat_nanos: u64,
    load: HeartbeatLoad,
    /// Monotonic per-address epoch. Every (re-)registration bumps it and
    /// heartbeats must quote it, so beats from a process that died —
    /// delayed in a queue, or a zombie thread that outlived its store —
    /// are fenced instead of reviving a node whose disk state moved on.
    incarnation: u64,
}

/// Everything the registry mutex guards: node table and MOF placements
/// move together so a resolve sees one consistent epoch.
#[derive(Debug, Default)]
struct RegState {
    nodes: BTreeMap<SocketAddr, NodeState>,
    placements: BTreeMap<u64, Vec<SocketAddr>>,
}

/// Outcome of one liveness tick.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Nodes examined this tick — always the full table, so the scale
    /// test can assert heartbeat fan-in stays O(nodes) per tick.
    pub examined: u64,
    /// Nodes that transitioned Live -> Unhealthy this tick.
    pub newly_unhealthy: Vec<SocketAddr>,
}

/// The supplier registry. Cheap to share behind an `Arc`; every method
/// takes `&self`.
pub struct Registry {
    cfg: RegistryConfig,
    nodes: Mutex<RegState>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

/// FNV-1a over `bytes`, continuing from hash state `h`.
fn fnv1a64(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Rendezvous (highest-random-weight) score of `addr` for `mof`: each
/// live node gets an independent pseudo-random weight and the top
/// weights win, so placements spread uniformly and adding a node only
/// reassigns the share it wins.
fn rendezvous_weight(seed: u64, mof: u64, addr: &SocketAddr) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325 ^ seed;
    h = fnv1a64(&mof.to_le_bytes(), h);
    match addr.ip() {
        IpAddr::V4(ip) => h = fnv1a64(&ip.octets(), h),
        IpAddr::V6(ip) => h = fnv1a64(&ip.octets(), h),
    }
    fnv1a64(&addr.port().to_le_bytes(), h)
}

impl Registry {
    pub fn new(cfg: RegistryConfig) -> Self {
        Registry {
            cfg,
            nodes: Mutex::new(RegState::default()),
        }
    }

    /// Nanoseconds of heartbeat silence after which a node expires.
    fn expiry_nanos(&self) -> u64 {
        self.cfg
            .heartbeat_interval_nanos
            .saturating_mul(u64::from(self.cfg.unhealthy_after_missed.max(1)))
    }

    /// Register (or re-register) a supplier as Live and return its
    /// incarnation: 1 for a fresh address, previous + 1 for any address
    /// already known — including a Decommissioned tombstone, which
    /// models a fresh process reusing the address after a crash or
    /// graceful exit. Heartbeats must quote the returned incarnation.
    pub fn register(&self, addr: SocketAddr, now_nanos: u64) -> u64 {
        let incarnation = {
            let mut g = lock(&self.nodes);
            let incarnation = g
                .nodes
                .get(&addr)
                .map_or(1, |n| n.incarnation.saturating_add(1));
            g.nodes.insert(
                addr,
                NodeState {
                    health: Health::Live,
                    last_heartbeat_nanos: now_nanos,
                    load: HeartbeatLoad::default(),
                    incarnation,
                },
            );
            incarnation
        };
        self.cfg.trace.instant(
            "registry.register",
            Entity::peer(u64::from(addr.port())),
            now_nanos,
            incarnation,
        );
        incarnation
    }

    /// Register with a caller-supplied incarnation (a restarted supplier
    /// replaying an epoch it persisted). Accepted only when the address
    /// is unknown or `incarnation` is strictly newer than the current
    /// one — in particular, a `Decommissioned` tombstone is only
    /// replaced by a genuinely newer process, never by a stale replay
    /// of the dead one.
    pub fn register_incarnation(
        &self,
        addr: SocketAddr,
        incarnation: u64,
        now_nanos: u64,
    ) -> bool {
        let accepted = {
            let mut g = lock(&self.nodes);
            match g.nodes.get(&addr) {
                Some(n) if incarnation <= n.incarnation => false,
                _ => {
                    g.nodes.insert(
                        addr,
                        NodeState {
                            health: Health::Live,
                            last_heartbeat_nanos: now_nanos,
                            load: HeartbeatLoad::default(),
                            incarnation,
                        },
                    );
                    true
                }
            }
        };
        if accepted {
            self.cfg.trace.instant(
                "registry.register",
                Entity::peer(u64::from(addr.port())),
                now_nanos,
                incarnation,
            );
        }
        accepted
    }

    /// The current incarnation of `addr`, if registered.
    pub fn incarnation(&self, addr: SocketAddr) -> Option<u64> {
        let g = lock(&self.nodes);
        g.nodes.get(&addr).map(|n| n.incarnation)
    }

    /// Record a heartbeat. Returns false (and changes nothing) for
    /// unknown or decommissioned addresses, and for beats quoting a
    /// stale (or future) incarnation — the fence that keeps a dead
    /// process's delayed beats from reviving its successor's slot. An
    /// Unhealthy node beating its current incarnation revives to Live.
    pub fn heartbeat(
        &self,
        addr: SocketAddr,
        incarnation: u64,
        load: HeartbeatLoad,
        now_nanos: u64,
    ) -> bool {
        let revived = {
            let mut g = lock(&self.nodes);
            let Some(node) = g.nodes.get_mut(&addr) else {
                return false;
            };
            if node.health == Health::Decommissioned {
                return false;
            }
            if node.incarnation != incarnation {
                drop(g);
                self.cfg.trace.instant(
                    "registry.fence",
                    Entity::peer(u64::from(addr.port())),
                    incarnation,
                    self.incarnation(addr).unwrap_or(0),
                );
                return false;
            }
            node.last_heartbeat_nanos = now_nanos;
            node.load = load;
            if node.health == Health::Unhealthy {
                node.health = Health::Live;
                true
            } else {
                false
            }
        };
        if revived {
            self.cfg.trace.instant(
                "registry.revive",
                Entity::peer(u64::from(addr.port())),
                now_nanos,
                0,
            );
        }
        true
    }

    /// One liveness sweep: expire Live nodes whose last heartbeat is
    /// older than the expiry window. Examines every node exactly once
    /// (heartbeat fan-in is O(nodes) per tick, independent of traffic).
    pub fn tick(&self, now_nanos: u64) -> TickReport {
        let expiry = self.expiry_nanos();
        let mut examined = 0u64;
        let newly_unhealthy: Vec<SocketAddr> = {
            let mut g = lock(&self.nodes);
            let mut newly = Vec::new();
            for (addr, node) in g.nodes.iter_mut() {
                examined += 1;
                if node.health == Health::Live
                    && now_nanos.saturating_sub(node.last_heartbeat_nanos) > expiry
                {
                    node.health = Health::Unhealthy;
                    newly.push(*addr);
                }
            }
            newly
        };
        for addr in &newly_unhealthy {
            self.cfg.trace.instant(
                "registry.unhealthy",
                Entity::peer(u64::from(addr.port())),
                now_nanos,
                0,
            );
        }
        TickReport {
            examined,
            newly_unhealthy,
        }
    }

    /// Gracefully deregister: mark Decommissioned (terminal tombstone).
    /// Returns true if the node was present and not already
    /// decommissioned.
    pub fn deregister(&self, addr: SocketAddr, now_nanos: u64) -> bool {
        let was_active = {
            let mut g = lock(&self.nodes);
            match g.nodes.get_mut(&addr) {
                Some(n) if n.health != Health::Decommissioned => {
                    n.health = Health::Decommissioned;
                    true
                }
                _ => false,
            }
        };
        if was_active {
            self.cfg.trace.instant(
                "registry.deregister",
                Entity::peer(u64::from(addr.port())),
                now_nanos,
                0,
            );
        }
        was_active
    }

    /// Return (creating if absent) the replica placement for `mof`.
    ///
    /// A new placement is `primary` (if live) plus the highest
    /// rendezvous-weighted other live nodes up to the replication
    /// factor. Placements are sticky: once assigned they do not move,
    /// so data already written to replicas stays resolvable; liveness
    /// filtering happens at [`Registry::resolve`] time.
    pub fn assign(&self, mof: u64, primary: SocketAddr) -> Vec<SocketAddr> {
        let placement = {
            let mut g = lock(&self.nodes);
            if let Some(p) = g.placements.get(&mof) {
                return p.clone();
            }
            let rf = self.cfg.replication.max(1) as usize;
            let mut placement: Vec<SocketAddr> = Vec::with_capacity(rf);
            if g.nodes.get(&primary).map(|n| n.health) == Some(Health::Live) {
                placement.push(primary);
            }
            let mut others: Vec<(u64, SocketAddr)> = g
                .nodes
                .iter()
                .filter(|(a, n)| **a != primary && n.health == Health::Live)
                .map(|(a, _)| (rendezvous_weight(self.cfg.placement_seed, mof, a), *a))
                .collect();
            others.sort_by(|x, y| y.0.cmp(&x.0).then_with(|| x.1.cmp(&y.1)));
            for (_, a) in others {
                if placement.len() >= rf {
                    break;
                }
                placement.push(a);
            }
            g.placements.insert(mof, placement.clone());
            placement
        };
        self.cfg.trace.instant(
            "registry.place",
            Entity::registry(0),
            mof,
            placement.len() as u64,
        );
        placement
    }

    /// The live subset of `mof`'s placement, primary first. Empty when
    /// the MOF is unplaced or every replica is down — liveness and
    /// placement are read under one guard, so the answer is a single
    /// consistent epoch (never a torn read).
    pub fn resolve(&self, mof: u64) -> Vec<SocketAddr> {
        let g = lock(&self.nodes);
        let Some(p) = g.placements.get(&mof) else {
            return Vec::new();
        };
        p.iter()
            .filter(|a| g.nodes.get(a).map(|n| n.health) == Some(Health::Live))
            .copied()
            .collect()
    }

    /// The raw (unfiltered) placement of `mof`, if assigned.
    pub fn placement(&self, mof: u64) -> Option<Vec<SocketAddr>> {
        let g = lock(&self.nodes);
        g.placements.get(&mof).cloned()
    }

    /// Push the registry's current view into a data-plane route table:
    /// replica sets for every placement, plus health marks for every
    /// node. Snapshots under the registry lock, then updates the route
    /// table lock-free of the registry (no nested locks).
    pub fn sync_routes(&self, routes: &jbs_transport::RouteTable) {
        let (marks, placements) = {
            let g = lock(&self.nodes);
            let marks: Vec<(SocketAddr, bool)> = g
                .nodes
                .iter()
                .map(|(a, n)| (*a, n.health == Health::Live))
                .collect();
            let placements: Vec<(u64, Vec<SocketAddr>)> =
                g.placements.iter().map(|(m, p)| (*m, p.clone())).collect();
            (marks, placements)
        };
        let n_marks = marks.len() as u64;
        let n_placements = placements.len() as u64;
        for (mof, replicas) in placements {
            routes.set_replicas(mof, replicas);
        }
        for (addr, live) in marks {
            if live {
                // mark_healthy reports the transition: true only when the
                // route table previously held this node unhealthy, i.e.
                // traffic is flipping back after a failover.
                if routes.mark_healthy(addr) {
                    self.cfg.trace.instant(
                        "route.restore",
                        Entity::peer(u64::from(addr.port())),
                        0,
                        0,
                    );
                }
            } else {
                routes.mark_unhealthy(addr);
            }
        }
        self.cfg
            .trace
            .instant("registry.sync", Entity::registry(0), n_marks, n_placements);
    }

    /// Health of `addr`, if registered.
    pub fn health(&self, addr: SocketAddr) -> Option<Health> {
        let g = lock(&self.nodes);
        g.nodes.get(&addr).map(|n| n.health)
    }

    /// Whether `addr` is registered and Live.
    pub fn is_live(&self, addr: SocketAddr) -> bool {
        self.health(addr) == Some(Health::Live)
    }

    /// Last reported load of `addr`, if registered.
    pub fn load(&self, addr: SocketAddr) -> Option<HeartbeatLoad> {
        let g = lock(&self.nodes);
        g.nodes.get(&addr).map(|n| n.load)
    }

    /// All Live node addresses, in address order.
    pub fn live_nodes(&self) -> Vec<SocketAddr> {
        let g = lock(&self.nodes);
        g.nodes
            .iter()
            .filter(|(_, n)| n.health == Health::Live)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Total registered nodes, tombstones included.
    pub fn len(&self) -> usize {
        let g = lock(&self.nodes);
        g.nodes.len()
    }

    /// True when no node has ever registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    fn registry() -> Registry {
        Registry::new(RegistryConfig {
            heartbeat_interval_nanos: 100,
            unhealthy_after_missed: 3,
            replication: 2,
            ..RegistryConfig::default()
        })
    }

    #[test]
    fn expire_then_revive_round_trip() {
        let r = registry();
        r.register(addr(1), 0);
        assert!(r.is_live(addr(1)));

        // Within the window: still live.
        assert!(r.tick(300).newly_unhealthy.is_empty());
        // Past 3 missed intervals: expired.
        let report = r.tick(301);
        assert_eq!(report.newly_unhealthy, vec![addr(1)]);
        assert_eq!(report.examined, 1);
        assert_eq!(r.health(addr(1)), Some(Health::Unhealthy));

        // A late heartbeat revives.
        assert!(r.heartbeat(addr(1), 1, HeartbeatLoad::default(), 400));
        assert!(r.is_live(addr(1)));
        assert!(r.tick(450).newly_unhealthy.is_empty());
    }

    #[test]
    fn heartbeat_rejected_for_unknown_and_decommissioned() {
        let r = registry();
        assert!(!r.heartbeat(addr(9), 1, HeartbeatLoad::default(), 0));
        r.register(addr(1), 0);
        assert!(r.deregister(addr(1), 10));
        assert!(!r.deregister(addr(1), 11), "second deregister is a no-op");
        assert!(!r.heartbeat(addr(1), 1, HeartbeatLoad::default(), 20));
        assert_eq!(r.health(addr(1)), Some(Health::Decommissioned));
        // Tombstones are still examined (O(nodes) fan-in) but never expire.
        let report = r.tick(10_000);
        assert_eq!(report.examined, 1);
        assert!(report.newly_unhealthy.is_empty());
    }

    #[test]
    fn placement_is_sticky_and_deterministic() {
        let r = registry();
        for p in 1..=4 {
            r.register(addr(p), 0);
        }
        let placed = r.assign(7, addr(2));
        assert_eq!(placed.len(), 2);
        assert_eq!(placed[0], addr(2), "primary leads the placement");
        // Sticky: same answer later, even after membership grows.
        r.register(addr(5), 1);
        assert_eq!(r.assign(7, addr(2)), placed);

        // Deterministic: an identically configured registry with the
        // same live set places identically.
        let r2 = registry();
        for p in 1..=4 {
            r2.register(addr(p), 0);
        }
        assert_eq!(r2.assign(7, addr(2)), placed);
    }

    #[test]
    fn resolve_filters_unhealthy_and_decommissioned() {
        let r = registry();
        r.register(addr(1), 0);
        r.register(addr(2), 0);
        let placed = r.assign(3, addr(1));
        assert_eq!(placed, vec![addr(1), addr(2)]);
        assert_eq!(r.resolve(3), vec![addr(1), addr(2)]);

        // Expire the primary: resolve falls back to the replica.
        r.heartbeat(addr(2), 1, HeartbeatLoad::default(), 500);
        r.tick(500);
        assert_eq!(r.resolve(3), vec![addr(2)]);

        // Decommission the replica too: nothing live remains, but the
        // raw placement is retained for explainability.
        r.deregister(addr(2), 600);
        assert_eq!(r.resolve(3), Vec::<SocketAddr>::new());
        assert_eq!(r.placement(3), Some(placed));
        assert_eq!(r.resolve(99), Vec::<SocketAddr>::new());
    }

    #[test]
    fn sync_routes_pushes_health_and_replicas() {
        let r = registry();
        r.register(addr(1), 0);
        r.register(addr(2), 0);
        r.assign(3, addr(1));

        let routes = jbs_transport::RouteTable::new();
        r.sync_routes(&routes);
        assert_eq!(routes.resolve(3), Some(addr(1)));
        assert!(!routes.is_unhealthy(addr(2)));

        r.tick(10_000); // both expire (no heartbeats)
        r.sync_routes(&routes);
        assert!(routes.is_unhealthy(addr(1)));
        assert!(routes.is_unhealthy(addr(2)));
        assert_eq!(routes.resolve(3), None);

        r.heartbeat(addr(2), 1, HeartbeatLoad::default(), 10_001);
        r.sync_routes(&routes);
        assert_eq!(routes.resolve(3), Some(addr(2)));
    }

    #[test]
    fn resolve_with_every_replica_tombstoned_is_empty() {
        let r = registry();
        r.register(addr(1), 0);
        r.register(addr(2), 0);
        let placed = r.assign(3, addr(1));
        assert_eq!(placed.len(), 2);
        // Tombstone the entire placement: resolve must return empty —
        // not panic, not name a dead node — and the raw placement stays
        // readable for explainability.
        r.deregister(addr(1), 10);
        r.deregister(addr(2), 11);
        assert_eq!(r.resolve(3), Vec::<SocketAddr>::new());
        assert_eq!(r.placement(3), Some(placed));
        // Liveness machinery over an all-tombstone table is inert.
        assert!(r.tick(100_000).newly_unhealthy.is_empty());
        assert!(r.live_nodes().is_empty());
    }

    #[test]
    fn stale_incarnation_heartbeats_are_fenced() {
        let r = registry();
        let first = r.register(addr(1), 0);
        assert_eq!(first, 1);
        // The process dies and a successor re-registers the address.
        let second = r.register(addr(1), 50);
        assert_eq!(second, 2);
        assert_eq!(r.incarnation(addr(1)), Some(2));
        // A delayed beat from the dead incarnation is fenced and leaves
        // the record untouched; the live incarnation's beats land.
        assert!(!r.heartbeat(addr(1), first, HeartbeatLoad::default(), 60));
        assert!(r.heartbeat(addr(1), second, HeartbeatLoad::default(), 61));
        // Fencing also revives nothing: expire the node, then beat the
        // stale incarnation — it must stay Unhealthy.
        r.tick(10_000);
        assert_eq!(r.health(addr(1)), Some(Health::Unhealthy));
        assert!(!r.heartbeat(addr(1), first, HeartbeatLoad::default(), 10_001));
        assert_eq!(r.health(addr(1)), Some(Health::Unhealthy));
        assert!(r.heartbeat(addr(1), second, HeartbeatLoad::default(), 10_002));
        assert_eq!(r.health(addr(1)), Some(Health::Live));
    }

    #[test]
    fn reregistration_over_a_tombstone_needs_a_newer_incarnation() {
        let r = registry();
        let inc = r.register(addr(1), 0);
        assert!(r.deregister(addr(1), 10));
        assert_eq!(r.health(addr(1)), Some(Health::Decommissioned));
        // A stale replay of the dead incarnation (or anything not newer)
        // cannot resurrect the tombstone.
        assert!(!r.register_incarnation(addr(1), inc, 20));
        assert_eq!(r.health(addr(1)), Some(Health::Decommissioned));
        // A genuinely newer incarnation replaces it.
        assert!(r.register_incarnation(addr(1), inc + 1, 30));
        assert_eq!(r.health(addr(1)), Some(Health::Live));
        assert_eq!(r.incarnation(addr(1)), Some(inc + 1));
        // Unknown addresses register at any incarnation.
        assert!(r.register_incarnation(addr(7), 42, 40));
        assert_eq!(r.incarnation(addr(7)), Some(42));
        // And plain register() over a tombstone bumps past it.
        assert!(r.deregister(addr(7), 50));
        assert_eq!(r.register(addr(7), 60), 43);
        assert_eq!(r.health(addr(7)), Some(Health::Live));
    }

    #[test]
    fn load_digest_is_retained() {
        let r = registry();
        r.register(addr(1), 0);
        let load = HeartbeatLoad {
            requests: 640,
            bytes: 1 << 20,
            connections: 3,
            prefetch_queue_len: 2,
            memory_bytes: 4096,
            spilled_bytes: 512,
            remote_bytes: 0,
        };
        assert!(r.heartbeat(addr(1), 1, load, 5));
        assert_eq!(r.load(addr(1)), Some(load));
        assert_eq!(load.score(), 3 + 2 + 10);
        assert_eq!(r.load(addr(9)), None);
    }
}

/// Loom model: a liveness tick expiring two nodes races a resolve of a
/// placement spanning both. The single registry mutex must make the
/// expiry atomic with respect to resolution — a reader sees both
/// replicas live or neither, never a torn placement of one.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    #[test]
    fn loom_tick_vs_resolve_no_torn_liveness() {
        loom::model(|| {
            let r = loom::sync::Arc::new(Registry::new(RegistryConfig {
                heartbeat_interval_nanos: 10,
                unhealthy_after_missed: 1,
                replication: 2,
                ..RegistryConfig::default()
            }));
            let a = SocketAddr::from(([127, 0, 0, 1], 1));
            let b = SocketAddr::from(([127, 0, 0, 1], 2));
            r.register(a, 0);
            r.register(b, 0);
            assert_eq!(r.assign(5, a).len(), 2);

            let ticker = {
                let r = loom::sync::Arc::clone(&r);
                loom::thread::spawn(move || {
                    // Far past expiry: both nodes transition together.
                    r.tick(1_000_000).newly_unhealthy.len()
                })
            };
            let resolver = {
                let r = loom::sync::Arc::clone(&r);
                loom::thread::spawn(move || r.resolve(5).len())
            };

            let expired = ticker.join().unwrap_or(0);
            let seen = resolver.join().unwrap_or(usize::MAX);
            assert_eq!(expired, 2);
            assert!(
                seen == 0 || seen == 2,
                "torn liveness read: resolve saw {seen} of 2 replicas"
            );
            assert_eq!(r.resolve(5).len(), 0);
        });
    }
}
