//! Pipeline-mode segment replication.
//!
//! A map task's segment bytes are written to every node in the MOF's
//! registry placement, in placement order (primary first), mirroring
//! Hadoop's pipelined block write: the primary is the canonical copy
//! and each secondary is a failover target the NetMerger can redirect
//! to when the primary's breaker opens or the registry marks it
//! unhealthy.
//!
//! The replicator holds no lock of its own — the store map is frozen at
//! construction (in-process clusters know their suppliers up front) and
//! each [`jbs_store_hybrid::HybridStore`] is internally synchronized.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use jbs_obs::{Entity, Trace};
use jbs_store_hybrid::HybridStore;

use crate::registry::Registry;

/// Fans segment writes out to each replica in a MOF's placement.
pub struct Replicator {
    registry: Arc<Registry>,
    stores: HashMap<SocketAddr, Arc<HybridStore>>,
    trace: Trace,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("stores", &self.stores.len())
            .finish_non_exhaustive()
    }
}

impl Replicator {
    pub fn new(registry: Arc<Registry>, trace: Trace) -> Self {
        Replicator {
            registry,
            stores: HashMap::new(),
            trace,
        }
    }

    /// Register the hybrid store backing the supplier at `addr`.
    pub fn add_store(&mut self, addr: SocketAddr, store: Arc<HybridStore>) {
        self.stores.insert(addr, store);
    }

    /// Write one segment chunk to every replica of `mof`'s placement
    /// (assigning the placement on first touch, `primary` first), in
    /// pipeline order. Returns the placement written to.
    ///
    /// Fails fast: a write error at any hop aborts the remaining hops,
    /// matching a broken replication pipeline — the caller retries or
    /// surfaces the error; partial copies are tolerated because readers
    /// only trust the registry's resolve answer.
    pub fn replicate(
        &self,
        primary: SocketAddr,
        mof: u64,
        reducer: u32,
        data: &[u8],
    ) -> io::Result<Vec<SocketAddr>> {
        let placement = self.registry.assign(mof, primary);
        if placement.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("mof {mof}: no live node to place on"),
            ));
        }
        for addr in &placement {
            let Some(store) = self.stores.get(addr) else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("mof {mof}: no store registered for replica {addr}"),
                ));
            };
            store.append(mof, reducer, data)?;
            if *addr != primary {
                self.trace.instant(
                    "replica.write",
                    Entity::mof(mof),
                    u64::from(reducer),
                    u64::from(addr.port()),
                );
            }
        }
        Ok(placement)
    }

    /// The store registered for `addr`, if any.
    pub fn store(&self, addr: SocketAddr) -> Option<&Arc<HybridStore>> {
        self.stores.get(&addr)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use jbs_store_hybrid::HybridConfig;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    fn store() -> Arc<HybridStore> {
        HybridStore::new(HybridConfig::default()).expect("store")
    }

    #[test]
    fn replicates_to_every_placed_node() {
        let registry = Arc::new(Registry::new(RegistryConfig {
            replication: 2,
            ..RegistryConfig::default()
        }));
        registry.register(addr(1), 0);
        registry.register(addr(2), 0);
        registry.register(addr(3), 0);

        let mut rep = Replicator::new(Arc::clone(&registry), jbs_obs::Trace::disabled());
        for p in [1u16, 2, 3] {
            rep.add_store(addr(p), store());
        }

        let placed = rep
            .replicate(addr(1), 7, 0, b"hello replicas")
            .expect("replicate");
        assert_eq!(placed.len(), 2);
        assert_eq!(placed[0], addr(1));
        for a in &placed {
            let s = rep.store(*a).expect("store");
            assert_eq!(s.partition_len(7, 0), Some(14));
        }
        // The node outside the placement saw nothing.
        for p in [1u16, 2, 3] {
            if !placed.contains(&addr(p)) {
                assert_eq!(rep.store(addr(p)).expect("store").partition_len(7, 0), None);
            }
        }
    }

    #[test]
    fn missing_store_is_an_error_and_empty_cluster_is_not_found() {
        let registry = Arc::new(Registry::new(RegistryConfig::default()));
        let rep = Replicator::new(Arc::clone(&registry), jbs_obs::Trace::disabled());
        // No live nodes at all.
        let err = rep.replicate(addr(1), 1, 0, b"x").expect_err("no nodes");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);

        // Node is live but its store was never registered.
        registry.register(addr(1), 0);
        let err = rep.replicate(addr(1), 1, 0, b"x").expect_err("no store");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
