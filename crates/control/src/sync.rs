//! Synchronization layer for the control plane, swappable to the loom
//! model checker — the same pattern as `jbs-transport`'s sync module.
//!
//! The registry's single `nodes` mutex is acquired through [`lock`],
//! which gives poison tolerance (a panicked heartbeat thread must not
//! wedge resolution for every reader) and the syntactic anchor `cargo
//! xtask analyze`'s lock-order lint keys on. Building with
//! `RUSTFLAGS="--cfg loom"` swaps the mutex for the vendored model
//! checker's, under which the `loom_` test in [`crate::registry`]
//! explores every bounded interleaving of a liveness tick racing a
//! resolve.

#[cfg(loom)]
pub(crate) use loom::sync::{Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, tolerating poison.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
