//! Human-readable text timeline: one line per event, sorted by start
//! time, with durations for spans. For eyeballs and bug reports; tests
//! should use [`crate::TraceQuery`] instead.

use crate::event::{Event, EventKind};
use std::fmt::Write as _;

/// Format nanoseconds as a fixed-width human quantity.
fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:>10.3}s ", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:>10.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:>10.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns:>10}ns")
    }
}

/// Render a text timeline of the events, ordered by start time (ties by
/// sequence number).
pub fn render_timeline(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| (e.t, e.seq));
    let mut out = String::with_capacity(sorted.len() * 80);
    for e in sorted {
        let _ = write!(out, "[{}", fmt_nanos(e.t));
        match e.kind {
            EventKind::Span => {
                let _ = write!(out, " +{}", fmt_nanos(e.duration()));
            }
            EventKind::Instant => out.push_str("             "),
        }
        let _ = writeln!(
            out,
            "] t{:02} {:<10} {:<18} a={} b={}",
            e.thread,
            e.entity.to_string(),
            e.name,
            e.a,
            e.b
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Entity;
    use std::borrow::Cow;

    #[test]
    fn renders_sorted_with_durations() {
        let events = vec![
            Event {
                seq: 1,
                t: 2_500,
                end: 2_500,
                kind: EventKind::Instant,
                thread: 0,
                entity: Entity::NONE,
                name: Cow::Borrowed("cache.hit"),
                a: 1,
                b: 2,
            },
            Event {
                seq: 0,
                t: 1_000,
                end: 3_000_000,
                kind: EventKind::Span,
                thread: 3,
                entity: Entity::mof(7),
                name: Cow::Borrowed("disk.read"),
                a: 0,
                b: 65536,
            },
        ];
        let text = render_timeline(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("disk.read"), "earlier start first");
        assert!(lines[0].contains("mof:7"));
        assert!(lines[0].contains("+"));
        assert!(lines[1].contains("cache.hit"));
        assert!(text.contains("a=0 b=65536"));
    }

    #[test]
    fn nanos_formatting_picks_units() {
        assert!(fmt_nanos(12).trim().ends_with("ns"));
        assert!(fmt_nanos(12_000).trim().ends_with("us"));
        assert!(fmt_nanos(12_000_000).trim().ends_with("ms"));
        assert!(fmt_nanos(12_000_000_000).trim().ends_with('s'));
    }
}
