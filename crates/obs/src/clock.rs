//! Clock abstraction: wall-clock nanoseconds in the real dataplane,
//! externally-driven sim-time nanoseconds in deterministic builds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Time source for a recorder. All timestamps are nanoseconds from an
/// arbitrary per-trace origin; only differences and orderings matter.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Monotonic wall clock, nanoseconds since the anchor (normally the
    /// moment the recorder was created).
    Wall(Instant),
    /// Externally driven clock: reads whatever the owning [`ManualClock`]
    /// last stored. The discrete-event simulator sets it to the current
    /// event's sim time before recording, so traces are deterministic.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock anchored now.
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// Current time in nanoseconds since the clock's origin.
    pub fn now(&self) -> u64 {
        match self {
            Clock::Wall(anchor) => anchor.elapsed().as_nanos() as u64,
            Clock::Manual(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

/// Handle that drives a [`Clock::Manual`]. Cloning shares the cell, so
/// the simulator keeps one handle and every trace built from
/// [`ManualClock::clock`] observes its updates.
#[derive(Clone, Debug, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A manual clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// A [`Clock`] view over this handle, for [`crate::Trace::recording_with`].
    pub fn clock(&self) -> Clock {
        Clock::Manual(Arc::clone(&self.0))
    }

    /// Jump the clock to an absolute nanosecond value.
    pub fn set(&self, nanos: u64) {
        self.0.store(nanos, Ordering::Relaxed);
    }

    /// Move the clock forward and return the new value.
    pub fn advance(&self, nanos: u64) -> u64 {
        self.0.fetch_add(nanos, Ordering::Relaxed) + nanos
    }

    /// Current value.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = Clock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_shared_and_exact() {
        let m = ManualClock::new();
        let c = m.clock();
        assert_eq!(c.now(), 0);
        m.set(1_000);
        assert_eq!(c.now(), 1_000);
        assert_eq!(m.advance(500), 1_500);
        assert_eq!(c.now(), 1_500);
        let m2 = m.clone();
        m2.set(7);
        assert_eq!(c.now(), 7);
    }
}
