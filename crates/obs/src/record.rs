//! The recorder: a cloneable [`Trace`] handle over a bounded ring of
//! [`Event`]s behind one mutex.
//!
//! Cost model: a disabled trace is an `Option::None` check per call — no
//! lock, no clock read. An enabled trace pays one clock read plus one
//! short uncontended mutex section (assign `seq`, push, maybe evict).
//! Spans are recorded *on close* as a single event carrying both
//! endpoints, so eviction can drop a whole span but never tear one.

use crate::clock::Clock;
use crate::event::{Entity, Event, EventKind};
use crate::query::TraceQuery;
use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Dense per-process thread tag: 0 for the first thread that records,
/// 1 for the next, and so on. Stable for the life of the thread.
fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

struct Ring {
    events: VecDeque<Event>,
    /// Next sequence number to assign.
    seq: u64,
    /// Events evicted because the ring was full.
    dropped: u64,
}

pub(crate) struct Recorder {
    ring: Mutex<Ring>,
    cap: usize,
    clock: Clock,
    /// Spans currently open (guards alive); purely diagnostic.
    open: AtomicU64,
}

impl Recorder {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        kind: EventKind,
        t: u64,
        end: u64,
        thread: u64,
        entity: Entity,
        name: &'static str,
        a: u64,
        b: u64,
    ) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let seq = ring.seq;
        ring.seq += 1;
        if ring.events.len() == self.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(Event {
            seq,
            t,
            end,
            kind,
            thread,
            entity,
            name: Cow::Borrowed(name),
            a,
            b,
        });
    }
}

/// Cloneable tracing handle. All clones share one recorder; a handle
/// built with [`Trace::disabled`] (also the `Default`) records nothing
/// and costs one branch per call, which is how production configs embed
/// a `Trace` field unconditionally.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Recorder>>,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Trace(disabled)"),
            Some(r) => write!(f, "Trace(recording, cap={})", r.cap),
        }
    }
}

impl Trace {
    /// A no-op handle: every call is a single branch.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// Record up to `capacity` events (oldest evicted first) against a
    /// wall clock anchored now.
    pub fn recording(capacity: usize) -> Self {
        Self::recording_with(capacity, Clock::wall())
    }

    /// Record against an explicit clock — pass a
    /// [`crate::ManualClock::clock`] view for sim-time determinism.
    pub fn recording_with(capacity: usize, clock: Clock) -> Self {
        Trace {
            inner: Some(Arc::new(Recorder {
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(capacity.max(1)),
                    seq: 0,
                    dropped: 0,
                }),
                cap: capacity.max(1),
                clock,
                open: AtomicU64::new(0),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a point event.
    pub fn instant(&self, name: &'static str, entity: Entity, a: u64, b: u64) {
        if let Some(rec) = &self.inner {
            let now = rec.clock.now();
            rec.push(
                EventKind::Instant,
                now,
                now,
                thread_tag(),
                entity,
                name,
                a,
                b,
            );
        }
    }

    /// Open a span; the returned guard records one `Span` event (with
    /// both endpoints) when dropped. Hold it across the timed region.
    #[must_use = "a span is recorded when the guard drops; binding it to _ closes it immediately"]
    pub fn span(&self, name: &'static str, entity: Entity, a: u64, b: u64) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard {
                rec: None,
                name,
                entity,
                a,
                b,
                t0: 0,
                thread: 0,
            },
            Some(rec) => {
                rec.open.fetch_add(1, Ordering::Relaxed);
                SpanGuard {
                    rec: Some(rec),
                    name,
                    entity,
                    a,
                    b,
                    t0: rec.clock.now(),
                    thread: thread_tag(),
                }
            }
        }
    }

    /// Like [`Trace::span`], but the guard owns its recorder handle, so
    /// it can live inside long-lived structures instead of a stack
    /// frame — the reactor holds one per in-flight response, opened
    /// when transmission starts and closed (possibly many poll
    /// iterations later) when the last byte is written.
    #[must_use = "a span is recorded when the guard drops; binding it to _ closes it immediately"]
    pub fn span_owned(&self, name: &'static str, entity: Entity, a: u64, b: u64) -> OwnedSpan {
        match &self.inner {
            None => OwnedSpan {
                rec: None,
                name,
                entity,
                a,
                b,
                t0: 0,
                thread: 0,
            },
            Some(rec) => {
                rec.open.fetch_add(1, Ordering::Relaxed);
                OwnedSpan {
                    t0: rec.clock.now(),
                    rec: Some(Arc::clone(rec)),
                    name,
                    entity,
                    a,
                    b,
                    thread: thread_tag(),
                }
            }
        }
    }

    /// Copy out the current ring contents, in recording order.
    pub fn snapshot(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(rec) => {
                let ring = rec.ring.lock().unwrap_or_else(|p| p.into_inner());
                ring.events.iter().cloned().collect()
            }
        }
    }

    /// Snapshot wrapped for assertions.
    pub fn query(&self) -> TraceQuery {
        TraceQuery::new(self.snapshot())
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(rec) => rec.ring.lock().unwrap_or_else(|p| p.into_inner()).dropped,
        }
    }

    /// Spans whose guards are currently alive.
    pub fn open_spans(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(rec) => rec.open.load(Ordering::Relaxed),
        }
    }

    /// Drop all recorded events (the sequence counter keeps running).
    pub fn clear(&self) {
        if let Some(rec) = &self.inner {
            let mut ring = rec.ring.lock().unwrap_or_else(|p| p.into_inner());
            ring.events.clear();
        }
    }

    /// Export the current snapshot as JSONL (see [`crate::jsonl`]).
    pub fn to_jsonl(&self) -> String {
        crate::jsonl::to_jsonl(&self.snapshot())
    }
}

/// RAII guard for an open span; see [`Trace::span`].
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    name: &'static str,
    entity: Entity,
    a: u64,
    b: u64,
    t0: u64,
    thread: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            let end = rec.clock.now().max(self.t0);
            rec.push(
                EventKind::Span,
                self.t0,
                end,
                self.thread,
                self.entity,
                self.name,
                self.a,
                self.b,
            );
            rec.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Owning RAII guard for an open span; see [`Trace::span_owned`].
/// Identical semantics to [`SpanGuard`], minus the borrow of the
/// `Trace`, at the cost of one `Arc` clone per span.
pub struct OwnedSpan {
    rec: Option<Arc<Recorder>>,
    name: &'static str,
    entity: Entity,
    a: u64,
    b: u64,
    t0: u64,
    thread: u64,
}

impl OwnedSpan {
    /// Update the span's `b` payload before it closes (the reactor
    /// stamps bytes-written totals it only knows at completion).
    pub fn set_b(&mut self, b: u64) {
        self.b = b;
    }
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        if let Some(rec) = &self.rec {
            let end = rec.clock.now().max(self.t0);
            rec.push(
                EventKind::Span,
                self.t0,
                end,
                self.thread,
                self.entity,
                self.name,
                self.a,
                self.b,
            );
            rec.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.instant("x", Entity::NONE, 0, 0);
        let _g = t.span("y", Entity::NONE, 0, 0);
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Trace::default().is_enabled());
    }

    #[test]
    fn span_records_on_close_with_both_endpoints() {
        let clk = ManualClock::new();
        let t = Trace::recording_with(16, clk.clock());
        clk.set(100);
        let g = t.span("disk.read", Entity::mof(3), 64, 128);
        assert_eq!(t.open_spans(), 1);
        assert!(t.snapshot().is_empty(), "nothing recorded while open");
        clk.set(350);
        drop(g);
        assert_eq!(t.open_spans(), 0);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Span);
        assert_eq!((evs[0].t, evs[0].end), (100, 350));
        assert_eq!(evs[0].duration(), 250);
        assert_eq!(evs[0].entity, Entity::mof(3));
        assert_eq!((evs[0].a, evs[0].b), (64, 128));
    }

    #[test]
    fn owned_span_survives_a_move_and_records_on_close() {
        let clk = ManualClock::new();
        let t = Trace::recording_with(16, clk.clock());
        clk.set(10);
        struct Holder {
            span: OwnedSpan,
        }
        let mut h = Holder {
            span: t.span_owned("net.xmit", Entity::conn(9), 1, 0),
        };
        assert_eq!(t.open_spans(), 1);
        drop(t.clone()); // the guard keeps its own handle
        clk.set(75);
        h.span.set_b(4096);
        drop(h);
        assert_eq!(t.open_spans(), 0);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].t, evs[0].end), (10, 75));
        assert_eq!((evs[0].a, evs[0].b), (1, 4096));
        assert_eq!(evs[0].name, "net.xmit");
    }

    #[test]
    fn owned_span_on_disabled_trace_is_inert() {
        let t = Trace::disabled();
        let s = t.span_owned("x", Entity::NONE, 0, 0);
        drop(s);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn ring_evicts_oldest_first_and_counts_drops() {
        let clk = ManualClock::new();
        let t = Trace::recording_with(3, clk.clock());
        for i in 0..5u64 {
            clk.set(i * 10);
            t.instant("tick", Entity::NONE, i, 0);
        }
        let evs = t.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(evs[0].a, 2, "survivors are the newest");
    }

    #[test]
    fn clones_share_the_ring() {
        let t = Trace::recording(8);
        let t2 = t.clone();
        t.instant("a", Entity::NONE, 0, 0);
        t2.instant("b", Entity::NONE, 0, 0);
        assert_eq!(t.snapshot().len(), 2);
        t.clear();
        assert!(t2.snapshot().is_empty());
    }

    #[test]
    fn wall_clock_spans_have_nonzero_order() {
        let t = Trace::recording(8);
        {
            let _g = t.span("work", Entity::NONE, 0, 0);
            std::thread::yield_now();
        }
        t.instant("after", Entity::NONE, 0, 0);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].end <= evs[1].t || evs[0].end == evs[1].t);
        assert!(evs[0].end >= evs[0].t);
    }

    #[test]
    fn threads_get_distinct_tags() {
        let t = Trace::recording(8);
        t.instant("main", Entity::NONE, 0, 0);
        let t2 = t.clone();
        std::thread::spawn(move || t2.instant("other", Entity::NONE, 0, 0))
            .join()
            .unwrap();
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_ne!(evs[0].thread, evs[1].thread);
    }
}
