//! The event model: what one recorded trace entry looks like.

use std::borrow::Cow;
use std::fmt;

/// What kind of dataplane object an event is about. Keeping this a small
/// closed enum (rather than free-form strings) makes entity filters cheap
/// and keeps the JSONL schema stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityKind {
    /// No particular entity (process-wide events).
    None,
    /// A remote supplier, identified by its TCP port (loopback dataplane)
    /// or node index (simulator).
    Peer,
    /// One accepted server-side connection.
    Conn,
    /// A map output file.
    Mof,
    /// One scheduled fetch operation (client token).
    Op,
    /// One merge input stream.
    Stream,
    /// A buffer pool.
    Pool,
    /// A simulated cluster node.
    Node,
    /// The cluster control plane's supplier registry.
    Registry,
}

impl EntityKind {
    /// Stable lowercase tag used in JSONL and the text timeline.
    pub fn as_str(self) -> &'static str {
        match self {
            EntityKind::None => "none",
            EntityKind::Peer => "peer",
            EntityKind::Conn => "conn",
            EntityKind::Mof => "mof",
            EntityKind::Op => "op",
            EntityKind::Stream => "stream",
            EntityKind::Pool => "pool",
            EntityKind::Node => "node",
            EntityKind::Registry => "registry",
        }
    }

    /// Inverse of [`EntityKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "none" => EntityKind::None,
            "peer" => EntityKind::Peer,
            "conn" => EntityKind::Conn,
            "mof" => EntityKind::Mof,
            "op" => EntityKind::Op,
            "stream" => EntityKind::Stream,
            "pool" => EntityKind::Pool,
            "node" => EntityKind::Node,
            "registry" => EntityKind::Registry,
            _ => return None,
        })
    }
}

/// The dataplane object an event is tagged with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Entity {
    pub kind: EntityKind,
    pub id: u64,
}

impl Entity {
    /// The anonymous entity.
    pub const NONE: Entity = Entity {
        kind: EntityKind::None,
        id: 0,
    };

    pub fn peer(id: u64) -> Self {
        Entity { kind: EntityKind::Peer, id }
    }
    pub fn conn(id: u64) -> Self {
        Entity { kind: EntityKind::Conn, id }
    }
    pub fn mof(id: u64) -> Self {
        Entity { kind: EntityKind::Mof, id }
    }
    pub fn op(id: u64) -> Self {
        Entity { kind: EntityKind::Op, id }
    }
    pub fn stream(id: u64) -> Self {
        Entity { kind: EntityKind::Stream, id }
    }
    pub fn pool(id: u64) -> Self {
        Entity { kind: EntityKind::Pool, id }
    }
    pub fn node(id: u64) -> Self {
        Entity { kind: EntityKind::Node, id }
    }
    pub fn registry(id: u64) -> Self {
        Entity { kind: EntityKind::Registry, id }
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == EntityKind::None {
            f.write_str("none")
        } else {
            write!(f, "{}:{}", self.kind.as_str(), self.id)
        }
    }
}

/// Instant (a point in time) or span (a closed interval). A span is
/// recorded as one event when it closes, carrying both endpoints, so a
/// ring-buffer eviction can never separate a start from its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Instant,
    Span,
}

/// One recorded trace entry.
///
/// `name` is `Cow` so live recording borrows the `&'static str` literal
/// from the instrumentation site (no allocation on the hot path) while
/// the JSONL parser can still materialise owned names that compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense record sequence number; total order of recording, preserved
    /// across ring eviction (evicting drops the lowest sequence numbers).
    pub seq: u64,
    /// Start time, nanoseconds from the trace origin. For instants this
    /// is *the* time.
    pub t: u64,
    /// End time; `end == t` for instants, `end >= t` for spans.
    pub end: u64,
    pub kind: EventKind,
    /// Small dense per-process thread tag (not the OS thread id).
    pub thread: u64,
    pub entity: Entity,
    /// Instrumentation point name, dot-separated (`"disk.read"`).
    pub name: Cow<'static, str>,
    /// First payload word; meaning is per-name (documented at the site).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl Event {
    /// Span length in nanoseconds (0 for instants).
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.t)
    }

    pub fn is_span(&self) -> bool {
        self.kind == EventKind::Span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_kind_tags_round_trip() {
        for kind in [
            EntityKind::None,
            EntityKind::Peer,
            EntityKind::Conn,
            EntityKind::Mof,
            EntityKind::Op,
            EntityKind::Stream,
            EntityKind::Pool,
            EntityKind::Node,
            EntityKind::Registry,
        ] {
            assert_eq!(EntityKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EntityKind::parse("bogus"), None);
    }

    #[test]
    fn entity_display() {
        assert_eq!(Entity::peer(7000).to_string(), "peer:7000");
        assert_eq!(Entity::NONE.to_string(), "none");
    }

    #[test]
    fn borrowed_and_owned_names_compare_equal() {
        let a = Cow::Borrowed("disk.read");
        let b: Cow<'static, str> = Cow::Owned("disk.read".to_string());
        assert_eq!(a, b);
    }
}
