//! # jbs-obs — structured tracing for the shuffle dataplane
//!
//! The aggregate counters in `transport::stats` say *how much* happened;
//! this crate records *when*. Every instrumentation point emits either an
//! instant event or a span (start/end pair captured as one record on
//! close) tagged with a thread id, an [`Entity`] (peer, MOF, connection,
//! …) and two free `u64` payload words. Events land in a bounded ring
//! buffer behind one uncontended mutex — a disabled [`Trace`] is a single
//! `Option` check, so production paths keep their cost when tracing is
//! off.
//!
//! The clock is abstracted: the real dataplane uses a monotonic wall
//! clock anchored at recorder creation, while the deterministic simulator
//! drives a [`ManualClock`] with sim-time nanoseconds so traces are
//! bit-identical across runs.
//!
//! Exporters:
//! * [`jsonl`] — one JSON object per line, hand-rolled (the workspace has
//!   no serde) and round-trippable through [`jsonl::parse_jsonl`];
//! * [`timeline`] — a human-readable text timeline for eyeballs;
//! * [`TraceQuery`] — the programmatic view tests assert against:
//!   entity filters, span-union overlap fractions, inter-arrival and
//!   per-entity positional gaps, happens-before checks.
//!
//! Adding an instrumentation point is two lines: thread a `Trace` handle
//! into the component and call `trace.instant(..)` or hold
//! `trace.span(..)` across the timed region (see `DESIGN.md` §11).

mod clock;
mod event;
pub mod jsonl;
mod query;
mod record;
pub mod timeline;

pub use clock::{Clock, ManualClock};
pub use event::{Entity, EntityKind, Event, EventKind};
pub use query::TraceQuery;
pub use record::{OwnedSpan, SpanGuard, Trace};
