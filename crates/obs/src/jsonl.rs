//! JSONL export/import: one event per line, hand-rolled (the workspace
//! deliberately has no serde), with a parser that round-trips exactly.
//!
//! Line schema (field order fixed, all fields required):
//!
//! ```json
//! {"seq":0,"t":100,"end":250,"kind":"span","thread":1,"entity":"peer:7000","name":"net.xmit","a":0,"b":65536}
//! ```
//!
//! `kind` is `"span"` or `"instant"`; `entity` is `"none"` or
//! `"<kind>:<id>"`. Names are escaped minimally (`\\`, `\"`, `\n`, `\t`,
//! `\r`) so arbitrary strings survive the round trip.

use crate::event::{Entity, EntityKind, Event, EventKind};
use std::borrow::Cow;
use std::fmt;

/// Render events as JSONL, one per line, trailing newline included when
/// non-empty.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        render_event(e, &mut out);
        out.push('\n');
    }
    out
}

fn render_event(e: &Event, out: &mut String) {
    use fmt::Write as _;
    let kind = match e.kind {
        EventKind::Span => "span",
        EventKind::Instant => "instant",
    };
    let _ = write!(
        out,
        "{{\"seq\":{},\"t\":{},\"end\":{},\"kind\":\"{}\",\"thread\":{},\"entity\":\"{}\",\"name\":\"",
        e.seq, e.t, e.end, kind, e.thread, e.entity
    );
    escape_into(&e.name, out);
    let _ = write!(out, "\",\"a\":{},\"b\":{}}}", e.a, e.b);
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

/// Why a JSONL document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jsonl line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSONL document produced by [`to_jsonl`]. Blank lines are
/// skipped; any other deviation from the schema is an error.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line).map_err(|msg| ParseError { line: idx + 1, msg })?);
    }
    Ok(events)
}

struct Scan<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl<'a> Scan<'a> {
    fn new(s: &'a str) -> Self {
        Scan {
            bytes: s.as_bytes(),
            i: 0,
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            ))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn u64(&mut self) -> Result<u64, String> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected digits at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| "non-utf8 digits".to_string())?
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    /// A quoted string with the minimal escapes [`escape_into`] emits.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out).map_err(|_| "non-utf8 string".to_string());
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'\\' => b'\\',
                        b'"' => b'"',
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'r' => b'\r',
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    });
                }
                Some(b) => {
                    self.i += 1;
                    out.push(b);
                }
            }
        }
    }

    /// `"key":` with the given literal key.
    fn key(&mut self, name: &str) -> Result<(), String> {
        let got = self.string()?;
        if got != name {
            return Err(format!("expected key `{name}`, got `{got}`"));
        }
        self.expect(b':')
    }

    fn done(&self) -> bool {
        self.i == self.bytes.len()
    }
}

fn parse_line(line: &str) -> Result<Event, String> {
    let mut s = Scan::new(line.trim());
    s.expect(b'{')?;
    s.key("seq")?;
    let seq = s.u64()?;
    s.expect(b',')?;
    s.key("t")?;
    let t = s.u64()?;
    s.expect(b',')?;
    s.key("end")?;
    let end = s.u64()?;
    s.expect(b',')?;
    s.key("kind")?;
    let kind = match s.string()?.as_str() {
        "span" => EventKind::Span,
        "instant" => EventKind::Instant,
        other => return Err(format!("unknown kind `{other}`")),
    };
    s.expect(b',')?;
    s.key("thread")?;
    let thread = s.u64()?;
    s.expect(b',')?;
    s.key("entity")?;
    let entity = parse_entity(&s.string()?)?;
    s.expect(b',')?;
    s.key("name")?;
    let name = s.string()?;
    s.expect(b',')?;
    s.key("a")?;
    let a = s.u64()?;
    s.expect(b',')?;
    s.key("b")?;
    let b = s.u64()?;
    s.expect(b'}')?;
    if !s.done() {
        return Err("trailing bytes after object".to_string());
    }
    if end < t {
        return Err(format!("span ends before it starts ({end} < {t})"));
    }
    if kind == EventKind::Instant && end != t {
        return Err("instant with end != t".to_string());
    }
    Ok(Event {
        seq,
        t,
        end,
        kind,
        thread,
        entity,
        name: Cow::Owned(name),
        a,
        b,
    })
}

fn parse_entity(s: &str) -> Result<Entity, String> {
    if s == "none" {
        return Ok(Entity::NONE);
    }
    let (kind, id) = s
        .split_once(':')
        .ok_or_else(|| format!("bad entity `{s}`"))?;
    let kind = EntityKind::parse(kind).ok_or_else(|| format!("unknown entity kind `{kind}`"))?;
    if kind == EntityKind::None {
        return Err("`none` takes no id".to_string());
    }
    let id = id.parse().map_err(|e| format!("bad entity id: {e}"))?;
    Ok(Entity { kind, id })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t: u64, end: u64, kind: EventKind, name: &'static str) -> Event {
        Event {
            seq,
            t,
            end,
            kind,
            thread: 1,
            entity: Entity::peer(7000),
            name: Cow::Borrowed(name),
            a: 5,
            b: 6,
        }
    }

    #[test]
    fn round_trips_simple_events() {
        let events = vec![
            ev(0, 10, 20, EventKind::Span, "disk.read"),
            ev(1, 15, 15, EventKind::Instant, "cache.hit"),
        ];
        let text = to_jsonl(&events);
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn round_trips_escaped_names() {
        let mut e = ev(0, 1, 1, EventKind::Instant, "x");
        e.name = Cow::Owned("we\"ird\\na\nme\t!".to_string());
        let text = to_jsonl(std::slice::from_ref(&e));
        assert_eq!(parse_jsonl(&text).unwrap(), vec![e]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_jsonl("{\"seq\":0}").is_err());
        assert!(parse_jsonl("not json").is_err());
        // span that ends before it starts
        let bad = "{\"seq\":0,\"t\":9,\"end\":5,\"kind\":\"span\",\"thread\":0,\"entity\":\"none\",\"name\":\"x\",\"a\":0,\"b\":0}";
        assert!(parse_jsonl(bad).is_err());
    }

    #[test]
    fn skips_blank_lines_and_reports_line_numbers() {
        let text = "\n{\"seq\":0,\"t\":1,\"end\":1,\"kind\":\"instant\",\"thread\":0,\"entity\":\"none\",\"name\":\"x\",\"a\":0,\"b\":0}\n\nbroken\n";
        let err = parse_jsonl(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(parse_jsonl(&text.replace("broken\n", "")).is_ok());
    }

    #[test]
    fn entity_forms() {
        assert_eq!(parse_entity("none").unwrap(), Entity::NONE);
        assert_eq!(parse_entity("mof:3").unwrap(), Entity::mof(3));
        assert!(parse_entity("none:1").is_err());
        assert!(parse_entity("peer").is_err());
        assert!(parse_entity("weird:1").is_err());
    }
}
