//! `TraceQuery`: the programmatic trace view tests assert against.
//!
//! All methods operate on a snapshot (recording order = ascending `seq`)
//! and return plain values, so assertions read as statements about the
//! dataplane's timeline rather than trace plumbing.

use crate::event::{Entity, EntityKind, Event, EventKind};

/// A queryable snapshot of recorded events.
#[derive(Debug, Clone)]
pub struct TraceQuery {
    events: Vec<Event>,
}

impl TraceQuery {
    /// Wrap a snapshot; events are sorted by `seq` (recording order).
    pub fn new(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.seq);
        TraceQuery { events }
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sub-query of events with this exact name.
    pub fn named(&self, name: &str) -> TraceQuery {
        TraceQuery {
            events: self
                .events
                .iter()
                .filter(|e| e.name == name)
                .cloned()
                .collect(),
        }
    }

    /// Sub-query of events tagged with this exact entity.
    pub fn entity(&self, entity: Entity) -> TraceQuery {
        TraceQuery {
            events: self
                .events
                .iter()
                .filter(|e| e.entity == entity)
                .cloned()
                .collect(),
        }
    }

    /// Sub-query of events whose entity has this kind.
    pub fn entity_kind(&self, kind: EntityKind) -> TraceQuery {
        TraceQuery {
            events: self
                .events
                .iter()
                .filter(|e| e.entity.kind == kind)
                .cloned()
                .collect(),
        }
    }

    /// How many events carry this name.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Distinct entities appearing on events with this name, sorted.
    pub fn entities(&self, name: &str) -> Vec<Entity> {
        let mut out: Vec<Entity> = self
            .events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.entity)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Merged (disjoint, sorted) time intervals covered by spans with
    /// this name.
    fn intervals(&self, name: &str) -> Vec<(u64, u64)> {
        let mut ivs: Vec<(u64, u64)> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.name == name && e.end > e.t)
            .map(|e| (e.t, e.end))
            .collect();
        ivs.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ivs.len());
        for (s, e) in ivs {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    }

    /// Total nanoseconds covered by at least one span with this name.
    pub fn union_nanos(&self, name: &str) -> u64 {
        self.intervals(name).iter().map(|(s, e)| e - s).sum()
    }

    /// Nanoseconds during which a span named `a` and a span named `b`
    /// were simultaneously open.
    pub fn overlap_nanos(&self, a: &str, b: &str) -> u64 {
        let (xa, xb) = (self.intervals(a), self.intervals(b));
        let (mut i, mut j, mut total) = (0, 0, 0u64);
        while i < xa.len() && j < xb.len() {
            let lo = xa[i].0.max(xb[j].0);
            let hi = xa[i].1.min(xb[j].1);
            if hi > lo {
                total += hi - lo;
            }
            if xa[i].1 <= xb[j].1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// Overlap between `a`-spans and `b`-spans as a fraction of the
    /// smaller union: 1.0 means the shorter activity ran entirely under
    /// the longer one; 0.0 means they never coincided (or one is absent).
    pub fn overlap_fraction(&self, a: &str, b: &str) -> f64 {
        let denom = self.union_nanos(a).min(self.union_nanos(b));
        if denom == 0 {
            return 0.0;
        }
        self.overlap_nanos(a, b) as f64 / denom as f64
    }

    /// Start-time gaps between consecutive events with this name,
    /// ordered by start time. Empty if fewer than two events match.
    pub fn inter_arrival_gaps(&self, name: &str) -> Vec<u64> {
        let mut ts: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.t)
            .collect();
        ts.sort_unstable();
        ts.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The payload-`b` values of events with this name, in recording
    /// order — handy for asserting schedules (e.g. backoff delays).
    pub fn values_b(&self, name: &str) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.b)
            .collect()
    }

    /// Worst starvation of `entity` in the recording-order sequence of
    /// events named `name`: the maximum number of consecutive positions
    /// (including the run-in before its first appearance and the run-out
    /// after its last) in which the entity does not appear. `None` if the
    /// entity never appears. A perfectly round-robined sequence over `k`
    /// entities yields `k` for each of them.
    pub fn max_positional_gap(&self, name: &str, entity: Entity) -> Option<usize> {
        let seq: Vec<&Event> = self.events.iter().filter(|e| e.name == name).collect();
        let positions: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter(|(_, e)| e.entity == entity)
            .map(|(i, _)| i)
            .collect();
        let first = *positions.first()?;
        let mut worst = first + 1; // run-in: positions 0..=first
        for w in positions.windows(2) {
            worst = worst.max(w[1] - w[0]);
        }
        worst = worst.max(seq.len() - positions.last().unwrap());
        Some(worst)
    }

    /// True when every `a`-event finishes before any `b`-event starts
    /// (and both exist).
    pub fn happens_before(&self, a: &str, b: &str) -> bool {
        let max_end_a = self
            .events
            .iter()
            .filter(|e| e.name == a)
            .map(|e| e.end)
            .max();
        let min_t_b = self
            .events
            .iter()
            .filter(|e| e.name == b)
            .map(|e| e.t)
            .min();
        matches!((max_end_a, min_t_b), (Some(ea), Some(tb)) if ea <= tb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(seq: u64, t: u64, end: u64, name: &'static str, entity: Entity) -> Event {
        Event {
            seq,
            t,
            end,
            kind: EventKind::Span,
            thread: 0,
            entity,
            name: Cow::Borrowed(name),
            a: 0,
            b: 0,
        }
    }

    fn instant(seq: u64, t: u64, name: &'static str, entity: Entity) -> Event {
        Event {
            seq,
            t,
            end: t,
            kind: EventKind::Instant,
            thread: 0,
            entity,
            name: Cow::Borrowed(name),
            a: 0,
            b: seq,
        }
    }

    #[test]
    fn union_merges_overlapping_spans() {
        let q = TraceQuery::new(vec![
            span(0, 0, 10, "read", Entity::mof(0)),
            span(1, 5, 20, "read", Entity::mof(1)),
            span(2, 30, 40, "read", Entity::mof(0)),
        ]);
        assert_eq!(q.union_nanos("read"), 30); // [0,20) + [30,40)
    }

    #[test]
    fn overlap_fraction_full_partial_none() {
        let q = TraceQuery::new(vec![
            span(0, 0, 100, "read", Entity::NONE),
            span(1, 40, 60, "xmit", Entity::NONE),
        ]);
        assert_eq!(q.overlap_nanos("read", "xmit"), 20);
        assert!((q.overlap_fraction("read", "xmit") - 1.0).abs() < 1e-9);

        let q = TraceQuery::new(vec![
            span(0, 0, 100, "read", Entity::NONE),
            span(1, 50, 150, "xmit", Entity::NONE),
        ]);
        assert!((q.overlap_fraction("read", "xmit") - 0.5).abs() < 1e-9);

        let q = TraceQuery::new(vec![
            span(0, 0, 10, "read", Entity::NONE),
            span(1, 10, 20, "xmit", Entity::NONE),
        ]);
        assert_eq!(q.overlap_fraction("read", "xmit"), 0.0);
        assert_eq!(q.overlap_fraction("read", "absent"), 0.0);
    }

    #[test]
    fn instants_do_not_contribute_to_unions() {
        let q = TraceQuery::new(vec![instant(0, 5, "read", Entity::NONE)]);
        assert_eq!(q.union_nanos("read"), 0);
    }

    #[test]
    fn inter_arrival_gaps_sorted_by_time() {
        let q = TraceQuery::new(vec![
            instant(2, 30, "tick", Entity::NONE),
            instant(0, 0, "tick", Entity::NONE),
            instant(1, 10, "tick", Entity::NONE),
        ]);
        assert_eq!(q.inter_arrival_gaps("tick"), vec![10, 20]);
        assert!(q.inter_arrival_gaps("absent").is_empty());
    }

    #[test]
    fn positional_gap_of_round_robin_is_entity_count() {
        // dispatch order: p0 p1 p2 p0 p1 p2 p0 p1 p2
        let evs: Vec<Event> = (0..9)
            .map(|i| instant(i, i * 10, "dispatch", Entity::peer(i % 3)))
            .collect();
        let q = TraceQuery::new(evs);
        for p in 0..3 {
            assert_eq!(q.max_positional_gap("dispatch", Entity::peer(p)), Some(3));
        }
        assert_eq!(q.max_positional_gap("dispatch", Entity::peer(9)), None);
    }

    #[test]
    fn positional_gap_detects_starvation() {
        // p1 starved: p0 p0 p0 p0 p1
        let mut evs: Vec<Event> = (0..4)
            .map(|i| instant(i, i, "dispatch", Entity::peer(0)))
            .collect();
        evs.push(instant(4, 4, "dispatch", Entity::peer(1)));
        let q = TraceQuery::new(evs);
        assert_eq!(q.max_positional_gap("dispatch", Entity::peer(1)), Some(5));
        assert_eq!(q.max_positional_gap("dispatch", Entity::peer(0)), Some(2));
    }

    #[test]
    fn happens_before_requires_strict_separation() {
        let q = TraceQuery::new(vec![
            span(0, 0, 10, "setup", Entity::NONE),
            span(1, 10, 20, "work", Entity::NONE),
        ]);
        assert!(q.happens_before("setup", "work"));
        assert!(!q.happens_before("work", "setup"));
        assert!(!q.happens_before("setup", "absent"));
    }

    #[test]
    fn filters_compose() {
        let q = TraceQuery::new(vec![
            instant(0, 0, "get", Entity::pool(0)),
            instant(1, 1, "get", Entity::pool(1)),
            instant(2, 2, "put", Entity::pool(0)),
        ]);
        assert_eq!(q.named("get").len(), 2);
        assert_eq!(q.entity(Entity::pool(0)).len(), 2);
        assert_eq!(q.named("get").entity(Entity::pool(0)).len(), 1);
        assert_eq!(q.entity_kind(EntityKind::Pool).len(), 3);
        assert_eq!(q.entities("get"), vec![Entity::pool(0), Entity::pool(1)]);
        assert_eq!(q.values_b("get"), vec![0, 1]);
    }
}
