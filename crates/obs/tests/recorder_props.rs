//! Property tests of the trace recorder and exporters:
//!
//! * span guards always balance — after any sequence of opens/closes the
//!   open-span gauge is zero and every recorded span has `end >= t`, with
//!   properly nested same-thread spans;
//! * ring eviction drops oldest-first (a contiguous prefix of sequence
//!   numbers) and never tears a span pair, because spans are recorded as
//!   one event on close;
//! * JSONL export round-trips through the parser for arbitrary events,
//!   including hostile names that need escaping.

use jbs_obs::{jsonl, Entity, EntityKind, Event, EventKind, ManualClock, Trace, TraceQuery};
use proptest::prelude::*;
use std::borrow::Cow;

/// Drive a trace with a script of open(true)/close(false) steps on one
/// thread, clock advancing each step; returns (snapshot, dropped,
/// open-after-script).
fn run_script(cap: usize, script: &[bool]) -> (Vec<Event>, u64, u64) {
    let clk = ManualClock::new();
    let trace = Trace::recording_with(cap, clk.clock());
    {
        let mut stack = Vec::new();
        for (i, &open) in script.iter().enumerate() {
            clk.advance(10);
            if open {
                stack.push(trace.span("work", Entity::op(i as u64), i as u64, 0));
            } else if let Some(g) = stack.pop() {
                drop(g);
            } else {
                trace.instant("tick", Entity::NONE, i as u64, 0);
            }
        }
        // Close whatever is still open, innermost first (stack drop order).
        while let Some(g) = stack.pop() {
            clk.advance(10);
            drop(g);
        }
    }
    let open = trace.open_spans();
    (trace.snapshot(), trace.dropped(), open)
}

proptest! {
    /// After any open/close script, the open gauge is zero, every span
    /// is well-formed, and same-thread spans are properly nested:
    /// any two are disjoint or one contains the other.
    #[test]
    fn spans_balance_and_nest(script in prop::collection::vec(any::<bool>(), 0..64)) {
        let (snapshot, _, open) = run_script(1024, &script);
        prop_assert_eq!(open, 0);
        let spans: Vec<Event> = snapshot
            .into_iter()
            .filter(|e| e.kind == EventKind::Span)
            .collect();
        for s in &spans {
            prop_assert!(s.end >= s.t);
        }
        for (i, x) in spans.iter().enumerate() {
            for y in &spans[i + 1..] {
                let disjoint = x.end <= y.t || y.end <= x.t;
                let x_in_y = y.t <= x.t && x.end <= y.end;
                let y_in_x = x.t <= y.t && y.end <= x.end;
                prop_assert!(
                    disjoint || x_in_y || y_in_x,
                    "spans cross: [{},{}) vs [{},{})", x.t, x.end, y.t, y.end
                );
            }
        }
    }

    /// Eviction keeps exactly the newest `cap` events: sequence numbers
    /// in the snapshot are contiguous, end at the newest record, and the
    /// dropped counter accounts for the difference. Span records survive
    /// whole (both endpoints) or not at all — there is nothing to tear.
    #[test]
    fn eviction_drops_oldest_first(
        cap in 1usize..32,
        script in prop::collection::vec(any::<bool>(), 0..128),
    ) {
        let (evs, dropped, _) = run_script(cap, &script);
        prop_assert!(evs.len() <= cap);
        let total = evs.len() as u64 + dropped;
        for (i, e) in evs.iter().enumerate() {
            prop_assert_eq!(e.seq, dropped + i as u64);
            if e.kind == EventKind::Span {
                prop_assert!(e.end >= e.t, "surviving span is whole");
            }
        }
        if let Some(last) = evs.last() {
            prop_assert_eq!(last.seq + 1, total);
        }
    }

    /// JSONL round-trips arbitrary events exactly, names included.
    #[test]
    fn jsonl_round_trips(
        raw in prop::collection::vec(
            ((any::<u64>(), any::<u64>(), any::<bool>()),
             (any::<u64>(), 0u8..8, any::<u64>()),
             (prop::collection::vec(32u8..127, 0..24), any::<u64>(), any::<u64>())),
            0..20,
        )
    ) {
        let events: Vec<Event> = raw
            .into_iter()
            .enumerate()
            .map(|(i, ((t, dur, is_span), (thread, ek, id), (name, a, b)))| {
                let kind = if is_span { EventKind::Span } else { EventKind::Instant };
                let end = if is_span { t.saturating_add(dur) } else { t };
                let ekind = match ek {
                    0 => EntityKind::None,
                    1 => EntityKind::Peer,
                    2 => EntityKind::Conn,
                    3 => EntityKind::Mof,
                    4 => EntityKind::Op,
                    5 => EntityKind::Stream,
                    6 => EntityKind::Pool,
                    _ => EntityKind::Node,
                };
                let entity = if ekind == EntityKind::None {
                    Entity::NONE
                } else {
                    Entity { kind: ekind, id }
                };
                Event {
                    seq: i as u64,
                    t,
                    end,
                    kind,
                    thread,
                    entity,
                    name: Cow::Owned(String::from_utf8(name).unwrap()),
                    a,
                    b,
                }
            })
            .collect();
        let text = jsonl::to_jsonl(&events);
        let back = jsonl::parse_jsonl(&text).unwrap();
        prop_assert_eq!(back, events);
    }

    /// Names that need escaping (quotes, backslashes, control chars)
    /// still round-trip.
    #[test]
    fn jsonl_round_trips_hostile_names(
        chunks in prop::collection::vec(0u8..6, 1..24),
    ) {
        let name: String = chunks
            .iter()
            .map(|c| ["\"", "\\", "\n", "\t", "\r", "x"][*c as usize])
            .collect();
        let e = Event {
            seq: 0,
            t: 1,
            end: 1,
            kind: EventKind::Instant,
            thread: 0,
            entity: Entity::peer(1),
            name: Cow::Owned(name),
            a: 0,
            b: 0,
        };
        let text = jsonl::to_jsonl(std::slice::from_ref(&e));
        prop_assert_eq!(jsonl::parse_jsonl(&text).unwrap(), vec![e]);
    }

    /// TraceQuery's overlap machinery agrees with a brute-force sweep
    /// over nanosecond ticks on small inputs.
    #[test]
    fn overlap_matches_brute_force(
        reads in prop::collection::vec((0u64..64, 0u64..16), 0..6),
        xmits in prop::collection::vec((0u64..64, 0u64..16), 0..6),
    ) {
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut covered = |list: &[(u64, u64)], name: &'static str, events: &mut Vec<Event>| {
            let mut mask = [false; 96];
            for &(t, d) in list {
                events.push(Event {
                    seq, t, end: t + d, kind: EventKind::Span,
                    thread: 0, entity: Entity::NONE,
                    name: Cow::Borrowed(name), a: 0, b: 0,
                });
                seq += 1;
                for slot in mask.iter_mut().take((t + d) as usize).skip(t as usize) {
                    *slot = true;
                }
            }
            mask
        };
        let rmask = covered(&reads, "read", &mut events);
        let xmask = covered(&xmits, "xmit", &mut events);
        let q = TraceQuery::new(events);
        let expect_union = rmask.iter().filter(|&&b| b).count() as u64;
        let expect_overlap = rmask.iter().zip(&xmask).filter(|(&r, &x)| r && x).count() as u64;
        prop_assert_eq!(q.union_nanos("read"), expect_union);
        prop_assert_eq!(q.overlap_nanos("read", "xmit"), expect_overlap);
    }
}
