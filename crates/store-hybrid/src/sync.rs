//! Synchronization layer for the hybrid store, swappable to the loom
//! model checker.
//!
//! Every mutex in this crate is acquired through [`lock`], which gives
//! the crate the same two properties as the transport dataplane's
//! `sync.rs`:
//!
//! * **poison tolerance** — a panicking writer must not wedge the store
//!   for every later reader (the guarded state is a cache of partition
//!   bytes plus counters, not an invariant a panic can half-update:
//!   every mutation commits its counters and its bytes in one step);
//! * **a syntactic anchor** — `cargo xtask analyze`'s lock-order lint
//!   treats each `lock(&path)` call as an acquisition of the lock named
//!   by `path`'s last segment and checks the crate-wide acquisition
//!   graph against the documented order in `crates/xtask/allow.toml`
//!   (`inner` before `objects`; neither held across file I/O).
//!
//! Building with `RUSTFLAGS="--cfg loom"` swaps these types for the
//! vendored loom model checker's (see `shims/loom`), under which the
//! `loom_` tests in [`crate::store`] explore every bounded interleaving
//! of the writer/flusher spill handoff — the condvar below is the
//! primitive the `shims/loom` `Condvar` was added for.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock a mutex, tolerating poison.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wait on `cv` until woken, tolerating poison.
pub(crate) fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}
