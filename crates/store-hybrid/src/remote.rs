//! Simulated REMOTE tier: a directory of per-partition objects.
//!
//! Each object `part-{mof}-{reducer}.obj` holds that partition's full
//! byte prefix at the moment it was drained, so a partition's logical
//! offset `o` is the object offset `o` — no extra index is needed. The
//! directory outlives the store that wrote it: quick decommission
//! drains every partition here, and a replacement supplier re-attaches
//! with [`crate::HybridStore::attach_remote`].

use crate::crash::{self, crash_error, CrashPlan, CrashSite};
use crate::sync::{lock, Mutex};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub(crate) struct RemoteStore {
    dir: PathBuf,
    /// Object lengths by partition; the `objects` lock is never held
    /// together with the store's `inner` lock (file reads resolve the
    /// path without consulting the map at all).
    objects: Mutex<HashMap<(u64, u32), u64>>,
}

impl RemoteStore {
    /// Open (or create) the object directory, indexing what's there.
    pub(crate) fn at(dir: &Path) -> io::Result<RemoteStore> {
        fs::create_dir_all(dir)?;
        let mut map = HashMap::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(key) = parse_object_name(&name.to_string_lossy()) {
                map.insert(key, entry.metadata()?.len());
            }
        }
        Ok(RemoteStore {
            dir: dir.to_path_buf(),
            objects: Mutex::new(map),
        })
    }

    fn path(&self, mof: u64, reducer: u32) -> PathBuf {
        self.dir.join(format!("part-{mof}-{reducer}.obj"))
    }

    /// Store (or replace) the object for one partition, crash-atomically:
    /// the bytes go to a `.tmp` sibling, are fsynced, and only then does
    /// the publishing rename make the object name appear — a crash at any
    /// point leaves either the old object or a `.tmp` that recovery sweeps
    /// away, never a torn object.
    pub(crate) fn put(
        &self,
        mof: u64,
        reducer: u32,
        bytes: &[u8],
        crash_plan: &Option<Arc<CrashPlan>>,
    ) -> io::Result<()> {
        let tmp = self.dir.join(format!("part-{mof}-{reducer}.obj.tmp"));
        let dst = self.path(mof, reducer);
        let mut f = fs::File::create(&tmp)?;
        if crash::check(crash_plan, CrashSite::RemoteTmpWrite) {
            // Simulated kill mid-write: a torn prefix stays in the .tmp.
            let keep = bytes.get(..bytes.len() / 2).unwrap_or(bytes);
            let _ = f.write_all(keep);
            return Err(crash_error());
        }
        f.write_all(bytes)?;
        if crash::check(crash_plan, CrashSite::RemoteTmpSync) {
            return Err(crash_error());
        }
        f.sync_all()?;
        drop(f);
        if crash::check(crash_plan, CrashSite::RemoteRename) {
            return Err(crash_error());
        }
        fs::rename(&tmp, &dst)?;
        // Make the rename itself durable where the platform allows
        // fsyncing a directory handle (Linux does).
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let mut objects = lock(&self.objects);
        objects.insert((mof, reducer), bytes.len() as u64);
        Ok(())
    }

    /// Sweep unpublished `.tmp` objects a crash left behind.
    pub(crate) fn clean_tmp(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".obj.tmp") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// The indexed length of one partition's object, if present.
    pub(crate) fn object_len(&self, mof: u64, reducer: u32) -> Option<u64> {
        let objects = lock(&self.objects);
        objects.get(&(mof, reducer)).copied()
    }

    /// Read `len` bytes at `offset` of one partition's object.
    pub(crate) fn read(&self, mof: u64, reducer: u32, offset: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut f = fs::File::open(self.path(mof, reducer))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Every stored partition with its object length, sorted.
    pub(crate) fn list(&self) -> Vec<((u64, u32), u64)> {
        let objects = lock(&self.objects);
        let mut v: Vec<_> = objects.iter().map(|(k, l)| (*k, *l)).collect();
        drop(objects);
        v.sort_unstable();
        v
    }
}

/// Parse `part-{mof}-{reducer}.obj`; anything else is ignored.
fn parse_object_name(name: &str) -> Option<(u64, u32)> {
    let rest = name.strip_prefix("part-")?.strip_suffix(".obj")?;
    let (mof, reducer) = rest.split_once('-')?;
    Some((mof.parse().ok()?, reducer.parse().ok()?))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn object_names_round_trip() {
        assert_eq!(parse_object_name("part-3-7.obj"), Some((3, 7)));
        assert_eq!(parse_object_name("part-3.obj"), None);
        assert_eq!(parse_object_name("spill.data"), None);
        assert_eq!(parse_object_name("part-x-7.obj"), None);
    }

    #[test]
    fn put_read_and_reattach() {
        let dir = std::env::temp_dir().join(format!("jbs-remote-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RemoteStore::at(&dir).unwrap();
        store.put(1, 2, b"hello world", &None).unwrap();
        assert_eq!(store.read(1, 2, 6, 5).unwrap(), b"world");
        // A second store over the same dir sees the object.
        let again = RemoteStore::at(&dir).unwrap();
        assert_eq!(again.list(), vec![((1, 2), 11)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_put_leaves_old_object_and_a_sweepable_tmp() {
        let dir = std::env::temp_dir().join(format!("jbs-remote-crash-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RemoteStore::at(&dir).unwrap();
        store.put(1, 2, b"old bytes", &None).unwrap();
        let plan = Some(CrashPlan::at(CrashSite::RemoteRename, 0));
        assert!(store.put(1, 2, b"new bytes!", &plan).is_err());
        // The publishing rename never ran: the old object is intact and
        // the complete .tmp sits beside it.
        assert_eq!(store.read(1, 2, 0, 9).unwrap(), b"old bytes");
        assert!(dir.join("part-1-2.obj.tmp").exists());
        store.clean_tmp().unwrap();
        assert!(!dir.join("part-1-2.obj.tmp").exists());
        // A reattach ignores tmp names entirely.
        let plan = Some(CrashPlan::at(CrashSite::RemoteTmpWrite, 0));
        assert!(store.put(3, 4, b"torn", &plan).is_err());
        let again = RemoteStore::at(&dir).unwrap();
        assert_eq!(again.list(), vec![((1, 2), 9)]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
