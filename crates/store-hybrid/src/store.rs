//! The three-tier hybrid store: MEMORY / LOCALFILE / REMOTE.
//!
//! Incoming partition writes land in a bounded in-memory buffer (the
//! MEMORY tier). When usage trips the high watermark — or one partition
//! outgrows the huge-partition limit — buffers are sealed one at a time
//! and flushed in batched sequential writes to a single append-only
//! spill file (the LOCALFILE tier) until usage is back under the low
//! watermark. [`HybridStore::drain_to_remote`] moves everything to the
//! REMOTE tier's per-partition objects for quick decommission, and
//! [`HybridStore::attach_remote`] rebuilds a store over a surviving
//! remote directory.
//!
//! ## Tier state machine (per partition)
//!
//! A partition's bytes are always, in logical offset order:
//!
//! ```text
//! [ durable extents (LOCALFILE / REMOTE) | sealed spill buffer | active buffer ]
//!   0 .. durable_len                       spilling               buffer
//! ```
//!
//! Durable extents are immutable once committed; the sealed buffer
//! stays readable (and counted against the memory budget) until its
//! file write completes and the extent commits under the lock — so a
//! reader can never observe a torn segment mid-spill. Every mutation
//! commits bytes and counters in one critical section, which is what
//! the stats-coherence property (`memory + spilled + remote ==
//! total_written`) tests.
//!
//! ## Locking
//!
//! One mutex (`inner`) guards all partition state and counters; it is
//! never held across file I/O (spill writes and reads plan under the
//! lock, perform I/O unlocked, and re-lock to commit). A single-flusher
//! token (`spill_active`) serializes all writers of the spill file; the
//! condvar hands off between tripping writers, the flusher, and
//! backpressured appenders — the handoff the `loom_` models explore.

use crate::config::{DiskFaultInjector, DiskWriteFault, DiskWriteSite, HybridConfig, SpillGate};
use crate::crash::{self, crash_error, CrashSite};
use crate::manifest::{self, ManifestWriter};
use crate::remote::RemoteStore;
use crate::sync::{lock, wait, Condvar, Mutex, MutexGuard};
use jbs_checksum::{crc32c, Crc32c};
use jbs_obs::Entity;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

type Key = (u64, u32);

/// RAII append permit around one spill write: acquired (blocking) from
/// the configured [`SpillGate`] if any, released on drop — including
/// every early-error return out of `write_local`.
struct GatePermit<'a>(Option<&'a dyn SpillGate>);

impl<'a> GatePermit<'a> {
    fn take(gate: Option<&'a dyn SpillGate>) -> Self {
        if let Some(g) = gate {
            g.acquire_append();
        }
        GatePermit(gate)
    }
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        if let Some(g) = self.0 {
            g.release_append();
        }
    }
}

/// Where a committed extent's bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// In the spill file, at `file_off`.
    Local { file_off: u64 },
    /// In the partition's remote object (object offset == partition
    /// offset, since remote extents always cover the whole prefix).
    Remote,
}

/// One committed, immutable run of partition bytes.
#[derive(Debug, Clone, Copy)]
struct Extent {
    /// Logical offset within the partition.
    offset: u64,
    len: u64,
    place: Place,
}

#[derive(Default)]
struct Partition {
    /// Committed extents, contiguous from offset 0.
    extents: Vec<Extent>,
    /// Total length of `extents`.
    durable_len: u64,
    /// A sealed buffer mid-flush: still readable, still counted
    /// against the memory budget until its extent commits.
    spilling: Option<Arc<Vec<u8>>>,
    /// The active in-memory tail.
    buffer: Vec<u8>,
}

impl Partition {
    fn mem_len(&self) -> usize {
        self.buffer.len() + self.spilling.as_ref().map_or(0, |s| s.len())
    }

    fn total_len(&self) -> u64 {
        self.durable_len + self.mem_len() as u64
    }
}

#[derive(Default)]
struct Counters {
    total_written: u64,
    spilled_bytes: u64,
    remote_bytes: u64,
    memory_hits: u64,
    local_hits: u64,
    remote_hits: u64,
    spill_trips: u64,
    buffers_flushed: u64,
    huge_forced: u64,
    direct_writes: u64,
    drains: u64,
    replica_drops: u64,
    replica_dropped_bytes: u64,
}

struct Inner {
    parts: BTreeMap<Key, Partition>,
    /// Partitions the control plane confirmed are fully replicated on
    /// another live supplier. A decommission drain *drops* these
    /// instead of pushing their bytes to the REMOTE tier — the replica
    /// already serves them.
    replicated: BTreeSet<Key>,
    /// Bytes currently resident in the MEMORY tier (buffers + sealed
    /// spill buffers). Never exceeds the budget.
    memory_used: usize,
    /// Append offset of the spill file.
    local_len: u64,
    /// Single-flusher token: at most one thread writes the spill file.
    spill_active: bool,
    /// Largest append currently blocked on backpressure; a spill trip
    /// drains far enough to admit it, then resets it to zero.
    pressure: usize,
    shutdown: bool,
    /// A spill-path I/O failure; appends report it instead of blocking.
    failed: Option<io::ErrorKind>,
    stats: Counters,
}

/// A point-in-time view of tier residency and hit counters.
///
/// Residency is conserved after every operation: `memory_bytes +
/// spilled_bytes + remote_bytes + replica_dropped_bytes ==
/// total_written` (the last term is zero unless a replica-aware drain
/// dropped partitions that live on another supplier).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStatsSnapshot {
    /// Total bytes ever appended.
    pub total_written: u64,
    /// Bytes resident in the MEMORY tier.
    pub memory_bytes: u64,
    /// Bytes resident in the LOCALFILE tier.
    pub spilled_bytes: u64,
    /// Bytes resident in the REMOTE tier.
    pub remote_bytes: u64,
    /// Reads that served at least one byte from memory.
    pub memory_hits: u64,
    /// Reads that touched the spill file.
    pub local_hits: u64,
    /// Reads that touched a remote object.
    pub remote_hits: u64,
    /// Watermark/huge/pressure spill trips (one `tier.spill` span each).
    pub spill_trips: u64,
    /// Sealed buffers flushed across all trips.
    pub buffers_flushed: u64,
    /// Buffers flushed because their partition broke the huge limit.
    pub huge_forced: u64,
    /// Oversize appends written straight to the LOCALFILE tier.
    pub direct_writes: u64,
    /// Completed [`HybridStore::drain_to_remote`] calls.
    pub drains: u64,
    /// Partitions a drain dropped instead of moving because a live
    /// replica holds them (see [`HybridStore::mark_replicated`]).
    pub replica_drops: u64,
    /// Bytes released by those drops; balances the residency identity.
    pub replica_dropped_bytes: u64,
}

/// Per-partition tier residency, for tests and tier-placement claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierLayout {
    /// Bytes in the MEMORY tier (active + sealed buffers).
    pub memory: u64,
    /// Bytes in LOCALFILE extents.
    pub local: u64,
    /// Bytes in REMOTE extents.
    pub remote: u64,
}

/// What a [`HybridStore::recover`] scan found and rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Durable bytes rebuilt into servable extents.
    pub recovered_bytes: u64,
    /// Partitions with at least one recovered byte.
    pub recovered_partitions: u64,
    /// Recovered LOCALFILE extents.
    pub local_extents: u64,
    /// Recovered partitions whose prefix lives in a REMOTE object.
    pub remote_partitions: u64,
    /// Whether the manifest had a torn tail (truncated away).
    pub torn_tail: bool,
    /// Extent records dropped because their data failed CRC
    /// verification or broke prefix contiguity.
    pub dropped_extents: u64,
    /// Non-extent records ignored as unsupported by the on-disk state
    /// (e.g. a RemoteMoved whose object never got published).
    pub dropped_records: u64,
}

/// Per-partition state accumulated while replaying the manifest.
#[derive(Default)]
struct Rebuilt {
    extents: Vec<Extent>,
    durable_len: u64,
    /// Set when an extent record was dropped: later extents for this
    /// partition can no longer extend a contiguous prefix.
    sealed: bool,
}

/// A read piece planned under the lock, resolved after unlocking.
enum Piece {
    Copied(Vec<u8>),
    Local { file_off: u64, len: u64 },
    Remote { offset: u64, len: u64 },
}

/// Outcome of one drain commit attempt (see
/// [`HybridStore::drain_to_remote`]).
enum DrainStep {
    /// Partition fully moved (or vanished); advance to the next key.
    Done,
    /// An append raced the object write; re-plan this partition.
    Retry,
    /// The object write failed; abort the drain.
    Failed(io::Error),
}

/// Stream `len` bytes at `file_off` of the spill file through CRC32C;
/// `true` iff they exist and hash to `want`. Any read failure counts as
/// a mismatch — the extent is dropped, never served torn.
fn verify_extent(f: &mut fs::File, file_off: u64, len: u64, want: u32) -> bool {
    if f.seek(SeekFrom::Start(file_off)).is_err() {
        return false;
    }
    let mut hasher = Crc32c::new();
    let mut buf = vec![0u8; (1usize << 20).min(len as usize).max(1)];
    let mut left = len;
    while left > 0 {
        let take = (buf.len() as u64).min(left) as usize;
        let Some(chunk) = buf.get_mut(..take) else {
            return false;
        };
        if f.read_exact(chunk).is_err() {
            return false;
        }
        hasher.update(chunk);
        left -= take as u64;
    }
    hasher.finish() == want
}

/// Decide the fate of one durable disk write under the configured
/// injector (no injector: always [`DiskWriteFault::Allow`]).
fn fault(inj: &Option<Arc<dyn DiskFaultInjector>>, site: DiskWriteSite) -> DiskWriteFault {
    inj.as_ref()
        .map_or(DiskWriteFault::Allow, |i| i.disk_write(site))
}

/// Build a [`TierStatsSnapshot`] from the locked state.
fn snapshot_of(g: &Inner) -> TierStatsSnapshot {
    TierStatsSnapshot {
        total_written: g.stats.total_written,
        memory_bytes: g.memory_used as u64,
        spilled_bytes: g.stats.spilled_bytes,
        remote_bytes: g.stats.remote_bytes,
        memory_hits: g.stats.memory_hits,
        local_hits: g.stats.local_hits,
        remote_hits: g.stats.remote_hits,
        spill_trips: g.stats.spill_trips,
        buffers_flushed: g.stats.buffers_flushed,
        huge_forced: g.stats.huge_forced,
        direct_writes: g.stats.direct_writes,
        drains: g.stats.drains,
        replica_drops: g.stats.replica_drops,
        replica_dropped_bytes: g.stats.replica_dropped_bytes,
    }
}

/// The three-tier hybrid store. See the module docs for the tier state
/// machine; construct with [`HybridStore::new`] or
/// [`HybridStore::attach_remote`].
pub struct HybridStore {
    cfg: HybridConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
    data_dir: PathBuf,
    owns_data_dir: bool,
    remote: RemoteStore,
    remote_dir: PathBuf,
    owns_remote_dir: bool,
    /// The durable manifest writer (`None` when `durable_spill` is
    /// off). A leaf lock, never taken with `inner` held; all appends
    /// additionally run under the `spill_active` token, so records land
    /// in commit order.
    manifest: Mutex<Option<ManifestWriter>>,
}

impl std::fmt::Debug for HybridStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridStore")
            .field("data_dir", &self.data_dir)
            .field("remote_dir", &self.remote_dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl HybridStore {
    /// Create an empty store. With `background_flush` a dedicated
    /// flusher thread is spawned (not under `--cfg loom`, where the
    /// models drive [`HybridStore::flusher_loop`] themselves); call
    /// [`HybridStore::close`] to let it exit and release its handle.
    pub fn new(cfg: HybridConfig) -> io::Result<Arc<HybridStore>> {
        cfg.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let (data_dir, owns_data_dir) = match &cfg.data_dir {
            Some(d) => (d.clone(), false),
            None => (
                std::env::temp_dir().join(format!("jbs-hybrid-{}-{n}", std::process::id())),
                true,
            ),
        };
        let (remote_dir, owns_remote_dir) = match &cfg.remote_dir {
            Some(d) => (d.clone(), false),
            None => (
                std::env::temp_dir().join(format!("jbs-hybrid-remote-{}-{n}", std::process::id())),
                true,
            ),
        };
        fs::create_dir_all(&data_dir)?;
        fs::File::create(data_dir.join("spill.data"))?;
        let manifest_path = data_dir.join(manifest::MANIFEST_FILE);
        let manifest = if cfg.durable_spill {
            Some(ManifestWriter::create(
                &manifest_path,
                cfg.manifest_sync_interval,
            )?)
        } else {
            // A fresh non-durable store over a reused dir must not
            // leave a stale manifest for a later recover() to trust.
            match fs::remove_file(&manifest_path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            None
        };
        let remote = RemoteStore::at(&remote_dir)?;
        let store = Arc::new(HybridStore {
            cfg,
            inner: Mutex::new(Inner {
                parts: BTreeMap::new(),
                replicated: BTreeSet::new(),
                memory_used: 0,
                local_len: 0,
                spill_active: false,
                pressure: 0,
                shutdown: false,
                failed: None,
                stats: Counters::default(),
            }),
            cv: Condvar::new(),
            data_dir,
            owns_data_dir,
            remote,
            remote_dir,
            owns_remote_dir,
            manifest: Mutex::new(manifest),
        });
        #[cfg(not(loom))]
        if store.cfg.background_flush {
            let s = Arc::clone(&store);
            std::thread::Builder::new()
                .name("hybrid-flusher".into())
                .spawn(move || s.flusher_loop())
                .map_err(io::Error::other)?;
        }
        Ok(store)
    }

    /// Rebuild a store over a surviving REMOTE directory: every listed
    /// object becomes a fully-remote partition (the decommissioned
    /// supplier's replacement path).
    pub fn attach_remote(remote_dir: &Path, mut cfg: HybridConfig) -> io::Result<Arc<HybridStore>> {
        cfg.remote_dir = Some(remote_dir.to_path_buf());
        let store = HybridStore::new(cfg)?;
        {
            let mut g = lock(&store.inner);
            for ((mof, reducer), len) in store.remote.list() {
                let part = g.parts.entry((mof, reducer)).or_default();
                part.extents.push(Extent {
                    offset: 0,
                    len,
                    place: Place::Remote,
                });
                part.durable_len = len;
                g.stats.total_written += len;
                g.stats.remote_bytes += len;
            }
        }
        Ok(store)
    }

    /// Rebuild a store from a crashed supplier's surviving LOCALFILE
    /// directory (`cfg.data_dir` is required; `cfg.remote_dir` too if
    /// the dead store ever drained). The durable manifest is replayed
    /// under the torn-tail rule — the scan stops at the first
    /// CRC-invalid frame and truncates the log there — and every extent
    /// record is re-verified against the spill file's actual bytes, so
    /// the recovered store serves byte-exact committed prefixes or
    /// cleanly reports a partition absent, never torn data. Memory-tier
    /// bytes are gone by definition; replica failover covers them.
    pub fn recover(cfg: HybridConfig) -> io::Result<(Arc<HybridStore>, RecoveryReport)> {
        cfg.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let Some(data_dir) = cfg.data_dir.clone() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "recover requires cfg.data_dir",
            ));
        };
        let trace = cfg.trace.clone();
        let span = trace.span("store.recover", Entity::NONE, 0, 0);
        let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let (remote_dir, owns_remote_dir) = match &cfg.remote_dir {
            Some(d) => (d.clone(), false),
            None => (
                std::env::temp_dir().join(format!("jbs-hybrid-remote-{}-{n}", std::process::id())),
                true,
            ),
        };
        fs::create_dir_all(&data_dir)?;
        let remote = RemoteStore::at(&remote_dir)?;
        remote.clean_tmp()?;
        let manifest_path = data_dir.join(manifest::MANIFEST_FILE);
        let scan = manifest::scan(&manifest_path)?;
        if scan.torn {
            // Truncate the torn tail so the continued log stays parseable.
            let f = fs::OpenOptions::new().write(true).open(&manifest_path)?;
            f.set_len(scan.valid_len)?;
            f.sync_all()?;
            trace.instant("recover.torn", Entity::NONE, scan.valid_len, 0);
        }
        let spill_path = data_dir.join("spill.data");
        let mut spill = match fs::File::open(&spill_path) {
            Ok(f) => Some(f),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                fs::File::create(&spill_path)?;
                None
            }
            Err(e) => return Err(e),
        };
        let mut report = RecoveryReport {
            torn_tail: scan.torn,
            ..RecoveryReport::default()
        };
        let mut rebuilt: BTreeMap<Key, Rebuilt> = BTreeMap::new();
        for rec in &scan.records {
            match *rec {
                manifest::Record::Extent {
                    mof,
                    reducer,
                    offset,
                    len,
                    file_off,
                    data_crc,
                } => {
                    let part = rebuilt.entry((mof, reducer)).or_default();
                    if part.sealed || offset != part.durable_len {
                        part.sealed = true;
                        report.dropped_extents += 1;
                        continue;
                    }
                    let ok = spill
                        .as_mut()
                        .is_some_and(|f| verify_extent(f, file_off, len, data_crc));
                    if !ok {
                        part.sealed = true;
                        report.dropped_extents += 1;
                        trace.instant("recover.drop", Entity::mof(mof), file_off, len);
                        continue;
                    }
                    part.extents.push(Extent {
                        offset,
                        len,
                        place: Place::Local { file_off },
                    });
                    part.durable_len += len;
                }
                manifest::Record::RemoteMoved {
                    mof,
                    reducer,
                    total,
                } => {
                    // Trust the record only if the published object
                    // actually covers the claimed prefix.
                    if remote.object_len(mof, reducer).is_some_and(|l| l >= total) {
                        let part = rebuilt.entry((mof, reducer)).or_default();
                        part.extents = vec![Extent {
                            offset: 0,
                            len: total,
                            place: Place::Remote,
                        }];
                        part.durable_len = total;
                        part.sealed = false;
                    } else {
                        report.dropped_records += 1;
                    }
                }
                manifest::Record::ReplicaDropped { mof, reducer } => {
                    rebuilt.remove(&(mof, reducer));
                }
            }
        }
        drop(spill);
        let mut parts: BTreeMap<Key, Partition> = BTreeMap::new();
        let mut local_len = 0u64;
        let mut spilled = 0u64;
        let mut remote_bytes = 0u64;
        for (key, r) in rebuilt {
            if r.durable_len == 0 {
                continue;
            }
            for ext in &r.extents {
                match ext.place {
                    Place::Local { file_off } => {
                        spilled += ext.len;
                        local_len = local_len.max(file_off + ext.len);
                        report.local_extents += 1;
                    }
                    Place::Remote => {
                        remote_bytes += ext.len;
                        report.remote_partitions += 1;
                    }
                }
            }
            report.recovered_bytes += r.durable_len;
            report.recovered_partitions += 1;
            parts.insert(
                key,
                Partition {
                    extents: r.extents,
                    durable_len: r.durable_len,
                    spilling: None,
                    buffer: Vec::new(),
                },
            );
        }
        // Reclaim whatever torn garbage sits past the last committed
        // extent; new spills append from here.
        {
            let f = fs::OpenOptions::new().write(true).open(&spill_path)?;
            f.set_len(local_len)?;
            f.sync_all()?;
        }
        let manifest = if cfg.durable_spill {
            Some(ManifestWriter::open_append(
                &manifest_path,
                cfg.manifest_sync_interval,
            )?)
        } else {
            None
        };
        let total_written = report.recovered_bytes;
        let store = Arc::new(HybridStore {
            cfg,
            inner: Mutex::new(Inner {
                parts,
                replicated: BTreeSet::new(),
                memory_used: 0,
                local_len,
                spill_active: false,
                pressure: 0,
                shutdown: false,
                failed: None,
                stats: Counters {
                    total_written,
                    spilled_bytes: spilled,
                    remote_bytes,
                    ..Counters::default()
                },
            }),
            cv: Condvar::new(),
            data_dir,
            owns_data_dir: false,
            remote,
            remote_dir,
            owns_remote_dir,
            manifest: Mutex::new(manifest),
        });
        #[cfg(not(loom))]
        if store.cfg.background_flush {
            let s = Arc::clone(&store);
            std::thread::Builder::new()
                .name("hybrid-flusher".into())
                .spawn(move || s.flusher_loop())
                .map_err(io::Error::other)?;
        }
        trace.instant(
            "recover.done",
            Entity::NONE,
            report.recovered_bytes,
            report.recovered_partitions,
        );
        drop(span);
        Ok((store, report))
    }

    /// The LOCALFILE tier's directory.
    pub fn local_dir(&self) -> &Path {
        &self.data_dir
    }

    /// The REMOTE tier's object directory (survives this store).
    pub fn remote_dir(&self) -> &Path {
        &self.remote_dir
    }

    fn spill_path(&self) -> PathBuf {
        self.data_dir.join("spill.data")
    }

    /// Append `data` to partition `(mof, reducer)`. Lands in the MEMORY
    /// tier; trips the watermark/huge-partition spill machinery, and in
    /// background mode blocks while the budget is exhausted until the
    /// flusher makes room. Appends are atomic: concurrent readers see
    /// all of `data` or none of it.
    pub fn append(&self, mof: u64, reducer: u32, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        if data.len() >= self.cfg.memory_budget {
            return self.append_oversize(mof, reducer, data);
        }
        let mut g = lock(&self.inner);
        // Backpressure: the MEMORY tier never exceeds its budget.
        while g.memory_used + data.len() > self.cfg.memory_budget {
            if let Some(kind) = g.failed {
                return Err(kind.into());
            }
            if g.shutdown {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            g.pressure = g.pressure.max(data.len());
            if !self.cfg.background_flush && !g.spill_active {
                let (g2, res) = self.spill_trip(g);
                g = g2;
                res?;
            } else {
                // Wake the flusher (or wait out another writer's trip).
                self.cv.notify_all();
                g = wait(&self.cv, g);
            }
        }
        let part = g.parts.entry((mof, reducer)).or_default();
        part.buffer.extend_from_slice(data);
        let part_mem = part.mem_len();
        g.memory_used += data.len();
        g.stats.total_written += data.len() as u64;
        if g.memory_used >= self.cfg.high_bytes() || part_mem > self.cfg.huge_partition_limit {
            if self.cfg.background_flush {
                self.cv.notify_all();
            } else if !g.spill_active {
                let (tripped, res) = self.spill_trip(g);
                drop(tripped);
                res?;
            }
            // A trip already in flight re-reads usage every iteration
            // and will absorb this append's contribution.
        }
        Ok(())
    }

    /// An append at least as large as the whole memory budget can never
    /// fit in the MEMORY tier: flush the partition's buffered tail (to
    /// keep extents contiguous), then write the data straight to the
    /// LOCALFILE tier.
    fn append_oversize(&self, mof: u64, reducer: u32, data: &[u8]) -> io::Result<()> {
        let key = (mof, reducer);
        let (file_off, logical_off) = self.reserve_oversize(key, data.len() as u64)?;
        let wres = self.write_local(key, file_off, logical_off, data);
        self.commit_oversize(key, file_off, data.len() as u64, wres)
    }

    /// Oversize phase 1 (one critical section): take the flusher token,
    /// flush this partition's buffered tail so its extents stay
    /// contiguous, and reserve `len` bytes of the spill file. Returns
    /// `(file_off, logical_off)`; on error the token is released before
    /// returning.
    fn reserve_oversize(&self, key: Key, len: u64) -> io::Result<(u64, u64)> {
        let mut g = lock(&self.inner);
        while g.spill_active {
            if g.shutdown {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            g = wait(&self.cv, g);
        }
        g.spill_active = true;
        if g
            .parts
            .get(&key)
            .is_some_and(|p| !p.buffer.is_empty())
        {
            let (g2, res) = self.flush_one(g, key, false);
            g = g2;
            if let Err(e) = res {
                g.spill_active = false;
                self.cv.notify_all();
                return Err(e);
            }
        }
        let logical_off = g.parts.get(&key).map_or(0, |p| p.durable_len);
        let file_off = g.local_len;
        g.local_len += len;
        Ok((file_off, logical_off))
    }

    /// Oversize phase 2 (one critical section, entered after the
    /// unlocked file write): commit the direct extent — or park the
    /// write error — and release the flusher token either way.
    fn commit_oversize(
        &self,
        key: Key,
        file_off: u64,
        len: u64,
        wres: io::Result<()>,
    ) -> io::Result<()> {
        let mut g = lock(&self.inner);
        let result = match wres {
            Ok(()) => {
                let part = g.parts.entry(key).or_default();
                part.extents.push(Extent {
                    offset: part.durable_len,
                    len,
                    place: Place::Local { file_off },
                });
                part.durable_len += len;
                g.stats.total_written += len;
                g.stats.spilled_bytes += len;
                g.stats.direct_writes += 1;
                self.cfg
                    .trace
                    .instant("spill.direct", Entity::mof(key.0), file_off, len);
                Ok(())
            }
            Err(e) => {
                g.failed = Some(e.kind());
                Err(e)
            }
        };
        g.spill_active = false;
        self.cv.notify_all();
        drop(g);
        result
    }

    /// True when the flusher has work: the high watermark is tripped, a
    /// backpressured append cannot fit, or a partition broke the huge
    /// limit.
    fn flush_needed(&self, g: &Inner) -> bool {
        g.memory_used >= self.cfg.high_bytes()
            || (g.pressure > 0 && g.memory_used + g.pressure > self.cfg.memory_budget)
            || g.parts
                .values()
                .any(|p| p.mem_len() > self.cfg.huge_partition_limit)
    }

    /// The background flusher body: wait for a spill trigger, run one
    /// trip, repeat until [`HybridStore::close`]. Public so the loom
    /// models (and the `--cfg loom` build, which spawns no threads) can
    /// drive the production loop from a modeled thread.
    pub fn flusher_loop(&self) {
        let mut g = lock(&self.inner);
        loop {
            if !g.spill_active && g.failed.is_none() && self.flush_needed(&g) {
                let (g2, res) = self.spill_trip(g);
                g = g2;
                if res.is_err() {
                    // The error is parked in `failed`; stop flushing but
                    // keep the loop alive so close() still works.
                    continue;
                }
                continue;
            }
            if g.shutdown {
                break;
            }
            g = wait(&self.cv, g);
        }
    }

    /// Let the background flusher (if any) exit and fail any appends
    /// still blocked on backpressure. Forces down any interval-batched
    /// manifest records (best effort — close is not a durable barrier).
    pub fn close(&self) {
        let mut g = lock(&self.inner);
        g.shutdown = true;
        self.cv.notify_all();
        drop(g);
        let mut mg = lock(&self.manifest);
        if let Some(w) = mg.as_mut() {
            let _ = w.sync();
        }
    }

    /// Pick the next buffer to flush: huge-limit violators first (their
    /// whole buffer, regardless of watermarks), then the largest buffer
    /// while usage is above `target`. `BTreeMap` order makes ties
    /// deterministic.
    fn pick_victim(&self, g: &Inner, target: usize) -> Option<(Key, bool)> {
        let mut best: Option<(Key, usize)> = None;
        let mut best_huge: Option<(Key, usize)> = None;
        for (k, p) in &g.parts {
            if p.buffer.is_empty() {
                continue;
            }
            let mem = p.mem_len();
            if mem > self.cfg.huge_partition_limit
                && best_huge.as_ref().is_none_or(|(_, m)| mem > *m)
            {
                best_huge = Some((*k, mem));
            }
            if best.as_ref().is_none_or(|(_, m)| p.buffer.len() > *m) {
                best = Some((*k, p.buffer.len()));
            }
        }
        if let Some((k, _)) = best_huge {
            return Some((k, true));
        }
        if g.memory_used > target {
            return best.map(|(k, _)| (k, false));
        }
        None
    }

    /// One spill trip, entered with the `spill_active` token free and
    /// taken for its duration: one `tier.spill` span; sealed buffers
    /// flushed in batched sequential writes (each a `spill.write`
    /// instant at an ascending file offset) until usage reaches the low
    /// watermark — or, for huge-only trips, until no partition breaks
    /// the limit.
    fn spill_trip<'a>(
        &'a self,
        mut g: MutexGuard<'a, Inner>,
    ) -> (MutexGuard<'a, Inner>, io::Result<()>) {
        g.spill_active = true;
        g.stats.spill_trips += 1;
        let span = self.cfg.trace.span(
            "tier.spill",
            Entity::NONE,
            g.memory_used as u64,
            self.cfg.low_bytes() as u64,
        );
        let mut drain_to_low = false;
        let mut result = Ok(());
        loop {
            if g.memory_used >= self.cfg.high_bytes() || g.pressure > 0 {
                drain_to_low = true;
            }
            let mut target = if drain_to_low {
                self.cfg.low_bytes()
            } else {
                usize::MAX
            };
            if g.pressure > 0 {
                target = target.min(self.cfg.memory_budget.saturating_sub(g.pressure));
            }
            let Some((key, huge)) = self.pick_victim(&g, target) else {
                break;
            };
            let (g2, res) = self.flush_one(g, key, huge);
            g = g2;
            if let Err(e) = res {
                result = Err(e);
                break;
            }
        }
        g.spill_active = false;
        g.pressure = 0;
        self.cv.notify_all();
        drop(span);
        (g, result)
    }

    /// Seal and flush one partition's buffer to the LOCALFILE tier.
    /// Requires the `spill_active` token. The sealed buffer stays
    /// readable and budget-counted until the extent commits, so no
    /// reader can see a torn segment.
    fn flush_one<'a>(
        &'a self,
        mut g: MutexGuard<'a, Inner>,
        key: Key,
        huge: bool,
    ) -> (MutexGuard<'a, Inner>, io::Result<()>) {
        let Some(part) = g.parts.get_mut(&key) else {
            return (g, Ok(()));
        };
        if !part.buffer.is_empty() && part.spilling.is_none() {
            let sealed = Arc::new(std::mem::take(&mut part.buffer));
            let len = sealed.len();
            // Stable until commit: durable_len only moves under the
            // spill_active token this caller holds.
            let logical_off = part.durable_len;
            part.spilling = Some(Arc::clone(&sealed));
            if huge {
                g.stats.huge_forced += 1;
            }
            let file_off = g.local_len;
            g.local_len += len as u64;
            drop(g);
            let wres = self.write_local(key, file_off, logical_off, &sealed);
            g = lock(&self.inner);
            match wres {
                Ok(()) => {
                    if let Some(part) = g.parts.get_mut(&key) {
                        part.extents.push(Extent {
                            offset: part.durable_len,
                            len: len as u64,
                            place: Place::Local { file_off },
                        });
                        part.durable_len += len as u64;
                        part.spilling = None;
                    }
                    g.memory_used = g.memory_used.saturating_sub(len);
                    g.stats.spilled_bytes += len as u64;
                    g.stats.buffers_flushed += 1;
                    self.cv.notify_all();
                }
                Err(e) => {
                    // Un-seal: the bytes stay in the MEMORY tier, ahead
                    // of anything appended while the write ran.
                    if let Some(part) = g.parts.get_mut(&key) {
                        if let Some(sp) = part.spilling.take() {
                            let mut restored = sp.as_ref().clone();
                            restored.extend_from_slice(&part.buffer);
                            part.buffer = restored;
                        }
                    }
                    g.failed = Some(e.kind());
                    return (g, Err(e));
                }
            }
        }
        (g, Ok(()))
    }

    /// Write one extent to the spill file and — in durable mode — run
    /// the full write→sync→publish discipline: data bytes first, a
    /// `sync_data` barrier second, and only then the manifest record
    /// that makes the extent recoverable. Crash points and injected
    /// disk faults interpose at each step.
    fn write_local(&self, key: Key, file_off: u64, logical_off: u64, data: &[u8]) -> io::Result<()> {
        // Both callers run this with no store lock held (flush_one drops
        // the guard first; append_oversize writes between its two
        // critical sections), so blocking on an append permit here can
        // never deadlock against readers.
        let _permit = GatePermit::take(self.cfg.spill_gate.as_deref());
        let mut f = fs::OpenOptions::new().write(true).open(self.spill_path())?;
        f.seek(SeekFrom::Start(file_off))?;
        match fault(&self.cfg.disk_faults, DiskWriteSite::SpillWrite) {
            DiskWriteFault::Allow => {}
            DiskWriteFault::ShortWrite => {
                let keep = data.get(..data.len() / 2).unwrap_or(data);
                let _ = f.write_all(keep);
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short spill write",
                ));
            }
            DiskWriteFault::Error => {
                return Err(io::Error::other("injected spill write error"));
            }
        }
        if crash::check(&self.cfg.crash_plan, CrashSite::SpillWrite) {
            // Simulated kill mid-write: a torn prefix lands in the file.
            let keep = data.get(..data.len() / 2).unwrap_or(data);
            let _ = f.write_all(keep);
            return Err(crash_error());
        }
        f.write_all(data)?;
        if self.cfg.durable_spill {
            if crash::check(&self.cfg.crash_plan, CrashSite::SpillSync) {
                return Err(crash_error());
            }
            f.sync_data()?;
        }
        if !self.cfg.synthetic_spill_delay.is_zero() {
            std::thread::sleep(self.cfg.synthetic_spill_delay);
        }
        self.cfg
            .trace
            .instant("spill.write", Entity::mof(key.0), file_off, data.len() as u64);
        if self.cfg.durable_spill {
            self.manifest_commit(manifest::Record::Extent {
                mof: key.0,
                reducer: key.1,
                offset: logical_off,
                len: data.len() as u64,
                file_off,
                data_crc: crc32c(data),
            })?;
        }
        Ok(())
    }

    /// Publish one durable transition to the manifest (a no-op when
    /// durability is off). Every caller holds the `spill_active` token,
    /// which puts records in commit order; the `manifest` mutex itself
    /// is a leaf lock taken with no other store lock held.
    fn manifest_commit(&self, rec: manifest::Record) -> io::Result<()> {
        let mut mg = lock(&self.manifest);
        let Some(w) = mg.as_mut() else {
            return Ok(());
        };
        let frame = manifest::frame_of(&rec);
        match fault(&self.cfg.disk_faults, DiskWriteSite::ManifestAppend) {
            DiskWriteFault::Allow => {}
            DiskWriteFault::ShortWrite => {
                let keep = frame.get(..frame.len() / 2).unwrap_or(&frame);
                let _ = w.write_bytes(keep);
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short manifest append",
                ));
            }
            DiskWriteFault::Error => {
                return Err(io::Error::other("injected manifest append error"));
            }
        }
        if crash::check(&self.cfg.crash_plan, CrashSite::ManifestAppend) {
            // Simulated kill mid-append: a torn frame prefix for the
            // recovery scan's torn-tail rule to truncate.
            let keep = frame.get(..frame.len() / 2).unwrap_or(&frame);
            let _ = w.write_bytes(keep);
            return Err(crash_error());
        }
        w.write_bytes(&frame)?;
        w.record_written();
        if w.sync_due() {
            if crash::check(&self.cfg.crash_plan, CrashSite::ManifestSync) {
                return Err(crash_error());
            }
            w.sync()?;
        }
        Ok(())
    }

    /// Read `[offset, offset+len)` of partition `(mof, reducer)`
    /// (`len == 0` reads to the end). Mirrors the MOF store's contract:
    /// `None` for an unknown partition, empty for a range past the end.
    /// Serves memory-resident bytes straight from the MEMORY tier.
    pub fn read_segment_range(
        &self,
        mof: u64,
        reducer: u32,
        offset: u64,
        len: u64,
    ) -> io::Result<Option<Vec<u8>>> {
        let key = (mof, reducer);
        let mut g = lock(&self.inner);
        let Some(part) = g.parts.get(&key) else {
            return Ok(None);
        };
        let plen = part.total_len();
        if offset >= plen {
            return Ok(Some(Vec::new()));
        }
        let want = if len == 0 {
            plen - offset
        } else {
            len.min(plen - offset)
        };
        let end = offset + want;
        let mut pieces: Vec<Piece> = Vec::new();
        let (mut hit_mem, mut hit_local, mut hit_remote) = (false, false, false);
        for ext in &part.extents {
            let s = offset.max(ext.offset);
            let e = end.min(ext.offset + ext.len);
            if s >= e {
                continue;
            }
            match ext.place {
                Place::Local { file_off } => {
                    pieces.push(Piece::Local {
                        file_off: file_off + (s - ext.offset),
                        len: e - s,
                    });
                    hit_local = true;
                }
                Place::Remote => {
                    pieces.push(Piece::Remote {
                        offset: s,
                        len: e - s,
                    });
                    hit_remote = true;
                }
            }
        }
        let mut base = part.durable_len;
        for mem in [
            part.spilling.as_ref().map(|s| s.as_slice()),
            Some(part.buffer.as_slice()),
        ]
        .into_iter()
        .flatten()
        {
            let s = offset.max(base);
            let e = end.min(base + mem.len() as u64);
            if s < e {
                let lo = (s - base) as usize;
                let hi = (e - base) as usize;
                let bytes = mem.get(lo..hi).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "memory tier range out of bounds")
                })?;
                pieces.push(Piece::Copied(bytes.to_vec()));
                hit_mem = true;
            }
            base += mem.len() as u64;
        }
        if hit_mem {
            g.stats.memory_hits += 1;
        }
        if hit_local {
            g.stats.local_hits += 1;
        }
        if hit_remote {
            g.stats.remote_hits += 1;
        }
        drop(g);
        if hit_mem {
            self.cfg.trace.instant("mem.hit", Entity::mof(mof), offset, want);
        }
        if hit_local && !self.cfg.synthetic_local_read_delay.is_zero() {
            std::thread::sleep(self.cfg.synthetic_local_read_delay);
        }
        Ok(Some(self.assemble(key, pieces, want)?))
    }

    /// Read `len` bytes at `file_off` of the spill file, opening it at
    /// most once per logical read via `cache`.
    fn read_spill(
        &self,
        cache: &mut Option<fs::File>,
        file_off: u64,
        len: u64,
    ) -> io::Result<Vec<u8>> {
        if cache.is_none() {
            *cache = Some(fs::File::open(self.spill_path())?);
        }
        let Some(f) = cache.as_mut() else {
            return Err(io::Error::other("spill file just opened"));
        };
        f.seek(SeekFrom::Start(file_off))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// The partition's current total length, if it exists.
    pub fn partition_len(&self, mof: u64, reducer: u32) -> Option<u64> {
        let g = lock(&self.inner);
        g.parts.get(&(mof, reducer)).map(Partition::total_len)
    }

    /// All partitions, sorted.
    pub fn partitions(&self) -> Vec<(u64, u32)> {
        let g = lock(&self.inner);
        g.parts.keys().copied().collect()
    }

    /// Per-tier residency of one partition.
    pub fn layout(&self, mof: u64, reducer: u32) -> Option<TierLayout> {
        let g = lock(&self.inner);
        g.parts.get(&(mof, reducer)).map(|p| {
            let mut layout = TierLayout {
                memory: p.mem_len() as u64,
                ..TierLayout::default()
            };
            for ext in &p.extents {
                match ext.place {
                    Place::Local { .. } => layout.local += ext.len,
                    Place::Remote => layout.remote += ext.len,
                }
            }
            layout
        })
    }

    /// Snapshot the tier counters.
    pub fn stats(&self) -> TierStatsSnapshot {
        let g = lock(&self.inner);
        snapshot_of(&g)
    }

    /// Record that partition `(mof, reducer)` is fully held by a live
    /// replica on another supplier (the control plane's pipeline
    /// fan-out wrote it there and the replica still heartbeats). A
    /// subsequent [`Self::drain_to_remote`] *drops* such a partition
    /// instead of copying its bytes to the REMOTE tier — the bytes are
    /// already durable off this node, so a graceful decommission pays
    /// no object write for them. Returns `true` if newly marked.
    pub fn mark_replicated(&self, mof: u64, reducer: u32) -> bool {
        let mut g = lock(&self.inner);
        g.replicated.insert((mof, reducer))
    }

    /// Drop one replicated partition under the drain token, releasing
    /// its memory/local residency into `replica_dropped_bytes`. Returns
    /// `false` when the partition is not marked — or already has REMOTE
    /// extents, which the normal drain path must finish moving so the
    /// surviving object directory stays self-consistent.
    fn drop_replicated(&self, key: Key) -> io::Result<bool> {
        let mut g = lock(&self.inner);
        if !g.replicated.contains(&key) {
            return Ok(false);
        }
        let Some(part) = g.parts.get(&key) else {
            return Ok(true);
        };
        if part.extents.iter().any(|e| e.place == Place::Remote) {
            return Ok(false);
        }
        let mem = part.mem_len();
        let local: u64 = part.extents.iter().map(|e| e.len).sum();
        let total = part.total_len();
        g.parts.remove(&key);
        g.memory_used = g.memory_used.saturating_sub(mem);
        g.stats.spilled_bytes = g.stats.spilled_bytes.saturating_sub(local);
        g.stats.replica_drops += 1;
        g.stats.replica_dropped_bytes += total;
        self.cfg.trace.instant(
            "tier.drop.replica",
            Entity::mof(key.0),
            u64::from(key.1),
            total,
        );
        self.cv.notify_all();
        drop(g);
        // Publish the drop after the in-memory removal: a crash between
        // the two resurrects the partition at recovery, which is
        // harmless — the live replica serves it and the resurrected
        // bytes are byte-exact.
        self.manifest_commit(manifest::Record::ReplicaDropped {
            mof: key.0,
            reducer: key.1,
        })?;
        Ok(true)
    }

    /// Quick decommission: move every partition's bytes to the REMOTE
    /// tier. Takes the flusher token for its whole duration; concurrent
    /// appends landing mid-drain are detected and the partition is
    /// re-drained. Partitions marked replicated
    /// ([`Self::mark_replicated`]) are dropped instead of moved.
    /// Afterwards each drained partition is one REMOTE extent, the
    /// spill file holds no live bytes, and the remote directory can be
    /// re-attached by a replacement store.
    pub fn drain_to_remote(&self) -> io::Result<TierStatsSnapshot> {
        let span = self.cfg.trace.span("tier.drain", Entity::NONE, 0, 0);
        let keys = self.acquire_drain_token();
        let mut result = Ok(());
        'keys: for key in keys {
            match self.drop_replicated(key) {
                Ok(true) => continue 'keys,
                Ok(false) => {}
                Err(e) => {
                    result = Err(e);
                    break 'keys;
                }
            }
            // Per-partition plan → unlocked object write → commit; an
            // append racing the write changes the fingerprint and the
            // partition is re-drained.
            loop {
                let Some((pieces, total, fingerprint, local_bytes)) = self.plan_drain(key) else {
                    continue 'keys;
                };
                // The RemoteMoved record is appended after the object's
                // publishing rename; if a racing append then fails the
                // fingerprint check, a later re-drain's record simply
                // supersedes this one in the log.
                let put = self
                    .assemble(key, pieces, total)
                    .and_then(|bytes| {
                        self.remote
                            .put(key.0, key.1, &bytes, &self.cfg.crash_plan)
                    })
                    .and_then(|()| {
                        self.manifest_commit(manifest::Record::RemoteMoved {
                            mof: key.0,
                            reducer: key.1,
                            total,
                        })
                    });
                match self.commit_drain(key, put, total, fingerprint, local_bytes) {
                    DrainStep::Done => continue 'keys,
                    DrainStep::Retry => {}
                    DrainStep::Failed(e) => {
                        result = Err(e);
                        break 'keys;
                    }
                }
            }
        }
        let snap = self.release_drain_token(result.is_ok());
        drop(span);
        result.map(|()| snap)
    }

    /// Drain phase 1 (one critical section): wait for and take the
    /// flusher token, and list the partitions to move.
    fn acquire_drain_token(&self) -> Vec<Key> {
        let mut g = lock(&self.inner);
        while g.spill_active {
            g = wait(&self.cv, g);
        }
        g.spill_active = true;
        g.parts.keys().copied().collect()
    }

    /// Drain phase 2 (one critical section): plan one partition's full
    /// prefix — durable extents plus buffered tail — and fingerprint it
    /// for the racing-append check. `None` means nothing left to move.
    #[allow(clippy::type_complexity)]
    fn plan_drain(&self, key: Key) -> Option<(Vec<Piece>, u64, (u64, usize), u64)> {
        let g = lock(&self.inner);
        let part = g.parts.get(&key)?;
        let buf_len = part.buffer.len();
        let total = part.total_len();
        let fully_remote = buf_len == 0
            && part
                .extents
                .iter()
                .all(|e| e.place == Place::Remote);
        if total == 0 || fully_remote {
            return None;
        }
        let mut pieces: Vec<Piece> = Vec::new();
        let mut local_bytes = 0u64;
        for ext in &part.extents {
            match ext.place {
                Place::Local { file_off } => {
                    pieces.push(Piece::Local {
                        file_off,
                        len: ext.len,
                    });
                    local_bytes += ext.len;
                }
                Place::Remote => pieces.push(Piece::Remote {
                    offset: ext.offset,
                    len: ext.len,
                }),
            }
        }
        pieces.push(Piece::Copied(part.buffer.clone()));
        Some((pieces, total, (part.durable_len, buf_len), local_bytes))
    }

    /// Drain phase 3 (one critical section, entered after the unlocked
    /// object write): swap the partition onto a single REMOTE extent if
    /// its fingerprint still matches, else ask for a re-drain.
    fn commit_drain(
        &self,
        key: Key,
        put: io::Result<()>,
        total: u64,
        fingerprint: (u64, usize),
        local_bytes: u64,
    ) -> DrainStep {
        let mut g = lock(&self.inner);
        if let Err(e) = put {
            return DrainStep::Failed(e);
        }
        let Some(part) = g.parts.get_mut(&key) else {
            return DrainStep::Done;
        };
        if (part.durable_len, part.buffer.len()) != fingerprint {
            // An append raced the object write; re-drain.
            return DrainStep::Retry;
        }
        let buf_len = fingerprint.1;
        part.extents = vec![Extent {
            offset: 0,
            len: total,
            place: Place::Remote,
        }];
        part.durable_len = total;
        part.buffer = Vec::new();
        g.memory_used = g.memory_used.saturating_sub(buf_len);
        g.stats.spilled_bytes = g.stats.spilled_bytes.saturating_sub(local_bytes);
        g.stats.remote_bytes += local_bytes + buf_len as u64;
        self.cfg
            .trace
            .instant("tier.remote", Entity::mof(key.0), u64::from(key.1), total);
        self.cv.notify_all();
        DrainStep::Done
    }

    /// Drain phase 4 (one critical section): count a completed drain,
    /// release the flusher token, and snapshot the tier counters.
    fn release_drain_token(&self, ok: bool) -> TierStatsSnapshot {
        let mut g = lock(&self.inner);
        if ok {
            g.stats.drains += 1;
        }
        g.spill_active = false;
        self.cv.notify_all();
        snapshot_of(&g)
    }

    /// Resolve planned pieces (no locks held) into contiguous bytes.
    fn assemble(&self, key: Key, pieces: Vec<Piece>, total: u64) -> io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(total as usize);
        let mut spill_file: Option<fs::File> = None;
        for piece in pieces {
            match piece {
                Piece::Copied(bytes) => out.extend_from_slice(&bytes),
                Piece::Local { file_off, len } => {
                    out.extend_from_slice(&self.read_spill(&mut spill_file, file_off, len)?);
                }
                Piece::Remote { offset, len } => {
                    out.extend_from_slice(&self.remote.read(key.0, key.1, offset, len)?);
                }
            }
        }
        Ok(out)
    }
}

impl Drop for HybridStore {
    fn drop(&mut self) {
        if self.owns_data_dir {
            let _ = fs::remove_dir_all(&self.data_dir);
        }
        if self.owns_remote_dir {
            let _ = fs::remove_dir_all(&self.remote_dir);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn tiny(budget: usize) -> HybridConfig {
        HybridConfig {
            memory_budget: budget,
            high_watermark: 0.5,
            low_watermark: 0.2,
            huge_partition_limit: budget,
            ..HybridConfig::default()
        }
    }

    fn pattern(n: usize, seed: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn memory_tier_round_trip() {
        let store = HybridStore::new(tiny(1024)).unwrap();
        let data = pattern(100, 7);
        store.append(1, 2, &data).unwrap();
        assert_eq!(store.read_segment_range(1, 2, 0, 0).unwrap().unwrap(), data);
        assert_eq!(
            store.read_segment_range(1, 2, 10, 20).unwrap().unwrap(),
            data[10..30]
        );
        assert!(store
            .read_segment_range(1, 2, 1000, 0)
            .unwrap()
            .unwrap()
            .is_empty());
        assert!(store.read_segment_range(9, 9, 0, 0).unwrap().is_none());
        let s = store.stats();
        assert_eq!(s.total_written, 100);
        assert_eq!(s.memory_bytes, 100);
        assert_eq!(s.spilled_bytes, 0);
        assert_eq!(s.spill_trips, 0);
        assert!(s.memory_hits >= 2);
        assert_eq!(store.partition_len(1, 2), Some(100));
    }

    #[test]
    fn high_watermark_trip_flushes_to_low() {
        let store = HybridStore::new(tiny(100)).unwrap();
        let mut expected = Vec::new();
        // 6 appends of 10 bytes: trips at >= 50.
        for i in 0..6u8 {
            let chunk = pattern(10, i);
            expected.extend_from_slice(&chunk);
            store.append(0, 0, &chunk).unwrap();
        }
        let s = store.stats();
        assert!(s.spill_trips >= 1, "watermark should have tripped: {s:?}");
        assert!(s.memory_bytes <= 20, "flush must reach low watermark: {s:?}");
        assert_eq!(s.memory_bytes + s.spilled_bytes + s.remote_bytes, 60);
        assert_eq!(store.read_segment_range(0, 0, 0, 0).unwrap().unwrap(), expected);
        assert!(store.stats().local_hits >= 1);
    }

    #[test]
    fn huge_partition_is_force_spilled_below_watermark() {
        let cfg = HybridConfig {
            memory_budget: 1000,
            huge_partition_limit: 50,
            ..tiny(1000)
        };
        let store = HybridStore::new(cfg).unwrap();
        store.append(0, 0, &pattern(30, 1)).unwrap(); // small, stays
        store.append(0, 1, &pattern(60, 2)).unwrap(); // breaks the limit
        let s = store.stats();
        assert!(s.huge_forced >= 1, "{s:?}");
        let skewed = store.layout(0, 1).unwrap();
        assert_eq!(skewed.memory, 0, "skewed partition force-spilled: {skewed:?}");
        assert_eq!(skewed.local, 60);
        let small = store.layout(0, 0).unwrap();
        assert_eq!(small.memory, 30, "small partition stays resident");
    }

    #[test]
    fn oversize_append_goes_direct_to_localfile() {
        let store = HybridStore::new(tiny(64)).unwrap();
        store.append(3, 1, &pattern(10, 1)).unwrap();
        let big = pattern(200, 9);
        store.append(3, 1, &big).unwrap();
        let s = store.stats();
        assert_eq!(s.direct_writes, 1);
        assert_eq!(s.total_written, 210);
        assert!(s.memory_bytes <= 64);
        let mut expected = pattern(10, 1);
        expected.extend_from_slice(&big);
        assert_eq!(store.read_segment_range(3, 1, 0, 0).unwrap().unwrap(), expected);
    }

    #[test]
    fn drain_moves_everything_remote_and_reattaches() {
        let store = HybridStore::new(tiny(100)).unwrap();
        let a = pattern(80, 3); // spills partly
        let b = pattern(20, 4);
        store.append(0, 0, &a).unwrap();
        store.append(1, 5, &b).unwrap();
        let snap = store.drain_to_remote().unwrap();
        assert_eq!(snap.remote_bytes, 100, "{snap:?}");
        assert_eq!(snap.memory_bytes, 0);
        assert_eq!(snap.spilled_bytes, 0);
        assert_eq!(snap.drains, 1);
        assert_eq!(store.read_segment_range(0, 0, 0, 0).unwrap().unwrap(), a);
        assert!(store.stats().remote_hits >= 1);
        // A replacement store re-attaches the surviving remote dir.
        let attached =
            HybridStore::attach_remote(store.remote_dir(), tiny(100)).unwrap();
        assert_eq!(attached.read_segment_range(0, 0, 0, 0).unwrap().unwrap(), a);
        assert_eq!(attached.read_segment_range(1, 5, 0, 0).unwrap().unwrap(), b);
        assert_eq!(attached.stats().remote_bytes, 100);
        assert_eq!(attached.partitions(), vec![(0, 0), (1, 5)]);
    }

    #[test]
    fn drain_drops_replicated_partitions_instead_of_moving_them() {
        let store = HybridStore::new(tiny(100)).unwrap();
        let a = pattern(80, 3); // partly spilled by the watermark
        let b = pattern(20, 4);
        store.append(0, 0, &a).unwrap();
        store.append(1, 5, &b).unwrap();
        assert!(store.mark_replicated(0, 0));
        assert!(!store.mark_replicated(0, 0), "idempotent mark");
        let snap = store.drain_to_remote().unwrap();
        // (0,0) dropped — its 80 bytes never reached the REMOTE tier —
        // while unmarked (1,5) drained normally.
        assert_eq!(snap.replica_drops, 1, "{snap:?}");
        assert_eq!(snap.replica_dropped_bytes, 80);
        assert_eq!(snap.remote_bytes, 20);
        assert_eq!(snap.memory_bytes, 0);
        assert_eq!(snap.spilled_bytes, 0);
        assert_eq!(
            snap.memory_bytes + snap.spilled_bytes + snap.remote_bytes
                + snap.replica_dropped_bytes,
            snap.total_written,
            "residency identity holds with the drop term"
        );
        // The dropped partition is gone locally (readers go to the
        // replica); the drained one still serves.
        assert_eq!(store.read_segment_range(0, 0, 0, 0).unwrap(), None);
        assert_eq!(store.read_segment_range(1, 5, 0, 0).unwrap().unwrap(), b);
        assert_eq!(store.partitions(), vec![(1, 5)]);
    }

    #[test]
    fn replicated_partition_with_remote_extents_still_drains() {
        let store = HybridStore::new(tiny(100)).unwrap();
        store.append(0, 0, &pattern(30, 1)).unwrap();
        store.drain_to_remote().unwrap(); // (0,0) now has a REMOTE extent
        store.append(0, 0, &pattern(10, 2)).unwrap();
        store.mark_replicated(0, 0);
        let snap = store.drain_to_remote().unwrap();
        // The REMOTE prefix forces the normal drain path: dropping the
        // partition would orphan its object in the surviving directory.
        assert_eq!(snap.replica_drops, 0, "{snap:?}");
        assert_eq!(snap.remote_bytes, 40);
        let mut expected = pattern(30, 1);
        expected.extend_from_slice(&pattern(10, 2));
        assert_eq!(store.read_segment_range(0, 0, 0, 0).unwrap().unwrap(), expected);
    }

    #[test]
    fn appends_after_drain_land_in_memory_again() {
        let store = HybridStore::new(tiny(100)).unwrap();
        store.append(0, 0, &pattern(30, 1)).unwrap();
        store.drain_to_remote().unwrap();
        store.append(0, 0, &pattern(10, 2)).unwrap();
        let mut expected = pattern(30, 1);
        expected.extend_from_slice(&pattern(10, 2));
        assert_eq!(store.read_segment_range(0, 0, 0, 0).unwrap().unwrap(), expected);
        let layout = store.layout(0, 0).unwrap();
        assert_eq!(layout.remote, 30);
        assert_eq!(layout.memory, 10);
    }

    #[test]
    fn background_flusher_releases_backpressured_appends() {
        let cfg = HybridConfig {
            background_flush: true,
            ..tiny(64)
        };
        let store = HybridStore::new(cfg).unwrap();
        let mut expected = Vec::new();
        // 10 x 48 bytes through a 64-byte budget: every append past the
        // first must wait for the flusher.
        for i in 0..10u8 {
            let chunk = pattern(48, i);
            expected.extend_from_slice(&chunk);
            store.append(7, 0, &chunk).unwrap();
        }
        let s = store.stats();
        assert!(s.memory_bytes as usize <= 64);
        assert!(s.spill_trips >= 1);
        assert_eq!(s.memory_bytes + s.spilled_bytes + s.remote_bytes, 480);
        assert_eq!(store.read_segment_range(7, 0, 0, 0).unwrap().unwrap(), expected);
        store.close();
    }

    /// A pinned pair of scratch dirs that outlive the store (unlike the
    /// store-owned temp dirs) so a "crashed" store's files survive for
    /// recovery, and are removed when the test ends.
    struct ScratchDirs {
        data: PathBuf,
        remote: PathBuf,
    }

    impl ScratchDirs {
        fn new(tag: &str) -> ScratchDirs {
            let base = std::env::temp_dir().join(format!(
                "jbs-recover-{tag}-{}-{}",
                std::process::id(),
                STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&base);
            ScratchDirs {
                data: base.join("data"),
                remote: base.join("remote"),
            }
        }

        fn durable(&self, budget: usize) -> HybridConfig {
            HybridConfig {
                durable_spill: true,
                data_dir: Some(self.data.clone()),
                remote_dir: Some(self.remote.clone()),
                ..tiny(budget)
            }
        }
    }

    impl Drop for ScratchDirs {
        fn drop(&mut self) {
            if let Some(base) = self.data.parent() {
                let _ = fs::remove_dir_all(base);
            }
        }
    }

    #[test]
    fn recover_rebuilds_spilled_extents_byte_exact() {
        let dirs = ScratchDirs::new("spill");
        let store = HybridStore::new(dirs.durable(100)).unwrap();
        let mut appended = Vec::new();
        for i in 0..12u8 {
            let chunk = pattern(10, i);
            appended.extend_from_slice(&chunk);
            store.append(4, 2, &chunk).unwrap();
        }
        let durable = store.layout(4, 2).unwrap().local;
        assert!(durable > 0, "workload must spill");
        drop(store); // crash: the memory tier evaporates
        let (rec, report) = HybridStore::recover(dirs.durable(100)).unwrap();
        assert_eq!(report.recovered_bytes, durable);
        assert_eq!(report.recovered_partitions, 1);
        assert!(!report.torn_tail);
        assert_eq!(report.dropped_extents, 0);
        let bytes = rec.read_segment_range(4, 2, 0, 0).unwrap().unwrap();
        assert_eq!(bytes, appended[..durable as usize], "byte-exact prefix");
        // The recovered store keeps working: new appends extend the
        // recovered prefix and survive a second crash-recover.
        rec.append(4, 2, &pattern(60, 99)).unwrap();
        let durable2 = rec.layout(4, 2).unwrap().local;
        let mut appended2 = appended[..durable as usize].to_vec();
        appended2.extend_from_slice(&pattern(60, 99));
        drop(rec);
        let (rec2, report2) = HybridStore::recover(dirs.durable(100)).unwrap();
        assert_eq!(report2.recovered_bytes, durable2);
        assert_eq!(
            rec2.read_segment_range(4, 2, 0, 0).unwrap().unwrap(),
            appended2[..durable2 as usize]
        );
    }

    #[test]
    fn recover_handles_oversize_drain_and_replica_drop() {
        let dirs = ScratchDirs::new("mixed");
        let store = HybridStore::new(dirs.durable(64)).unwrap();
        let big = pattern(200, 9); // oversize: direct to LOCALFILE
        store.append(1, 0, &big).unwrap();
        store.append(2, 0, &pattern(100, 3)).unwrap();
        store.append(3, 0, &pattern(80, 4)).unwrap();
        store.mark_replicated(3, 0);
        store.drain_to_remote().unwrap(); // 1,2 → REMOTE; 3 dropped
        store.append(2, 0, &pattern(90, 5)).unwrap(); // post-drain spill
        let durable2 = store.layout(2, 0).unwrap();
        drop(store);
        let (rec, report) = HybridStore::recover(dirs.durable(64)).unwrap();
        assert_eq!(rec.read_segment_range(1, 0, 0, 0).unwrap().unwrap(), big);
        let mut want2 = pattern(100, 3);
        want2.extend_from_slice(&pattern(90, 5));
        let got2 = rec.read_segment_range(2, 0, 0, 0).unwrap().unwrap();
        let durable2_total = (durable2.remote + durable2.local) as usize;
        assert_eq!(got2, want2[..durable2_total]);
        // The replica-dropped partition stays dropped.
        assert_eq!(rec.read_segment_range(3, 0, 0, 0).unwrap(), None);
        assert_eq!(report.remote_partitions, 2);
        let s = rec.stats();
        assert_eq!(
            s.memory_bytes + s.spilled_bytes + s.remote_bytes,
            s.total_written,
            "residency identity holds after recovery: {s:?}"
        );
    }

    #[test]
    fn recover_truncates_torn_manifest_tail() {
        let dirs = ScratchDirs::new("torn");
        let store = HybridStore::new(dirs.durable(100)).unwrap();
        store.append(0, 0, &pattern(80, 3)).unwrap();
        let durable = store.layout(0, 0).unwrap().local;
        drop(store);
        // A crash mid-append leaves garbage at the log's tail.
        let mpath = dirs.data.join("manifest.log");
        let mut log = fs::read(&mpath).unwrap();
        log.extend_from_slice(&[0x29, 0x00, 0x00, 0x00, 0xde, 0xad]);
        fs::write(&mpath, &log).unwrap();
        let (rec, report) = HybridStore::recover(dirs.durable(100)).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.recovered_bytes, durable);
        assert_eq!(
            rec.read_segment_range(0, 0, 0, 0).unwrap().unwrap(),
            pattern(80, 3)[..durable as usize]
        );
        // The truncation stuck: a second scan is clean.
        drop(rec);
        let (_, report2) = HybridStore::recover(dirs.durable(100)).unwrap();
        assert!(!report2.torn_tail);
    }

    #[test]
    fn recover_drops_extents_with_corrupt_data() {
        let dirs = ScratchDirs::new("corrupt");
        let store = HybridStore::new(dirs.durable(100)).unwrap();
        store.append(0, 0, &pattern(80, 3)).unwrap();
        let durable = store.layout(0, 0).unwrap().local;
        assert!(durable >= 2);
        drop(store);
        // Silent corruption in the spilled data itself.
        let spath = dirs.data.join("spill.data");
        let mut data = fs::read(&spath).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        fs::write(&spath, &data).unwrap();
        let (rec, report) = HybridStore::recover(dirs.durable(100)).unwrap();
        assert!(report.dropped_extents >= 1, "{report:?}");
        // Whatever survived is still an exact prefix, never garbage.
        let got = rec
            .read_segment_range(0, 0, 0, 0)
            .unwrap()
            .map_or(Vec::new(), |b| b);
        assert_eq!(got, pattern(80, 3)[..got.len()]);
        assert!(got.len() as u64 <= durable);
    }

    #[test]
    fn recover_requires_a_data_dir() {
        let cfg = HybridConfig {
            durable_spill: true,
            ..tiny(100)
        };
        let err = HybridStore::recover(cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn fresh_store_over_reused_dir_forgets_the_old_manifest() {
        let dirs = ScratchDirs::new("reuse");
        let store = HybridStore::new(dirs.durable(100)).unwrap();
        store.append(0, 0, &pattern(80, 3)).unwrap();
        drop(store);
        // A brand-new store over the same dir starts empty …
        let fresh = HybridStore::new(dirs.durable(100)).unwrap();
        assert_eq!(fresh.partitions(), Vec::<(u64, u32)>::new());
        drop(fresh);
        // … and recovery after it sees nothing stale.
        let (rec, report) = HybridStore::recover(dirs.durable(100)).unwrap();
        assert_eq!(report.recovered_bytes, 0);
        assert_eq!(rec.partitions(), Vec::<(u64, u32)>::new());
    }

    #[test]
    fn spill_trace_has_one_span_per_trip_with_sequential_writes() {
        use jbs_obs::{EventKind, Trace, TraceQuery};
        let trace = Trace::recording(4096);
        let cfg = HybridConfig {
            trace: trace.clone(),
            ..tiny(100)
        };
        let store = HybridStore::new(cfg).unwrap();
        for i in 0..12u8 {
            store.append(0, 0, &pattern(10, i)).unwrap();
        }
        let trips = store.stats().spill_trips;
        assert!(trips >= 2, "expected repeated trips, got {trips}");
        let events = trace.snapshot();
        let q = TraceQuery::new(events.clone());
        assert_eq!(q.count("tier.spill") as u64, trips, "one span per trip");
        // Batched sequential: spill.write file offsets strictly ascend.
        let mut offs: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "spill.write" && e.kind == EventKind::Instant)
            .map(|e| e.a)
            .collect();
        assert!(!offs.is_empty());
        let sorted = {
            let mut s = offs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(offs, sorted, "spill writes must be offset-ordered");
        offs.dedup();
        assert_eq!(offs.len(), sorted.len(), "each write at a fresh offset");
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    fn cfg(budget: usize, background: bool) -> HybridConfig {
        HybridConfig {
            memory_budget: budget,
            high_watermark: 0.5,
            low_watermark: 0.25,
            huge_partition_limit: budget,
            background_flush: background,
            ..HybridConfig::default()
        }
    }

    /// The writer/flusher handoff: a writer trips the watermark, then
    /// blocks on backpressure; the flusher (running the production
    /// [`HybridStore::flusher_loop`]) must drain and release it in
    /// every schedule, and the bytes must come back exact.
    #[test]
    fn loom_spill_handoff_byte_exact() {
        loom::model(|| {
            let store = HybridStore::new(cfg(8, true)).unwrap();
            let flusher = {
                let s = Arc::clone(&store);
                loom::thread::spawn(move || s.flusher_loop())
            };
            store.append(0, 0, &[1, 2, 3]).unwrap();
            store.append(0, 0, &[4, 5, 6]).unwrap(); // trips (6 >= 4)
            store.append(0, 0, &[7, 8, 9]).unwrap(); // 6+3 > 8: backpressure
            store.close();
            flusher.join().unwrap();
            let s = store.stats();
            assert!(s.memory_bytes <= 8, "budget held: {s:?}");
            assert_eq!(s.memory_bytes + s.spilled_bytes + s.remote_bytes, 9);
            assert!(s.spill_trips >= 1);
            let bytes = store.read_segment_range(0, 0, 0, 0).unwrap().unwrap();
            assert_eq!(bytes, [1, 2, 3, 4, 5, 6, 7, 8, 9]);
        });
    }

    /// A reader racing an inline spill must always see an exact prefix
    /// of the appended bytes — never a torn segment.
    #[test]
    fn loom_no_torn_read_mid_spill() {
        loom::model(|| {
            let store = HybridStore::new(cfg(8, false)).unwrap();
            store.append(0, 0, &[1, 2, 3]).unwrap();
            let reader = {
                let s = Arc::clone(&store);
                loom::thread::spawn(move || s.read_segment_range(0, 0, 0, 0).unwrap().unwrap())
            };
            store.append(0, 0, &[4, 5, 6]).unwrap(); // trips an inline spill
            let seen = reader.join().unwrap();
            let full = [1u8, 2, 3, 4, 5, 6];
            assert!(
                seen.len() == 3 || seen.len() == 6,
                "reads are append-atomic, got {} bytes",
                seen.len()
            );
            assert_eq!(seen, full[..seen.len()], "torn read");
            assert_eq!(
                store.read_segment_range(0, 0, 0, 0).unwrap().unwrap(),
                full
            );
        });
    }

    /// A reader racing `drain_to_remote` sees byte-exact data before,
    /// during, and after the tier move.
    #[test]
    fn loom_drain_vs_reader() {
        loom::model(|| {
            let store = HybridStore::new(cfg(64, false)).unwrap();
            store.append(2, 1, &[9, 8, 7, 6]).unwrap();
            let drainer = {
                let s = Arc::clone(&store);
                loom::thread::spawn(move || s.drain_to_remote().unwrap())
            };
            let seen = store.read_segment_range(2, 1, 0, 0).unwrap().unwrap();
            assert_eq!(seen, [9, 8, 7, 6]);
            let snap = drainer.join().unwrap();
            assert_eq!(snap.remote_bytes, 4);
            assert_eq!(snap.memory_bytes, 0);
            assert_eq!(
                store.read_segment_range(2, 1, 0, 0).unwrap().unwrap(),
                [9, 8, 7, 6]
            );
        });
    }
}
