//! Durable spill manifest: an append-only, CRC32C-framed record log.
//!
//! Every durable tier transition — a spill-flush extent, an oversize
//! direct write, a drain to the REMOTE tier, a replica-drop — appends
//! one record to `manifest.log` in the LOCALFILE directory. Records are
//! framed as `[payload_len u32 LE][crc32c(payload) u32 LE][payload]`,
//! so a crash mid-append leaves a torn tail that [`scan`] detects by
//! CRC and truncates: everything before the first bad frame is trusted,
//! everything after it never happened.
//!
//! The write→sync→publish discipline lives in the store, not here: the
//! extent's data bytes are written and fsynced to `spill.data` *before*
//! the extent record is appended, so a record in the log always
//! describes bytes that are durably on disk (recovery re-verifies them
//! against the record's `data_crc` anyway — a defense against the one
//! ordering the log cannot rule out, silent corruption).

use jbs_checksum::crc32c;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The manifest's file name inside the LOCALFILE data directory.
pub(crate) const MANIFEST_FILE: &str = "manifest.log";

/// Largest payload any record kind encodes to; frames claiming more
/// are treated as torn.
const MAX_PAYLOAD: usize = 64;

const TAG_EXTENT: u8 = 1;
const TAG_REMOTE_MOVED: u8 = 2;
const TAG_REPLICA_DROPPED: u8 = 3;

/// One durable tier transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Record {
    /// A committed LOCALFILE extent (spill flush or oversize direct
    /// write): `len` bytes of partition `(mof, reducer)` at logical
    /// `offset`, stored at `file_off` of `spill.data`, whose content
    /// hashes to `data_crc`.
    Extent {
        mof: u64,
        reducer: u32,
        offset: u64,
        len: u64,
        file_off: u64,
        data_crc: u32,
    },
    /// Partition `(mof, reducer)`'s full `total`-byte prefix now lives
    /// in its REMOTE object (appended after the object's publishing
    /// rename).
    RemoteMoved { mof: u64, reducer: u32, total: u64 },
    /// Partition `(mof, reducer)` was dropped in favor of a live
    /// replica on another supplier.
    ReplicaDropped { mof: u64, reducer: u32 },
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match *self {
            Record::Extent {
                mof,
                reducer,
                offset,
                len,
                file_off,
                data_crc,
            } => {
                out.push(TAG_EXTENT);
                out.extend_from_slice(&mof.to_le_bytes());
                out.extend_from_slice(&reducer.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&file_off.to_le_bytes());
                out.extend_from_slice(&data_crc.to_le_bytes());
            }
            Record::RemoteMoved {
                mof,
                reducer,
                total,
            } => {
                out.push(TAG_REMOTE_MOVED);
                out.extend_from_slice(&mof.to_le_bytes());
                out.extend_from_slice(&reducer.to_le_bytes());
                out.extend_from_slice(&total.to_le_bytes());
            }
            Record::ReplicaDropped { mof, reducer } => {
                out.push(TAG_REPLICA_DROPPED);
                out.extend_from_slice(&mof.to_le_bytes());
                out.extend_from_slice(&reducer.to_le_bytes());
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<Record> {
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let rec = match cur.u8()? {
            TAG_EXTENT => Record::Extent {
                mof: cur.u64()?,
                reducer: cur.u32()?,
                offset: cur.u64()?,
                len: cur.u64()?,
                file_off: cur.u64()?,
                data_crc: cur.u32()?,
            },
            TAG_REMOTE_MOVED => Record::RemoteMoved {
                mof: cur.u64()?,
                reducer: cur.u32()?,
                total: cur.u64()?,
            },
            TAG_REPLICA_DROPPED => Record::ReplicaDropped {
                mof: cur.u64()?,
                reducer: cur.u32()?,
            },
            _ => return None,
        };
        if cur.pos != payload.len() {
            return None;
        }
        Some(rec)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
    }
}

/// Encode one record as a complete CRC-framed log entry.
pub(crate) fn frame_of(rec: &Record) -> Vec<u8> {
    let payload = rec.encode();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Append half of the store's write→sync→publish discipline: raw frame
/// bytes go in through [`ManifestWriter::write_bytes`] (the store may
/// deliberately write a torn prefix under crash injection), and the
/// store decides when [`ManifestWriter::sync`] runs via
/// [`ManifestWriter::sync_due`] so crash points can fire between the
/// write and the fsync.
pub(crate) struct ManifestWriter {
    file: fs::File,
    sync_interval: u64,
    unsynced: u64,
}

impl ManifestWriter {
    /// Create a fresh (truncated) manifest — a brand-new store.
    pub(crate) fn create(path: &Path, sync_interval: u64) -> io::Result<ManifestWriter> {
        Ok(ManifestWriter {
            file: fs::File::create(path)?,
            sync_interval: sync_interval.max(1),
            unsynced: 0,
        })
    }

    /// Continue an existing manifest — a recovered store (the caller
    /// truncated any torn tail first).
    pub(crate) fn open_append(path: &Path, sync_interval: u64) -> io::Result<ManifestWriter> {
        Ok(ManifestWriter {
            file: fs::OpenOptions::new().create(true).append(true).open(path)?,
            sync_interval: sync_interval.max(1),
            unsynced: 0,
        })
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    /// Count one fully-written record toward the sync interval.
    pub(crate) fn record_written(&mut self) {
        self.unsynced += 1;
    }

    pub(crate) fn sync_due(&self) -> bool {
        self.unsynced >= self.sync_interval
    }

    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

/// The parsed prefix of a manifest file.
pub(crate) struct ManifestScan {
    /// Every valid record, in append order.
    pub(crate) records: Vec<Record>,
    /// Byte offset of the first torn/invalid frame (== file length when
    /// the log is clean); recovery truncates the file here.
    pub(crate) valid_len: u64,
    /// Whether a torn tail was found past `valid_len`.
    pub(crate) torn: bool,
}

/// Read a manifest, stopping at the first frame that is short, oversize,
/// CRC-mismatched, or undecodable — the torn-tail rule. A missing file
/// scans as empty and clean.
pub(crate) fn scan(path: &Path) -> io::Result<ManifestScan> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = header
            .get(..4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
            .unwrap_or(u32::MAX) as usize;
        let crc = header
            .get(4..8)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
            .unwrap_or(0);
        if len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if crc32c(payload) != crc {
            break;
        }
        let Some(rec) = Record::decode(payload) else {
            break;
        };
        records.push(rec);
        pos += 8 + len;
    }
    Ok(ManifestScan {
        records,
        valid_len: pos as u64,
        torn: pos < bytes.len(),
    })
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::Extent {
                mof: 7,
                reducer: 3,
                offset: 0,
                len: 100,
                file_off: 0,
                data_crc: 0xdead_beef,
            },
            Record::RemoteMoved {
                mof: 7,
                reducer: 3,
                total: 100,
            },
            Record::ReplicaDropped { mof: 9, reducer: 1 },
        ]
    }

    #[test]
    fn records_round_trip_through_frames() {
        let dir = std::env::temp_dir().join(format!("jbs-manifest-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut w = ManifestWriter::create(&path, 1).unwrap();
        for rec in sample() {
            w.write_bytes(&frame_of(&rec)).unwrap();
            w.record_written();
            assert!(w.sync_due());
            w.sync().unwrap();
        }
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records, sample());
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, fs::metadata(&path).unwrap().len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut() {
        let full: Vec<u8> = sample().iter().flat_map(frame_of).collect();
        let dir = std::env::temp_dir().join(format!("jbs-manifest-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        // Frame boundaries are the only clean cuts; any other cut is torn.
        let bounds: Vec<usize> = sample()
            .iter()
            .scan(0usize, |acc, r| {
                *acc += frame_of(r).len();
                Some(*acc)
            })
            .collect();
        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let s = scan(&path).unwrap();
            let whole = bounds.iter().filter(|b| **b <= cut).count();
            assert_eq!(s.records.len(), whole, "cut at {cut}");
            assert_eq!(s.valid_len, bounds[..whole].last().copied().unwrap_or(0) as u64);
            assert_eq!(s.torn, !bounds.contains(&cut) && cut != 0, "cut at {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_stops_the_scan() {
        let recs = sample();
        let mut full: Vec<u8> = recs.iter().flat_map(frame_of).collect();
        let first_len = frame_of(&recs[0]).len();
        // Flip a bit inside the second frame's payload.
        full[first_len + 9] ^= 0x40;
        let dir = std::env::temp_dir().join(format!("jbs-manifest-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        fs::write(&path, &full).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records, recs[..1]);
        assert_eq!(s.valid_len, first_len as u64);
        assert!(s.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_scans_empty_and_clean() {
        let path = std::env::temp_dir().join(format!("jbs-manifest-none-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        let s = scan(&path).unwrap();
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert!(!s.torn);
    }
}
