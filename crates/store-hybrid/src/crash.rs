//! Kill-at-syscall crash-point injection for the durable spill paths.
//!
//! A [`CrashPlan`] simulates the process dying at one exact syscall in
//! the spill/manifest/remote-object write paths: when the armed
//! `(site, occurrence)` is reached the store performs the *partial*
//! on-disk effect a real kill could leave behind (a torn data prefix, a
//! torn manifest frame, an unrenamed `.tmp` object), parks itself
//! failed, and every later crash check also reports dead — the process
//! does no further durable work. The test then abandons the store and
//! calls [`crate::HybridStore::recover`] over the surviving directory,
//! exactly like a restarted supplier.
//!
//! `CrashPlan::survey()` is the dry run: it counts how often each site
//! is reached by a workload without ever firing, which gives the
//! exhaustive sweep its `(site, occurrence)` space.

use crate::sync::{lock, Mutex};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A syscall in the durable write paths where a simulated kill can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashSite {
    /// Mid `write_all` of a spill extent: a torn data prefix lands in
    /// `spill.data`, no manifest record exists.
    SpillWrite,
    /// At the `sync_data` of `spill.data`: the data is fully written
    /// but nothing was published.
    SpillSync,
    /// Mid manifest frame append: a torn frame prefix lands in
    /// `manifest.log` for recovery's torn-tail rule to truncate.
    ManifestAppend,
    /// At the manifest fsync: the frame is written but not forced down.
    ManifestSync,
    /// Mid write of a remote object's `.tmp` file.
    RemoteTmpWrite,
    /// At the `.tmp` file's fsync, before the publishing rename.
    RemoteTmpSync,
    /// At the publishing rename itself: the `.tmp` is complete but the
    /// object name never appears.
    RemoteRename,
}

impl CrashSite {
    /// Every site, in path order.
    pub const ALL: [CrashSite; 7] = [
        CrashSite::SpillWrite,
        CrashSite::SpillSync,
        CrashSite::ManifestAppend,
        CrashSite::ManifestSync,
        CrashSite::RemoteTmpWrite,
        CrashSite::RemoteTmpSync,
        CrashSite::RemoteRename,
    ];

    fn index(self) -> usize {
        match self {
            CrashSite::SpillWrite => 0,
            CrashSite::SpillSync => 1,
            CrashSite::ManifestAppend => 2,
            CrashSite::ManifestSync => 3,
            CrashSite::RemoteTmpWrite => 4,
            CrashSite::RemoteTmpSync => 5,
            CrashSite::RemoteRename => 6,
        }
    }
}

/// Deterministic kill-at-syscall schedule: fires at most once, at the
/// armed `(site, occurrence)`; afterwards every check reports dead.
pub struct CrashPlan {
    armed: Option<(CrashSite, u64)>,
    counts: Mutex<[u64; CrashSite::ALL.len()]>,
    fired: AtomicBool,
}

impl CrashPlan {
    /// A dry-run plan that never fires but counts every site arrival —
    /// run the workload once under it to learn the sweep space.
    pub fn survey() -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            armed: None,
            counts: Mutex::new([0; CrashSite::ALL.len()]),
            fired: AtomicBool::new(false),
        })
    }

    /// Arm a kill at the `occurrence`-th (0-based) arrival at `site`.
    pub fn at(site: CrashSite, occurrence: u64) -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            armed: Some((site, occurrence)),
            counts: Mutex::new([0; CrashSite::ALL.len()]),
            fired: AtomicBool::new(false),
        })
    }

    /// How often each site was reached, in [`CrashSite::ALL`] order.
    pub fn counts(&self) -> Vec<(CrashSite, u64)> {
        let c = lock(&self.counts);
        CrashSite::ALL
            .iter()
            .map(|s| (*s, c.get(s.index()).copied().unwrap_or(0)))
            .collect()
    }

    /// Whether the armed kill has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Called by the store at each site. `true` means the process dies
    /// here: the caller leaves its partial effect and errors out.
    pub(crate) fn check(&self, site: CrashSite) -> bool {
        let mut c = lock(&self.counts);
        let occ = c.get(site.index()).copied().unwrap_or(0);
        if let Some(slot) = c.get_mut(site.index()) {
            *slot += 1;
        }
        drop(c);
        if self.fired.load(Ordering::Acquire) {
            // Already dead: no later durable work happens either.
            return true;
        }
        if self.armed == Some((site, occ)) {
            self.fired.store(true, Ordering::Release);
            return true;
        }
        false
    }
}

/// The error a fired crash point surfaces through the store's normal
/// failure path (`Inner::failed` parks it, appends report it).
pub(crate) fn crash_error() -> io::Error {
    io::Error::other("crash point fired")
}

/// Check an optional plan (the common store-side shape).
pub(crate) fn check(plan: &Option<Arc<CrashPlan>>, site: CrashSite) -> bool {
    plan.as_ref().is_some_and(|p| p.check(site))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn survey_counts_without_firing() {
        let plan = CrashPlan::survey();
        for _ in 0..3 {
            assert!(!plan.check(CrashSite::SpillWrite));
        }
        assert!(!plan.check(CrashSite::ManifestSync));
        assert!(!plan.fired());
        let counts = plan.counts();
        assert!(counts.contains(&(CrashSite::SpillWrite, 3)));
        assert!(counts.contains(&(CrashSite::ManifestSync, 1)));
        assert!(counts.contains(&(CrashSite::RemoteRename, 0)));
    }

    #[test]
    fn armed_plan_fires_once_then_reports_dead_everywhere() {
        let plan = CrashPlan::at(CrashSite::ManifestAppend, 1);
        assert!(!plan.check(CrashSite::ManifestAppend)); // occurrence 0
        assert!(!plan.check(CrashSite::SpillWrite));
        assert!(plan.check(CrashSite::ManifestAppend)); // occurrence 1: dies
        assert!(plan.fired());
        // Dead process: every later site also "crashes".
        assert!(plan.check(CrashSite::SpillWrite));
        assert!(plan.check(CrashSite::RemoteRename));
    }
}
