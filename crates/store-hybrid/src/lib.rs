//! Three-tier hybrid shuffle store: MEMORY / LOCALFILE / REMOTE.
//!
//! The paper's MOFSupplier serves pre-materialized map output from
//! disk; this crate adds the write path, modeled on Uniffle's
//! `MEMORY_LOCALFILE` storage type: incoming partition writes land in a
//! bounded in-memory buffer, a high-watermark trip (default 0.5 of the
//! budget) flushes sealed buffers in batched sequential writes down to
//! the low watermark (0.2), hot segments are answered straight from
//! memory, and a per-partition huge-partition limit keeps one skewed
//! reducer from monopolizing the budget. A simulated REMOTE tier backs
//! quick decommission: [`HybridStore::drain_to_remote`] moves every
//! byte to per-partition objects that a replacement store re-attaches
//! with [`HybridStore::attach_remote`].
//!
//! Every tier transition is traced (`tier.spill` spans, `spill.write` /
//! `spill.direct` / `tier.remote` / `mem.hit` instants) so tests can
//! assert spills are batched-sequential. The crate is in the xtask
//! panic-freedom and lock-order lint scopes, and its `loom_` tests
//! model the writer/flusher spill handoff on the vendored model
//! checker (`RUSTFLAGS="--cfg loom" cargo test -p jbs-store-hybrid
//! --lib loom_`).

mod config;
mod crash;
mod manifest;
mod remote;
mod store;
pub(crate) mod sync;

pub use config::{DiskFaultInjector, DiskWriteFault, DiskWriteSite, HybridConfig, SpillGate};
pub use crash::{CrashPlan, CrashSite};
pub use store::{HybridStore, RecoveryReport, TierLayout, TierStatsSnapshot};
