//! Hybrid-store configuration: memory budget, watermarks, tier knobs.

use jbs_obs::Trace;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Arbitration hook the spill flusher calls around each LOCALFILE
/// append. The transport crate's `IoScheduler` implements this (it
/// cannot be depended on from here — that would be a crate cycle), so
/// one shared permit scheduler can sit under both the prefetcher's
/// reads and this store's spill appends. `acquire_append` may block;
/// it is called with **no** store lock held (the sealed buffer is
/// written outside the `state` mutex), and every acquire is paired
/// with exactly one `release_append`.
pub trait SpillGate: Send + Sync {
    /// Block until an append permit is free and take it.
    fn acquire_append(&self);
    /// Return the permit taken by the matching `acquire_append`.
    fn release_append(&self);
}

/// A durable-intent disk write the fault injector can interpose on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskWriteSite {
    /// A spill-extent (or oversize direct) write to `spill.data`.
    SpillWrite,
    /// A manifest record append to `manifest.log`.
    ManifestAppend,
}

/// The injected outcome of one disk write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskWriteFault {
    /// Perform the write normally.
    Allow,
    /// Write only a prefix of the bytes, then fail (`ErrorKind::WriteZero`).
    ShortWrite,
    /// Fail without writing anything (an EIO-style error).
    Error,
}

/// Deterministic disk-write fault injection for the spill/manifest
/// paths. The transport crate's `FaultPlan` implements this (same
/// no-crate-cycle shape as [`SpillGate`]), so one seeded plan can
/// schedule network and disk faults together, per (seed, occurrence).
pub trait DiskFaultInjector: Send + Sync {
    /// Decide the fate of the next write at `site`.
    fn disk_write(&self, site: DiskWriteSite) -> DiskWriteFault;
}

/// Configuration for a [`crate::HybridStore`].
///
/// The defaults mirror the Uniffle `MEMORY_LOCALFILE` storage type this
/// store reproduces: spill trips at `0.5` of the memory budget and
/// flushes buffers in batched sequential writes until usage is back
/// under `0.2`.
#[derive(Clone)]
pub struct HybridConfig {
    /// Total bytes the MEMORY tier may hold. In-memory usage never
    /// exceeds this: appends that would overflow it spill first (inline
    /// mode) or block until the flusher makes room (background mode).
    pub memory_budget: usize,
    /// Fraction of `memory_budget` that trips a spill (0 < low < high ≤ 1).
    pub high_watermark: f64,
    /// Fraction of `memory_budget` a spill trip flushes down to.
    pub low_watermark: f64,
    /// Per-partition cap on buffered bytes: a partition exceeding it is
    /// force-spilled even below the high watermark, so one skewed
    /// reducer cannot monopolize the memory tier.
    pub huge_partition_limit: usize,
    /// `true` runs spill trips on a dedicated flusher thread woken by
    /// the tripping writer (the production shape); `false` runs them
    /// inline on the tripping writer (deterministic, used by the
    /// property tests and loom models).
    pub background_flush: bool,
    /// Synthetic per-buffer delay charged inside each spill write, so
    /// tests can hold the store mid-spill long enough to race it.
    pub synthetic_spill_delay: Duration,
    /// Synthetic delay charged per LOCALFILE read, standing in for a
    /// rotational-disk seek when benchmarking memory-tier hit rates.
    pub synthetic_local_read_delay: Duration,
    /// Directory for the LOCALFILE tier's spill file; `None` creates a
    /// per-store temp dir removed on drop.
    pub data_dir: Option<PathBuf>,
    /// Directory for the simulated REMOTE tier's objects; `None`
    /// creates a per-store temp dir removed on drop. Point two stores
    /// at one surviving dir to model decommission + re-attach.
    pub remote_dir: Option<PathBuf>,
    /// Trace every tier transition (`tier.spill` spans, `spill.write` /
    /// `tier.remote` / `mem.hit` instants).
    pub trace: Trace,
    /// Optional disk-IO arbitration: when set, every LOCALFILE append
    /// (spill flush or oversize direct write) holds an append permit
    /// from this gate for the duration of the write.
    pub spill_gate: Option<Arc<dyn SpillGate>>,
    /// `true` makes every LOCALFILE commit crash-consistent: extent
    /// data is fsynced before its record is appended to the durable
    /// manifest (`manifest.log`), and [`crate::HybridStore::recover`]
    /// can rebuild the store from the surviving directory. `false`
    /// keeps the pre-durability behavior (no syncs, no manifest).
    pub durable_spill: bool,
    /// Manifest records per fsync (≥ 1). `1` forces every record down
    /// before the commit publishes; larger values batch the fsyncs — a
    /// crash may then lose the last unsynced records, which recovery
    /// treats as cleanly-absent extents.
    pub manifest_sync_interval: u64,
    /// Optional deterministic disk-write fault injection (short writes,
    /// EIO) on the spill/manifest paths.
    pub disk_faults: Option<Arc<dyn DiskFaultInjector>>,
    /// Optional kill-at-syscall crash-point injection; see
    /// [`crate::CrashPlan`].
    pub crash_plan: Option<Arc<crate::crash::CrashPlan>>,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            memory_budget: 64 << 20,
            high_watermark: 0.5,
            low_watermark: 0.2,
            huge_partition_limit: 16 << 20,
            background_flush: false,
            synthetic_spill_delay: Duration::ZERO,
            synthetic_local_read_delay: Duration::ZERO,
            data_dir: None,
            remote_dir: None,
            trace: Trace::disabled(),
            spill_gate: None,
            durable_spill: false,
            manifest_sync_interval: 1,
            disk_faults: None,
            crash_plan: None,
        }
    }
}

impl HybridConfig {
    /// Check knob coherence; returns the offending rule on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.memory_budget == 0 {
            return Err("memory_budget must be > 0".into());
        }
        if !(self.low_watermark > 0.0 && self.low_watermark < self.high_watermark) {
            return Err("watermarks must satisfy 0 < low < high".into());
        }
        if self.high_watermark > 1.0 {
            return Err("high_watermark must be <= 1".into());
        }
        if self.huge_partition_limit == 0 {
            return Err("huge_partition_limit must be > 0".into());
        }
        if self.manifest_sync_interval == 0 {
            return Err("manifest_sync_interval must be >= 1".into());
        }
        Ok(())
    }

    /// The byte threshold that trips a spill.
    pub(crate) fn high_bytes(&self) -> usize {
        watermark_bytes(self.memory_budget, self.high_watermark)
    }

    /// The byte level a spill trip flushes down to.
    pub(crate) fn low_bytes(&self) -> usize {
        watermark_bytes(self.memory_budget, self.low_watermark)
    }
}

fn watermark_bytes(budget: usize, frac: f64) -> usize {
    // Saturating f64 -> usize conversion: frac is validated to (0, 1].
    let raw = (budget as f64) * frac;
    if raw >= budget as f64 {
        budget
    } else if raw <= 0.0 {
        0
    } else {
        raw as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let cfg = HybridConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.high_bytes(), 32 << 20);
        assert!((cfg.low_bytes() as i64 - (64 << 20) / 5).abs() <= 1);
    }

    #[test]
    fn watermark_order_is_enforced() {
        let cfg = HybridConfig {
            high_watermark: 0.2,
            low_watermark: 0.5,
            ..HybridConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = HybridConfig {
            high_watermark: 1.5,
            ..HybridConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = HybridConfig {
            memory_budget: 0,
            ..HybridConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = HybridConfig {
            huge_partition_limit: 0,
            ..HybridConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = HybridConfig {
            manifest_sync_interval: 0,
            ..HybridConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
