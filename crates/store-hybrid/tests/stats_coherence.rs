//! Cache/tier stats coherence: for any interleaving of writes, reads,
//! and drains, the residency identity
//! `memory_bytes + spilled_bytes + remote_bytes == total_written`
//! holds after every operation, and hit/transition counters only ever
//! grow.

use jbs_store_hybrid::{HybridConfig, HybridStore, TierStatsSnapshot};
use proptest::prelude::*;

fn cfg() -> HybridConfig {
    HybridConfig {
        memory_budget: 200,
        high_watermark: 0.5,
        low_watermark: 0.2,
        huge_partition_limit: 80,
        ..HybridConfig::default()
    }
}

fn monotone(prev: &TierStatsSnapshot, now: &TierStatsSnapshot) {
    prop_assert!(now.total_written >= prev.total_written);
    prop_assert!(now.memory_hits >= prev.memory_hits, "memory_hits regressed");
    prop_assert!(now.local_hits >= prev.local_hits, "local_hits regressed");
    prop_assert!(now.remote_hits >= prev.remote_hits, "remote_hits regressed");
    prop_assert!(now.spill_trips >= prev.spill_trips);
    prop_assert!(now.buffers_flushed >= prev.buffers_flushed);
    prop_assert!(now.huge_forced >= prev.huge_forced);
    prop_assert!(now.direct_writes >= prev.direct_writes);
    prop_assert!(now.drains >= prev.drains);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn residency_is_conserved_and_counters_monotone(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..50),
    ) {
        let store = HybridStore::new(cfg()).unwrap();
        let mut written = 0u64;
        let mut prev = store.stats();
        for (kind, part, arg) in ops {
            let part = u32::from(part % 4);
            match kind % 8 {
                0..=4 => {
                    let len = usize::from(arg % 70) + 1;
                    let data = vec![kind.wrapping_add(part as u8); len];
                    store.append(1, part, &data).unwrap();
                    written += len as u64;
                }
                5 => {
                    let _ = store.read_segment_range(1, part, u64::from(arg % 128), 0).unwrap();
                }
                6 => {
                    let data = vec![0xAB; 230]; // oversize: direct-to-local
                    store.append(1, part, &data).unwrap();
                    written += 230;
                }
                _ => {
                    store.drain_to_remote().unwrap();
                }
            }
            let now = store.stats();
            prop_assert_eq!(
                now.memory_bytes + now.spilled_bytes + now.remote_bytes,
                now.total_written,
                "residency identity broken"
            );
            prop_assert_eq!(now.total_written, written, "total_written drifted");
            monotone(&prev, &now);
            prev = now;
        }
    }
}
