//! Trace-driven claims about tier transitions: spills are
//! batched-sequential (exactly one `tier.spill` span per trip, spill
//! writes at strictly ascending file offsets), drains emit one
//! `tier.remote` transition per partition, and memory-tier reads show
//! up as `mem.hit` instants. Dumps the trace to `target/traces/` for
//! the CI artifact.

use jbs_obs::{EventKind, Trace, TraceQuery};
use jbs_store_hybrid::{HybridConfig, HybridStore};

fn dump_trace(trace: &Trace, name: &str) {
    let dir = std::path::Path::new("target/traces");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), trace.to_jsonl());
    }
}

#[test]
fn spills_are_batched_sequential_and_drains_are_traced() {
    let trace = Trace::recording(1 << 16);
    let cfg = HybridConfig {
        memory_budget: 256,
        high_watermark: 0.5,
        low_watermark: 0.2,
        huge_partition_limit: 200,
        trace: trace.clone(),
        ..HybridConfig::default()
    };
    let store = HybridStore::new(cfg).unwrap();
    // Enough appends across 3 partitions to trip several times.
    for round in 0..30u8 {
        for part in 0..3u32 {
            let data = vec![round.wrapping_add(part as u8); 20];
            store.append(0, part, &data).unwrap();
        }
    }
    // Hot read: pick a partition whose tail is still memory-resident
    // (the flusher stops at the low watermark, so one must be) and
    // read it whole — the memory tier serves the tail.
    let resident = (0..3u32)
        .find(|p| store.layout(0, *p).is_some_and(|l| l.memory > 0))
        .expect("low watermark leaves some bytes resident");
    let _ = store.read_segment_range(0, resident, 0, 0).unwrap().unwrap();
    let snap = store.drain_to_remote().unwrap();
    assert_eq!(snap.memory_bytes, 0);

    let events = trace.snapshot();
    let q = TraceQuery::new(events.clone());
    let stats = store.stats();
    assert!(stats.spill_trips >= 2, "want repeated trips: {stats:?}");
    // Exactly one flush span per trip.
    assert_eq!(q.count("tier.spill") as u64, stats.spill_trips);
    assert_eq!(q.count("tier.drain"), 1);
    // One remote transition per drained partition.
    assert_eq!(q.count("tier.remote"), 3);
    assert!(q.count("mem.hit") >= 1, "hot read must hit the memory tier");

    // Batched sequential writes: file offsets strictly ascend, and each
    // sealed buffer lands at the end of the previous one (no holes: the
    // whole spill file is one append stream).
    let writes: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.name == "spill.write" && e.kind == EventKind::Instant)
        .map(|e| (e.a, e.b))
        .collect();
    assert_eq!(writes.len() as u64, stats.buffers_flushed);
    let mut expected_off = 0u64;
    for (off, len) in &writes {
        assert_eq!(*off, expected_off, "spill writes must be sequential");
        expected_off = off + len;
    }
    // Every spill span closed before the drain began (spans record on
    // close; the drain waits for the flusher token).
    assert!(q.count("tier.spill") > 0 && q.count("tier.drain") > 0);
    dump_trace(&trace, "hybrid_spill.jsonl");
}

#[test]
fn memory_only_workload_emits_no_spill_events() {
    let trace = Trace::recording(1 << 12);
    let cfg = HybridConfig {
        memory_budget: 1 << 20,
        trace: trace.clone(),
        ..HybridConfig::default()
    };
    let store = HybridStore::new(cfg).unwrap();
    store.append(0, 0, &[1, 2, 3, 4]).unwrap();
    let _ = store.read_segment_range(0, 0, 0, 0).unwrap().unwrap();
    let q = TraceQuery::new(trace.snapshot());
    assert_eq!(q.count("tier.spill"), 0);
    assert_eq!(q.count("spill.write"), 0);
    assert!(q.count("mem.hit") >= 1);
}
