//! Proptest state machine over the hybrid store: random
//! write/read/drain interleavings against a plain `Vec<u8>`-per-
//! partition model, asserting byte-exactness and the watermark
//! invariants after every operation:
//!
//! * in-memory usage never exceeds the budget;
//! * a watermark-tripped flush always drains to the low watermark;
//! * reads are never torn — every observed range matches the model.

use jbs_store_hybrid::{HybridConfig, HybridStore, TierStatsSnapshot};
use proptest::prelude::*;

const BUDGET: usize = 256;
const HIGH: usize = 128; // 0.5 * BUDGET
const LOW: usize = 51; // 0.2 * BUDGET
const HUGE: usize = 100;
const PARTS: u8 = 5;

fn cfg() -> HybridConfig {
    HybridConfig {
        memory_budget: BUDGET,
        high_watermark: 0.5,
        low_watermark: 0.2,
        huge_partition_limit: HUGE,
        ..HybridConfig::default()
    }
}

/// One scripted operation, decoded from a generated tuple.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Append `len` bytes of a deterministic pattern to `part`.
    Write { part: u8, len: u16, seed: u8 },
    /// Append an oversize run (≥ budget, goes direct-to-LOCALFILE).
    WriteOversize { part: u8, seed: u8 },
    /// Read a range of `part` (offset/len scaled into the live length).
    Read { part: u8, off: u16, len: u16 },
    /// Quick decommission: spill everything to the REMOTE tier.
    Drain,
}

fn decode(kind: u8, part: u8, a: u16, b: u16) -> Op {
    match kind % 8 {
        0 | 1 | 2 | 3 => Op::Write {
            part: part % PARTS,
            len: a % 60 + 1,
            seed: b as u8,
        },
        4 | 5 => Op::Read {
            part: part % PARTS,
            off: a,
            len: b,
        },
        6 => Op::WriteOversize {
            part: part % PARTS,
            seed: b as u8,
        },
        _ => Op::Drain,
    }
}

fn pattern(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(97).wrapping_add(seed))
        .collect()
}

fn check_invariants(prev: &TierStatsSnapshot, now: &TierStatsSnapshot, wrote: usize) {
    prop_assert!(
        now.memory_bytes as usize <= BUDGET,
        "usage {} exceeds budget", now.memory_bytes
    );
    prop_assert!(
        (now.memory_bytes as usize) < HIGH,
        "usage {} not below high watermark after op", now.memory_bytes
    );
    prop_assert_eq!(
        now.memory_bytes + now.spilled_bytes + now.remote_bytes,
        now.total_written,
        "tier residency must conserve bytes"
    );
    // A watermark-tripped flush reaches the low watermark.
    if now.spill_trips > prev.spill_trips && prev.memory_bytes as usize + wrote >= HIGH {
        prop_assert!(
            now.memory_bytes as usize <= LOW,
            "flush stopped at {} > low {}", now.memory_bytes, LOW
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_interleavings_stay_byte_exact(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>()), 1..60),
    ) {
        let store = HybridStore::new(cfg()).unwrap();
        let mut model: Vec<Vec<u8>> = vec![Vec::new(); PARTS as usize];
        let mut prev = store.stats();
        for (kind, part, a, b) in ops {
            let op = decode(kind, part, a, b);
            let mut wrote = 0usize;
            match op {
                Op::Write { part, len, seed } => {
                    let data = pattern(len as usize, seed);
                    store.append(0, u32::from(part), &data).unwrap();
                    model[part as usize].extend_from_slice(&data);
                    wrote = data.len();
                }
                Op::WriteOversize { part, seed } => {
                    let data = pattern(BUDGET + 40, seed);
                    store.append(0, u32::from(part), &data).unwrap();
                    model[part as usize].extend_from_slice(&data);
                }
                Op::Read { part, off, len } => {
                    let expect = &model[part as usize];
                    if expect.is_empty() && store.partition_len(0, u32::from(part)).is_none() {
                        prop_assert!(store
                            .read_segment_range(0, u32::from(part), 0, 0)
                            .unwrap()
                            .is_none());
                    } else {
                        let off = u64::from(off) % (expect.len() as u64 + 8);
                        let len = u64::from(len) % (expect.len() as u64 + 8);
                        let got = store
                            .read_segment_range(0, u32::from(part), off, len)
                            .unwrap()
                            .unwrap();
                        let lo = (off as usize).min(expect.len());
                        let hi = if len == 0 {
                            expect.len()
                        } else {
                            (off as usize + len as usize).min(expect.len())
                        };
                        prop_assert_eq!(&got, &expect[lo..hi.max(lo)], "torn or wrong read");
                    }
                }
                Op::Drain => {
                    let snap = store.drain_to_remote().unwrap();
                    prop_assert_eq!(snap.memory_bytes, 0, "drain leaves nothing in memory");
                    prop_assert_eq!(snap.spilled_bytes, 0, "drain leaves nothing local");
                }
            }
            let now = store.stats();
            check_invariants(&prev, &now, wrote);
            prev = now;
        }
        // Final sweep: every partition reads back exactly.
        for (p, expect) in model.iter().enumerate() {
            if expect.is_empty() {
                continue;
            }
            let got = store.read_segment_range(0, p as u32, 0, 0).unwrap().unwrap();
            prop_assert_eq!(&got, expect, "partition {} diverged", p);
            prop_assert_eq!(store.partition_len(0, p as u32), Some(expect.len() as u64));
        }
    }
}
