//! Exhaustive crash-point sweep: for EVERY kill-at-syscall site a
//! workload reaches — counted by a `CrashPlan::survey` dry run — arm a
//! kill at that exact `(site, occurrence)`, run the workload into the
//! crash, recover the store from the surviving directory, and check the
//! recovery contract: each partition serves a byte-exact prefix of what
//! was appended, or is cleanly absent. Never torn bytes, never garbage.

use jbs_store_hybrid::{CrashPlan, HybridConfig, HybridStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

type Key = (u64, u32);

#[derive(Debug, Clone)]
enum Op {
    Append { key: Key, len: usize },
    Mark { key: Key },
    Drain,
}

/// Deterministic bytes for the `i`-th op, so every armed run attempts
/// the identical byte stream the survey run attempted.
fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            ((i as u64)
                .wrapping_mul(131)
                .wrapping_add(seed.wrapping_mul(0x9e37_79b9))
                >> 3) as u8
        })
        .collect()
}

struct Dirs {
    base: PathBuf,
}

impl Dirs {
    fn fresh(tag: &str) -> Dirs {
        let base = std::env::temp_dir().join(format!(
            "jbs-crash-sweep-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&base);
        Dirs { base }
    }

    fn cfg(&self, sync_interval: u64, plan: Option<Arc<CrashPlan>>) -> HybridConfig {
        HybridConfig {
            memory_budget: 64,
            high_watermark: 0.5,
            low_watermark: 0.2,
            huge_partition_limit: 64,
            durable_spill: true,
            manifest_sync_interval: sync_interval,
            data_dir: Some(self.base.join("data")),
            remote_dir: Some(self.base.join("remote")),
            crash_plan: plan,
            ..HybridConfig::default()
        }
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.base);
    }
}

/// Run the workload (ignoring errors — a fired crash point poisons the
/// store and later ops fail fast, exactly like a dying process) and
/// return the full byte stream each partition was *asked* to hold.
fn run(ops: &[Op], cfg: HybridConfig) -> BTreeMap<Key, Vec<u8>> {
    let mut attempted: BTreeMap<Key, Vec<u8>> = BTreeMap::new();
    let store = HybridStore::new(cfg).expect("store must construct");
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Append { key, len } => {
                let data = pattern(*len, i as u64);
                attempted.entry(*key).or_default().extend_from_slice(&data);
                let _ = store.append(key.0, key.1, &data);
            }
            Op::Mark { key } => {
                store.mark_replicated(key.0, key.1);
            }
            Op::Drain => {
                let _ = store.drain_to_remote();
            }
        }
    }
    store.close();
    attempted
}

/// The sweep itself: survey the workload's crash-point space, then kill
/// at every single point and hold recovery to the prefix contract.
fn sweep(ops: &[Op], sync_interval: u64) {
    let survey = {
        let dirs = Dirs::fresh("survey");
        let plan = CrashPlan::survey();
        let attempted = run(ops, dirs.cfg(sync_interval, Some(Arc::clone(&plan))));
        assert!(!plan.fired());
        // Sanity: with no crash, the store round-trips everything it
        // still holds as an exact prefix (replica-dropped partitions
        // may be absent).
        let (rec, _) = HybridStore::recover(dirs.cfg(sync_interval, None)).expect("recover");
        check_prefixes(&rec, &attempted);
        plan.counts()
    };
    let mut fired_somewhere = false;
    for (site, count) in survey {
        for occurrence in 0..count {
            let dirs = Dirs::fresh("armed");
            let plan = CrashPlan::at(site, occurrence);
            let attempted = run(ops, dirs.cfg(sync_interval, Some(Arc::clone(&plan))));
            assert!(
                plan.fired(),
                "armed ({site:?}, {occurrence}) never fired; survey promised {count}"
            );
            fired_somewhere = true;
            let (rec, report) =
                HybridStore::recover(dirs.cfg(sync_interval, None)).expect("recover");
            check_prefixes(&rec, &attempted);
            // The recovered store must serve, not just parse: residency
            // identity holds and a fresh append round-trips.
            let s = rec.stats();
            assert_eq!(
                s.memory_bytes + s.spilled_bytes + s.remote_bytes,
                s.total_written,
                "residency after ({site:?}, {occurrence}): {s:?} {report:?}"
            );
            let probe = pattern(17, 0xfeed);
            rec.append(9, 9, &probe).expect("recovered store must accept appends");
            assert_eq!(
                rec.read_segment_range(9, 9, 0, 0).unwrap().unwrap(),
                probe,
                "recovered store must serve new appends"
            );
        }
    }
    assert!(fired_somewhere, "workload reached no crash site at all");
}

/// Byte-exact or cleanly-absent: whatever `recover` rebuilt for each
/// partition must equal a prefix of the bytes the workload appended.
fn check_prefixes(rec: &HybridStore, attempted: &BTreeMap<Key, Vec<u8>>) {
    for (key, want) in attempted {
        let got = rec
            .read_segment_range(key.0, key.1, 0, 0)
            .expect("recovered read must not error")
            .unwrap_or_default();
        assert!(
            got.len() <= want.len(),
            "partition {key:?} recovered MORE than was appended"
        );
        assert_eq!(
            got,
            want[..got.len()],
            "partition {key:?} recovered torn/garbage bytes"
        );
    }
    // No partitions out of thin air.
    for key in rec.partitions() {
        assert!(
            key == (9, 9) || attempted.contains_key(&key),
            "recovered unknown partition {key:?}"
        );
    }
}

/// A handcrafted workload that walks every durable path: watermark
/// spills, an oversize direct write, a replica drop, a drain, and
/// post-drain appends — swept over every crash point it reaches.
#[test]
fn exhaustive_sweep_over_mixed_workload() {
    let ops = vec![
        Op::Append { key: (0, 0), len: 30 },
        Op::Append { key: (0, 1), len: 40 }, // trips the watermark
        Op::Append { key: (1, 0), len: 100 }, // oversize direct write
        Op::Mark { key: (0, 1) },
        Op::Drain, // (0,1) replica-dropped, others → REMOTE
        Op::Append { key: (0, 0), len: 45 }, // post-drain spill
    ];
    sweep(&ops, 1);
}

/// Interval-batched manifest syncs change which records a crash can
/// lose; sweep that shape too.
#[test]
fn exhaustive_sweep_with_batched_manifest_syncs() {
    let ops = vec![
        Op::Append { key: (0, 0), len: 40 },
        Op::Append { key: (0, 0), len: 40 },
        Op::Append { key: (1, 1), len: 40 },
        Op::Drain,
    ];
    sweep(&ops, 3);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Random small workloads, each swept exhaustively over every
    /// crash point the survey run finds. The vendored proptest shim has
    /// no `prop_oneof!`, so op choice is an integer field of the tuple:
    /// 0..6 → small append, 6 → oversize append, 7 → mark, 8 → drain.
    #[test]
    fn every_crash_point_recovers_byte_exact_or_cleanly_absent(
        raw in proptest::collection::vec(
            (0u8..9, 0u64..2, 0u32..2, 8usize..48),
            3..9,
        ),
        sync_interval in 1u64..3,
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(choice, mof, reducer, len)| {
                let key = (mof, reducer);
                match choice {
                    0..=5 => Op::Append { key, len },
                    6 => Op::Append { key, len: 100 },
                    7 => Op::Mark { key },
                    _ => Op::Drain,
                }
            })
            .collect();
        sweep(&ops, sync_interval);
    }
}
