//! The huge-partition-limit claim, driven by a Zipf-skewed workload:
//! with reducer traffic drawn from `ZipfPartitioner` (partition 0 is
//! the hot head), the skewed reducer outgrows the per-partition limit
//! and is force-spilled to the LOCALFILE tier, while the cold reducers
//! stay fully memory-resident.

use jbs_workloads::{gen_terasort_records, Partitioner, ZipfPartitioner};
use jbs_store_hybrid::{HybridConfig, HybridStore};

#[test]
fn zipf_skewed_reducer_is_force_spilled_others_stay_resident() {
    const REDUCERS: usize = 6;
    const HUGE_LIMIT: usize = 4096;
    let cfg = HybridConfig {
        memory_budget: 64 << 10,
        high_watermark: 0.5, // 32 KiB: the workload never trips it
        low_watermark: 0.2,
        huge_partition_limit: HUGE_LIMIT,
        ..HybridConfig::default()
    };
    let store = HybridStore::new(cfg).unwrap();
    let part = ZipfPartitioner::new(REDUCERS, 1.2);
    let mut rng = jbs_des::DetRng::new(42);
    let mut per_reducer = vec![0u64; REDUCERS];
    // 160 terasort records (100 B each) = 16 KiB total: under the high
    // watermark, but the Zipf head (~46 % of keys) breaks the 4 KiB
    // huge-partition limit.
    for (k, v) in gen_terasort_records(160, &mut rng) {
        let r = part.partition(&k);
        let mut rec = k;
        rec.extend_from_slice(&v);
        store.append(0, r as u32, &rec).unwrap();
        per_reducer[r] += rec.len() as u64;
    }
    let stats = store.stats();
    assert_eq!(stats.total_written, 16_000);
    assert!(
        per_reducer[0] as usize > HUGE_LIMIT,
        "workload must actually skew: {per_reducer:?}"
    );
    assert!(stats.huge_forced >= 1, "skewed reducer force-spilled: {stats:?}");
    assert!(
        (stats.memory_bytes as usize) < 32 << 10,
        "high watermark must not have tripped: {stats:?}"
    );

    // The skewed reducer moved to LOCALFILE; cold reducers never left
    // the MEMORY tier.
    let hot = store.layout(0, 0).unwrap();
    assert!(hot.local as usize > HUGE_LIMIT, "hot reducer spilled: {hot:?}");
    for r in 1..REDUCERS {
        let l = store.layout(0, r as u32).unwrap();
        assert_eq!(l.local, 0, "cold reducer {r} must stay resident: {l:?}");
        assert_eq!(l.remote, 0);
        assert_eq!(l.memory, per_reducer[r]);
    }

    // Byte-exactness is tier-independent: the spilled reducer reads
    // back exactly as many bytes as were appended.
    for r in 0..REDUCERS {
        let bytes = store.read_segment_range(0, r as u32, 0, 0).unwrap().unwrap();
        assert_eq!(bytes.len() as u64, per_reducer[r]);
    }
}
