//! # jbs-jvm — the JVM overhead model
//!
//! The paper's central claim is that the Java Virtual Machine sits on the
//! critical path of Hadoop's shuffle and costs real performance (Sec. II-B):
//!
//! * Java stream disk reads are ~3.1× slower than native `read(2)`
//!   (Fig. 2a);
//! * Java-based shuffling on InfiniBand is up to 3.4× slower than native C,
//!   while on 1GigE the gap is hidden behind the slow wire (Fig. 2b/2c);
//! * every 8-byte boxed double carries 16 bytes of header — 67 % memory
//!   inflation [Nick & Gary, PLDI'09] — which shrinks usable heap and
//!   lengthens garbage collection;
//! * each ReduceTask spawns more than 8 JVM shuffle threads versus 3 native
//!   threads in JBS (Sec. V-D).
//!
//! We cannot run a JVM inside this Rust reproduction, so this crate encodes
//! those *measured* effects as an analytic cost model: per-byte CPU charges
//! on the managed read/send/receive paths ([`PathCosts`], [`ReadMode`]), an
//! allocation-driven stop-the-world collector ([`GcModel`]), and thread-count
//! overheads. The simulation layers charge these costs onto the simulated
//! CPUs and timelines; nothing else in the repository knows whether a path
//! is "Java" or "native" except through these types.

pub mod costs;
pub mod gc;

pub use costs::{PathCosts, ReadMode, Runtime};
pub use gc::{GcModel, GcParams, GcStats};
