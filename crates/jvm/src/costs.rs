//! Per-path CPU cost tables for the managed (JVM) and native runtimes.
//!
//! Every constant here is a calibration point tied to a measurement the
//! paper reports; the benches in `jbs-bench` regenerate the corresponding
//! figures, and `EXPERIMENTS.md` records how close the shapes land.

use jbs_des::SimTime;

/// Which runtime a data path executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Runtime {
    /// Hadoop's stock Java path (HttpServlet / MOFCopier inside the JVM).
    Java,
    /// JBS's native C path (MOFSupplier / NetMerger outside the JVM).
    NativeC,
}

impl Runtime {
    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Runtime::Java => "Java",
            Runtime::NativeC => "Native C",
        }
    }
}

/// How a server-side process reads MOF data off disk (Fig. 2a's three
/// curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadMode {
    /// `java.io.FileInputStream` — the stock HttpServlet path.
    JavaStream,
    /// Native `read(2)` into a reusable buffer — JBS's MOFSupplier path.
    NativeRead,
    /// Native `mmap(2)` — zero user-space copies.
    NativeMmap,
}

impl ReadMode {
    /// CPU seconds charged per byte moved through this read path.
    ///
    /// The Java stream path copies through `InputStream` buffers and churns
    /// objects, capping at ~400 MB/s; native `read` runs at ~1.25 GB/s and
    /// `mmap` at ~2.5 GB/s. Together with the per-path I/O unit (small Java
    /// stream reads seek far more under concurrency), this lands Fig. 2a's
    /// ~3.1× Java-vs-native-read gap.
    pub fn cpu_per_byte(self) -> f64 {
        match self {
            ReadMode::JavaStream => 1.0 / (400.0 * 1e6),
            ReadMode::NativeRead => 1.0 / (1.25 * 1e9),
            ReadMode::NativeMmap => 1.0 / (2.5 * 1e9),
        }
    }

    /// Fixed CPU overhead per I/O call (syscall + stream bookkeeping).
    pub fn call_overhead(self) -> SimTime {
        match self {
            ReadMode::JavaStream => SimTime::from_micros(20),
            ReadMode::NativeRead => SimTime::from_micros(4),
            ReadMode::NativeMmap => SimTime::from_micros(2),
        }
    }

    /// Granularity at which the path issues disk requests. Larger units
    /// survive concurrent interleaving better (fewer seeks per byte).
    pub fn io_unit(self) -> u64 {
        match self {
            ReadMode::JavaStream => 128 << 10,
            ReadMode::NativeRead => 1 << 20,
            ReadMode::NativeMmap => 4 << 20,
        }
    }

    /// Heap bytes allocated per byte read (drives GC pressure). The managed
    /// stream materialises buffers and objects per chunk; native paths
    /// allocate nothing per byte.
    pub fn alloc_per_byte(self) -> f64 {
        match self {
            ReadMode::JavaStream => 1.67,
            ReadMode::NativeRead | ReadMode::NativeMmap => 0.0,
        }
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            ReadMode::JavaStream => "Java (stream read)",
            ReadMode::NativeRead => "Native C (read)",
            ReadMode::NativeMmap => "Native C (mmap)",
        }
    }
}

/// CPU cost table for a shuffle endpoint (server or client side).
///
/// `jbs-net` charges protocol copy costs separately; these are the costs of
/// the *runtime* on top of the protocol: stream wrappers, servlet
/// dispatching, object management.
#[derive(Debug, Clone)]
pub struct PathCosts {
    /// Which runtime this is.
    pub runtime: Runtime,
    /// How the server side reads MOF bytes off disk.
    pub read_mode: ReadMode,
    /// Extra CPU seconds per byte on the network *send* path
    /// (on top of protocol copy costs).
    pub net_send_cpu_per_byte: f64,
    /// Extra CPU seconds per byte on the network *receive* path.
    pub net_recv_cpu_per_byte: f64,
    /// Fixed CPU per network message (request parsing, servlet dispatch).
    pub per_message_cpu: SimTime,
    /// Heap bytes allocated per byte shuffled (JVM object inflation;
    /// 0 for native).
    pub alloc_per_byte: f64,
    /// Threads dedicated to shuffling per ReduceTask (paper: >8 JVM threads
    /// vs. 3 native threads).
    pub shuffle_threads_per_reducetask: u32,
    /// Baseline CPU fraction (of one core) each shuffle thread burns on
    /// scheduling/synchronization while active.
    pub per_thread_overhead: f64,
}

impl PathCosts {
    /// The stock Hadoop JVM path. Calibrated so a single-stream shuffle
    /// saturates at ≈400 MB/s of CPU-bound throughput — hidden behind a
    /// 117 MB/s 1GigE wire, but a 3.4× wall on InfiniBand (Fig. 2b).
    pub fn java() -> Self {
        PathCosts {
            runtime: Runtime::Java,
            read_mode: ReadMode::JavaStream,
            net_send_cpu_per_byte: 1.25e-9, // ~800 MB/s send-side ceiling
            net_recv_cpu_per_byte: 1.25e-9, // ~800 MB/s recv-side ceiling
            per_message_cpu: SimTime::from_micros(30),
            alloc_per_byte: 1.67,
            shuffle_threads_per_reducetask: 8,
            per_thread_overhead: 0.02,
        }
    }

    /// JBS's native C path.
    pub fn native_c() -> Self {
        PathCosts {
            runtime: Runtime::NativeC,
            read_mode: ReadMode::NativeRead,
            net_send_cpu_per_byte: 0.10e-9,
            net_recv_cpu_per_byte: 0.10e-9,
            per_message_cpu: SimTime::from_micros(3),
            alloc_per_byte: 0.0,
            shuffle_threads_per_reducetask: 3,
            per_thread_overhead: 0.005,
        }
    }

    /// CPU time to push `bytes` through the send path (excluding protocol
    /// copies, which depend on the transport).
    pub fn send_cpu(&self, bytes: u64) -> SimTime {
        self.per_message_cpu + SimTime::from_secs_f64(bytes as f64 * self.net_send_cpu_per_byte)
    }

    /// CPU time to absorb `bytes` on the receive path.
    pub fn recv_cpu(&self, bytes: u64) -> SimTime {
        self.per_message_cpu + SimTime::from_secs_f64(bytes as f64 * self.net_recv_cpu_per_byte)
    }

    /// Heap allocation caused by shuffling `bytes` (0 for native paths).
    pub fn alloc_bytes(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.alloc_per_byte) as u64
    }

    /// True when this path runs inside the JVM.
    pub fn is_managed(&self) -> bool {
        self.runtime == Runtime::Java
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn java_stream_read_is_about_3x_native() {
        // Fig. 2a's gap comes from two effects. Sequential (1 servlet):
        // serial disk + CPU makes Java modestly slower. Under concurrency,
        // every I/O unit pays a seek, and Java's small stream reads pay ~8x
        // more seeks per byte. Averaged as the paper does, Java lands near
        // 3.1x native read.
        let seek = 12.76e-3; // avg seek + rotational delay, seconds
        let disk_bw = 110.0 * 1e6;
        let seq = |m: ReadMode| {
            1.0 / disk_bw
                + m.cpu_per_byte()
                + m.call_overhead().as_secs_f64() / m.io_unit() as f64
        };
        let contended = |m: ReadMode| seq(m) + seek / m.io_unit() as f64;
        let seq_ratio = seq(ReadMode::JavaStream) / seq(ReadMode::NativeRead);
        let hot_ratio = contended(ReadMode::JavaStream) / contended(ReadMode::NativeRead);
        let avg = (2.0 * seq_ratio + 3.0 * hot_ratio) / 5.0; // 1,2 seq; 4,8,16 contended
        assert!((1.05..=1.6).contains(&seq_ratio), "sequential ratio {seq_ratio}");
        assert!((2.5..=5.5).contains(&hot_ratio), "contended ratio {hot_ratio}");
        assert!((2.4..=4.0).contains(&avg), "average ratio {avg}");
        assert!(seq(ReadMode::NativeMmap) < seq(ReadMode::NativeRead));
    }

    #[test]
    fn java_net_path_caps_below_ipoib_but_above_1gige() {
        // The JVM CPU ceiling must sit between the 1GigE wire (117 MB/s,
        // where it is hidden) and IPoIB (1.4 GB/s, where it hurts ~3x).
        let j = PathCosts::java();
        let per_byte = j.net_send_cpu_per_byte + j.net_recv_cpu_per_byte;
        let ceiling = 1.0 / per_byte;
        assert!(ceiling > 150.0 * 1e6, "ceiling {ceiling} too low");
        assert!(ceiling < 700.0 * 1e6, "ceiling {ceiling} too high");
    }

    #[test]
    fn native_costs_are_far_below_java() {
        let j = PathCosts::java();
        let n = PathCosts::native_c();
        assert!(j.send_cpu(1 << 20) > n.send_cpu(1 << 20) * 5);
        assert!(j.recv_cpu(1 << 20) > n.recv_cpu(1 << 20) * 5);
        assert_eq!(n.alloc_bytes(1000), 0);
        assert_eq!(j.alloc_bytes(1000), 1670);
    }

    #[test]
    fn thread_counts_match_paper() {
        assert_eq!(PathCosts::java().shuffle_threads_per_reducetask, 8);
        assert_eq!(PathCosts::native_c().shuffle_threads_per_reducetask, 3);
    }

    #[test]
    fn labels_and_flags() {
        assert_eq!(Runtime::Java.label(), "Java");
        assert_eq!(Runtime::NativeC.label(), "Native C");
        assert!(PathCosts::java().is_managed());
        assert!(!PathCosts::native_c().is_managed());
        assert_eq!(ReadMode::JavaStream.label(), "Java (stream read)");
    }

    #[test]
    fn io_units_ordered_by_sophistication() {
        assert!(ReadMode::JavaStream.io_unit() < ReadMode::NativeRead.io_unit());
        assert!(ReadMode::NativeRead.io_unit() < ReadMode::NativeMmap.io_unit());
    }
}
