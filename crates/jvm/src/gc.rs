//! A generational stop-the-world garbage collector model.
//!
//! The paper blames JVM memory inflation for "prolong\[ing\] Java garbage
//! collection for reclaiming memory" (Sec. I). We model the throughput
//! collector of the Hadoop-0.20 era: a young generation collected when the
//! allocation budget is exhausted (short pauses), a survivor fraction that
//! accumulates into the old generation, and full collections when the heap
//! fills (long pauses). Pauses are stop-the-world: the caller adds them to
//! its critical path *and* charges them as CPU busy time.

use jbs_des::SimTime;

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct GcParams {
    /// Young generation size in bytes (allocation budget between minor GCs).
    pub young_bytes: u64,
    /// Total heap size in bytes.
    pub heap_bytes: u64,
    /// Fraction of young-gen bytes that survive a minor collection.
    pub survivor_frac: f64,
    /// Fixed cost of a minor collection.
    pub minor_pause_base: SimTime,
    /// Additional minor pause per surviving megabyte (copying cost).
    pub minor_pause_per_mb: SimTime,
    /// Fixed cost of a full collection.
    pub full_pause_base: SimTime,
    /// Additional full pause per live megabyte (mark/sweep/compact cost).
    pub full_pause_per_mb: SimTime,
    /// Fraction of the heap that survives a full collection.
    pub full_survivor_frac: f64,
}

impl GcParams {
    /// A 1 GB task JVM as Hadoop 0.20.3 commonly configured
    /// (`mapred.child.java.opts=-Xmx1024m`, young gen ~256 MB).
    pub fn task_jvm_1g() -> Self {
        GcParams {
            young_bytes: 256 << 20,
            heap_bytes: 1 << 30,
            survivor_frac: 0.07,
            minor_pause_base: SimTime::from_millis(8),
            minor_pause_per_mb: SimTime::from_micros(400),
            full_pause_base: SimTime::from_millis(120),
            full_pause_per_mb: SimTime::from_micros(900),
            full_survivor_frac: 0.35,
        }
    }
}

/// Statistics accumulated by a [`GcModel`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GcStats {
    /// Number of minor (young-generation) collections.
    pub minor_collections: u64,
    /// Number of full collections.
    pub full_collections: u64,
    /// Total stop-the-world time.
    pub total_pause: SimTime,
    /// Total bytes allocated.
    pub allocated: u64,
}

/// The collector state for one JVM.
#[derive(Debug, Clone)]
pub struct GcModel {
    params: GcParams,
    young_used: u64,
    old_used: u64,
    stats: GcStats,
}

impl GcModel {
    /// A fresh JVM with an empty heap.
    pub fn new(params: GcParams) -> Self {
        GcModel {
            params,
            young_used: 0,
            old_used: 0,
            stats: GcStats::default(),
        }
    }

    /// Allocate `bytes`; returns the stop-the-world pause (usually zero)
    /// triggered by this allocation.
    pub fn allocate(&mut self, bytes: u64) -> SimTime {
        self.stats.allocated += bytes;
        self.young_used += bytes;
        let mut pause = SimTime::ZERO;
        // Multiple minor collections may fire on a huge allocation burst.
        while self.young_used >= self.params.young_bytes {
            self.young_used -= self.params.young_bytes;
            let survived =
                (self.params.young_bytes as f64 * self.params.survivor_frac) as u64;
            self.old_used += survived;
            let mb = survived as f64 / (1 << 20) as f64;
            pause += self.params.minor_pause_base
                + self.params.minor_pause_per_mb.scaled(mb);
            self.stats.minor_collections += 1;
            if self.old_used + self.params.young_bytes >= self.params.heap_bytes {
                pause += self.full_collect();
            }
        }
        self.stats.total_pause += pause;
        pause
    }

    fn full_collect(&mut self) -> SimTime {
        let live_mb = self.old_used as f64 / (1 << 20) as f64;
        let pause = self.params.full_pause_base
            + self.params.full_pause_per_mb.scaled(live_mb);
        self.old_used = (self.old_used as f64 * self.params.full_survivor_frac) as u64;
        self.stats.full_collections += 1;
        pause
    }

    /// Bytes currently live in the old generation.
    pub fn old_used(&self) -> u64 {
        self.old_used
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Fraction of total elapsed `horizon` spent paused (a job-level
    /// GC overhead metric).
    pub fn pause_fraction(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.stats.total_pause.as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GcModel {
        GcModel::new(GcParams::task_jvm_1g())
    }

    #[test]
    fn small_allocations_do_not_pause() {
        let mut gc = model();
        let pause = gc.allocate(1 << 20);
        assert_eq!(pause, SimTime::ZERO);
        assert_eq!(gc.stats().minor_collections, 0);
    }

    #[test]
    fn filling_young_gen_triggers_minor_gc() {
        let mut gc = model();
        let mut pause = SimTime::ZERO;
        for _ in 0..256 {
            pause += gc.allocate(1 << 20);
        }
        assert_eq!(gc.stats().minor_collections, 1);
        assert!(pause >= SimTime::from_millis(8));
    }

    #[test]
    fn burst_allocation_fires_multiple_minor_gcs() {
        let mut gc = model();
        gc.allocate(1 << 30); // 1 GB burst through a 256 MB young gen
        assert_eq!(gc.stats().minor_collections, 4);
    }

    #[test]
    fn sustained_allocation_eventually_full_collects() {
        let mut gc = model();
        // Shuffle 64 GB through the JVM: with 7% survival, the old gen must
        // trip a full collection at some point.
        for _ in 0..(64 << 10) {
            gc.allocate(1 << 20);
        }
        let s = gc.stats();
        assert!(s.full_collections >= 1, "stats: {s:?}");
        assert!(s.total_pause > SimTime::from_secs(1));
        // Heap must stay bounded.
        assert!(gc.old_used() < GcParams::task_jvm_1g().heap_bytes);
    }

    #[test]
    fn full_gc_costs_more_than_minor() {
        let p = GcParams::task_jvm_1g();
        assert!(p.full_pause_base > p.minor_pause_base);
        assert!(p.full_pause_per_mb > p.minor_pause_per_mb);
    }

    #[test]
    fn pause_fraction_scales_with_allocation() {
        let mut light = model();
        let mut heavy = model();
        for _ in 0..512 {
            light.allocate(1 << 20);
        }
        for _ in 0..(16 << 10) {
            heavy.allocate(1 << 20);
        }
        let h = SimTime::from_secs(100);
        assert!(heavy.pause_fraction(h) > light.pause_fraction(h));
        assert_eq!(model().pause_fraction(SimTime::ZERO), 0.0);
    }

    #[test]
    fn allocated_accounting() {
        let mut gc = model();
        gc.allocate(123);
        gc.allocate(877);
        assert_eq!(gc.stats().allocated, 1000);
    }
}
