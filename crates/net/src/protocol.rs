//! The protocol/network matrix of Table I.

use jbs_des::SimTime;

/// Physical network, as in the paper's two test clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Network {
    /// 1 Gigabit Ethernet.
    OneGigE,
    /// 10 Gigabit Ethernet.
    TenGigE,
    /// Mellanox ConnectX-2 QDR InfiniBand behind a 108-port QDR switch.
    InfiniBand,
}

impl Network {
    /// Display name used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Network::OneGigE => "1GigE",
            Network::TenGigE => "10GigE",
            Network::InfiniBand => "InfiniBand",
        }
    }
}

/// Transport protocol, as activated in the paper's test cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP/IP on 1 Gigabit Ethernet.
    Tcp1GigE,
    /// TCP/IP on 10 Gigabit Ethernet.
    Tcp10GigE,
    /// IP-over-InfiniBand: TCP/IP semantics emulated on the HCA.
    IpoIb,
    /// Socket Direct Protocol: Java-visible stream sockets over RDMA.
    Sdp,
    /// RDMA over Converged Ethernet on the 10GigE fabric.
    RoCE,
    /// Native RDMA verbs on QDR InfiniBand (Reliable Connection service).
    Rdma,
}

impl Protocol {
    /// All protocols, in Table I order.
    pub fn all() -> [Protocol; 6] {
        [
            Protocol::Tcp1GigE,
            Protocol::Tcp10GigE,
            Protocol::IpoIb,
            Protocol::Sdp,
            Protocol::RoCE,
            Protocol::Rdma,
        ]
    }

    /// The physical network this protocol runs on.
    pub fn network(self) -> Network {
        match self {
            Protocol::Tcp1GigE => Network::OneGigE,
            Protocol::Tcp10GigE | Protocol::RoCE => Network::TenGigE,
            Protocol::IpoIb | Protocol::Sdp | Protocol::Rdma => Network::InfiniBand,
        }
    }

    /// Display name used in figures ("IPoIB", "RDMA", ...).
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Tcp1GigE => "1GigE",
            Protocol::Tcp10GigE => "10GigE",
            Protocol::IpoIb => "IPoIB",
            Protocol::Sdp => "SDP",
            Protocol::RoCE => "RoCE",
            Protocol::Rdma => "RDMA",
        }
    }

    /// True for the RDMA-like protocols whose connection setup is the Fig. 6
    /// queue-pair handshake rather than a TCP three-way handshake.
    pub fn is_rdma_like(self) -> bool {
        matches!(self, Protocol::RoCE | Protocol::Rdma)
    }

    /// The calibrated parameter set for this protocol.
    pub fn params(self) -> ProtocolParams {
        match self {
            Protocol::Tcp1GigE => ProtocolParams {
                protocol: self,
                goodput: 117.0 * 1e6,
                latency: SimTime::from_micros(50),
                copies_tx: 2,
                copies_rx: 2,
                copy_cost_per_byte: 0.4e-9,
                per_message_cpu: SimTime::from_micros(8),
                per_message_wire: SimTime::from_micros(25),
                setup_rtts: 1.5,
                setup_cpu: SimTime::from_micros(15),
                teardown_cpu: SimTime::from_micros(10),
            },
            Protocol::Tcp10GigE => ProtocolParams {
                protocol: self,
                goodput: 1.16 * 1e9,
                latency: SimTime::from_micros(25),
                copies_tx: 2,
                copies_rx: 2,
                copy_cost_per_byte: 0.4e-9,
                per_message_cpu: SimTime::from_micros(8),
                per_message_wire: SimTime::from_micros(18),
                setup_rtts: 1.5,
                setup_cpu: SimTime::from_micros(15),
                teardown_cpu: SimTime::from_micros(10),
            },
            Protocol::IpoIb => ProtocolParams {
                protocol: self,
                goodput: 1.4 * 1e9,
                latency: SimTime::from_micros(20),
                copies_tx: 2,
                copies_rx: 2,
                copy_cost_per_byte: 0.4e-9,
                per_message_cpu: SimTime::from_micros(10),
                per_message_wire: SimTime::from_micros(20),
                setup_rtts: 1.5,
                setup_cpu: SimTime::from_micros(15),
                teardown_cpu: SimTime::from_micros(10),
            },
            Protocol::Sdp => ProtocolParams {
                protocol: self,
                goodput: 1.5 * 1e9,
                latency: SimTime::from_micros(15),
                copies_tx: 1,
                copies_rx: 1,
                copy_cost_per_byte: 0.4e-9,
                per_message_cpu: SimTime::from_micros(7),
                per_message_wire: SimTime::from_micros(12),
                setup_rtts: 1.5,
                setup_cpu: SimTime::from_micros(25),
                teardown_cpu: SimTime::from_micros(15),
            },
            Protocol::RoCE => ProtocolParams {
                protocol: self,
                goodput: 1.16 * 1e9,
                latency: SimTime::from_micros(6),
                copies_tx: 0,
                copies_rx: 0,
                copy_cost_per_byte: 0.0,
                per_message_cpu: SimTime::from_micros(2),
                per_message_wire: SimTime::from_micros(4),
                setup_rtts: 1.0,
                setup_cpu: SimTime::from_micros(120),
                teardown_cpu: SimTime::from_micros(40),
            },
            Protocol::Rdma => ProtocolParams {
                protocol: self,
                goodput: 3.2 * 1e9,
                latency: SimTime::from_micros(3),
                copies_tx: 0,
                copies_rx: 0,
                copy_cost_per_byte: 0.0,
                per_message_cpu: SimTime::from_micros(2),
                per_message_wire: SimTime::from_micros(3),
                setup_rtts: 1.0,
                setup_cpu: SimTime::from_micros(120),
                teardown_cpu: SimTime::from_micros(40),
            },
        }
    }
}

/// Calibrated characteristics of one transport protocol.
///
/// `goodput` is application-level throughput (wire rate minus framing and
/// protocol overhead). `copies_*` are the user↔kernel memory copies per
/// side: two for the socket paths, one for SDP (kernel bypass but
/// buffered), zero for RDMA/RoCE. Connection setup costs `setup_rtts`
/// round trips plus `setup_cpu` per side — the queue-pair allocation of
/// Fig. 6 makes RDMA setup CPU "relatively high" (Sec. IV-A), which is why
/// JBS caches connections.
#[derive(Debug, Clone)]
pub struct ProtocolParams {
    /// Which protocol these parameters describe.
    pub protocol: Protocol,
    /// Application-level throughput in bytes/second.
    pub goodput: f64,
    /// One-way wire latency.
    pub latency: SimTime,
    /// Memory copies on the transmit side.
    pub copies_tx: u32,
    /// Memory copies on the receive side.
    pub copies_rx: u32,
    /// CPU seconds per byte per copy.
    pub copy_cost_per_byte: f64,
    /// Fixed CPU per message (interrupt handling, protocol processing).
    pub per_message_cpu: SimTime,
    /// Fixed wire/NIC occupancy per message (DMA setup, doorbells,
    /// per-packet processing aggregated). This is what makes tiny
    /// transport buffers expensive in Fig. 11.
    pub per_message_wire: SimTime,
    /// Connection establishment cost in round trips.
    pub setup_rtts: f64,
    /// Per-side CPU to establish a connection (socket or QP allocation).
    pub setup_cpu: SimTime,
    /// Per-side CPU to tear a connection down.
    pub teardown_cpu: SimTime,
}

impl ProtocolParams {
    /// Wire occupancy for `bytes` (serialization time at goodput).
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::for_bytes(bytes, self.goodput)
    }

    /// Transmit-side protocol CPU for one message of `bytes`.
    pub fn tx_cpu(&self, bytes: u64) -> SimTime {
        self.per_message_cpu
            + SimTime::from_secs_f64(
                bytes as f64 * self.copies_tx as f64 * self.copy_cost_per_byte,
            )
    }

    /// Receive-side protocol CPU for one message of `bytes`.
    pub fn rx_cpu(&self, bytes: u64) -> SimTime {
        self.per_message_cpu
            + SimTime::from_secs_f64(
                bytes as f64 * self.copies_rx as f64 * self.copy_cost_per_byte,
            )
    }

    /// Time `copies` memory copies of `bytes` occupy a copy-engine channel.
    pub fn copy_time(&self, bytes: u64, copies: u32) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * copies as f64 * self.copy_cost_per_byte)
    }

    /// Elapsed time for connection establishment (handshake round trips).
    pub fn setup_elapsed(&self) -> SimTime {
        self.latency.scaled(2.0 * self.setup_rtts)
    }

    /// Is this a zero-copy protocol?
    pub fn zero_copy(&self) -> bool {
        self.copies_tx == 0 && self.copies_rx == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matrix() {
        assert_eq!(Protocol::Tcp1GigE.network(), Network::OneGigE);
        assert_eq!(Protocol::Tcp10GigE.network(), Network::TenGigE);
        assert_eq!(Protocol::RoCE.network(), Network::TenGigE);
        assert_eq!(Protocol::IpoIb.network(), Network::InfiniBand);
        assert_eq!(Protocol::Sdp.network(), Network::InfiniBand);
        assert_eq!(Protocol::Rdma.network(), Network::InfiniBand);
        assert_eq!(Protocol::all().len(), 6);
    }

    #[test]
    fn goodput_ordering_matches_hardware() {
        let g = |p: Protocol| p.params().goodput;
        assert!(g(Protocol::Tcp1GigE) < g(Protocol::Tcp10GigE));
        assert!(g(Protocol::Tcp10GigE) <= g(Protocol::IpoIb));
        assert!(g(Protocol::IpoIb) < g(Protocol::Rdma));
        // RoCE runs on the same 10GigE wire as TCP-10G.
        assert_eq!(g(Protocol::RoCE), g(Protocol::Tcp10GigE));
    }

    #[test]
    fn rdma_like_protocols_are_zero_copy() {
        for p in Protocol::all() {
            assert_eq!(p.is_rdma_like(), p.params().zero_copy(), "{p:?}");
        }
    }

    #[test]
    fn cpu_costs_favor_rdma() {
        let chunk = 128u64 << 10;
        let tcp = Protocol::IpoIb.params();
        let rdma = Protocol::Rdma.params();
        assert!(tcp.tx_cpu(chunk) > rdma.tx_cpu(chunk) * 3);
        assert!(tcp.rx_cpu(chunk) > rdma.rx_cpu(chunk) * 3);
    }

    #[test]
    fn sdp_halves_copies_vs_ipoib() {
        let sdp = Protocol::Sdp.params();
        let ipoib = Protocol::IpoIb.params();
        assert_eq!(sdp.copies_tx, 1);
        assert_eq!(ipoib.copies_tx, 2);
        assert!(sdp.tx_cpu(1 << 20) < ipoib.tx_cpu(1 << 20));
    }

    #[test]
    fn wire_time_scales_linearly() {
        let p = Protocol::Tcp1GigE.params();
        let one = p.wire_time(1 << 20);
        let two = p.wire_time(2 << 20);
        assert!((two.as_secs_f64() / one.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rdma_setup_cpu_is_relatively_high() {
        // Sec. IV-A: "the cost of setting up RDMA connection is relatively
        // high" — the motivation for the 512-entry connection cache.
        assert!(
            Protocol::Rdma.params().setup_cpu > Protocol::Tcp10GigE.params().setup_cpu * 4
        );
    }

    #[test]
    fn labels() {
        assert_eq!(Protocol::IpoIb.label(), "IPoIB");
        assert_eq!(Network::InfiniBand.label(), "InfiniBand");
        assert_eq!(Protocol::Rdma.label(), "RDMA");
    }
}
