//! The wire: per-node NICs joined by a non-blocking switch.
//!
//! A transfer is timed in store-and-forward stages: the chunk serializes
//! out of the sender's transmit channel, crosses the switch with the
//! protocol's one-way latency, then serializes into the receiver's receive
//! channel. Each channel is a FIFO resource, so concurrent flows into the
//! same node queue up behind each other — the incast contention that makes
//! the N-to-1 fetch of Fig. 2c interesting.
//!
//! Because the two serializations pipeline *across* chunks, a window of at
//! least two in-flight chunks is needed to sustain full goodput on one
//! flow. The number of in-flight chunks is exactly what JBS's transport
//! buffer pool controls, which is how the Fig. 11 buffer-size sweep gets
//! its shape.

use crate::protocol::{Protocol, ProtocolParams};
use jbs_des::server::{FifoServer, MultiServer};
use jbs_des::SimTime;

/// Protocol-processing threads per node (softirq + data-thread copy
/// capacity). Memory copies for socket protocols *occupy* these channels,
/// so copy-heavy protocols throttle at high rates while the zero-copy
/// RDMA/RoCE paths bypass them entirely — the paper's stated reason RDMA
/// wins even when the wire isn't the bottleneck (Sec. V-B).
const COPY_ENGINE_CHANNELS: usize = 2;

/// A node's network interface: independent transmit and receive channels
/// (full duplex) plus the protocol-processing copy engine.
#[derive(Debug, Clone)]
pub struct Nic {
    /// Transmit-side serialization resource.
    pub tx: FifoServer,
    /// Receive-side serialization resource.
    pub rx: FifoServer,
    /// Kernel/user memory-copy capacity for socket protocols.
    pub copy_engine: MultiServer,
}

impl Default for Nic {
    fn default() -> Self {
        Nic {
            tx: FifoServer::new(),
            rx: FifoServer::new(),
            copy_engine: MultiServer::new(COPY_ENGINE_CHANNELS),
        }
    }
}

/// Timing of one chunk pushed through the fabric.
#[derive(Debug, Clone, Copy)]
pub struct ChunkTiming {
    /// When the sender's NIC began serializing the chunk.
    pub wire_start: SimTime,
    /// When the last byte left the sender.
    pub tx_done: SimTime,
    /// When the last byte was in the receiver's memory.
    pub arrived: SimTime,
    /// Transmit-side protocol CPU (copies + per-message) the caller must
    /// charge to the sending node.
    pub tx_cpu: SimTime,
    /// Receive-side protocol CPU the caller must charge to the receiving
    /// node.
    pub rx_cpu: SimTime,
}

/// All NICs of a cluster running one protocol.
pub struct Fabric {
    params: ProtocolParams,
    nics: Vec<Nic>,
    bytes_moved: u64,
    messages: u64,
    /// Shared switch-core capacity for oversubscribed fabrics (None =
    /// non-blocking, the paper's testbed).
    core: Option<FifoServer>,
    core_bytes_per_sec: f64,
}

impl Fabric {
    /// A fabric of `nodes` NICs speaking `protocol`, behind a non-blocking
    /// switch (the paper's 108-port QDR switch / ToR Ethernet).
    pub fn new(nodes: usize, protocol: Protocol) -> Self {
        Fabric {
            params: protocol.params(),
            nics: (0..nodes).map(|_| Nic::default()).collect(),
            bytes_moved: 0,
            messages: 0,
            core: None,
            core_bytes_per_sec: f64::INFINITY,
        }
    }

    /// A fabric whose switch core is oversubscribed by `factor`: the
    /// aggregate cross-node bandwidth is `nodes * goodput / factor`.
    /// Production datacenters of the paper's era commonly ran 4:1 or
    /// worse, which is why "the intermediate data shuffling … can consume
    /// more than 98% network bandwidth" (Sec. II, citing Camdoop [6]).
    /// `factor <= 1` degenerates to non-blocking.
    pub fn with_oversubscription(nodes: usize, protocol: Protocol, factor: f64) -> Self {
        let mut fabric = Self::new(nodes, protocol);
        if factor > 1.0 {
            fabric.core = Some(FifoServer::new());
            fabric.core_bytes_per_sec = nodes as f64 * fabric.params.goodput / factor;
        }
        fabric
    }

    /// The protocol parameters in force.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// Number of nodes on the fabric.
    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// Move one chunk of `bytes` from `src` to `dst`, with the payload
    /// ready to send at `send_ready` (i.e. after any sender-side CPU).
    ///
    /// The caller charges `tx_cpu`/`rx_cpu` to its CPU meters; the fabric
    /// only accounts for wire occupancy and latency. Loopback (`src ==
    /// dst`) skips the wire entirely — Hadoop fetches node-local segments
    /// through the same code path.
    pub fn transfer(
        &mut self,
        send_ready: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> ChunkTiming {
        self.bytes_moved += bytes;
        self.messages += 1;
        let tx_cpu = self.params.tx_cpu(bytes);
        let rx_cpu = self.params.rx_cpu(bytes);
        if src == dst {
            // Local fetch: a memory move, no wire. Charge a nominal memcpy
            // rate of 4 GB/s.
            let end = send_ready + SimTime::for_bytes(bytes, 4.0e9);
            return ChunkTiming {
                wire_start: send_ready,
                tx_done: end,
                arrived: end,
                tx_cpu,
                rx_cpu,
            };
        }
        // Transmit-side memory copies occupy the sender's copy engine
        // before the NIC can serialize (zero-copy protocols skip this).
        let tx_copy = self.params.copy_time(bytes, self.params.copies_tx);
        let ready = if tx_copy > SimTime::ZERO {
            self.nics[src].copy_engine.serve(send_ready, tx_copy).end
        } else {
            send_ready
        };
        let wire = self.params.wire_time(bytes) + self.params.per_message_wire;
        let tx = self.nics[src].tx.serve(ready, wire);
        // An oversubscribed switch core is a shared serialization stage
        // between the two NICs.
        let after_core = match &mut self.core {
            Some(core) => {
                core.serve(tx.end, SimTime::for_bytes(bytes, self.core_bytes_per_sec))
                    .end
            }
            None => tx.end,
        };
        let at_receiver = after_core + self.params.latency;
        let rx = self.nics[dst].rx.serve(at_receiver, wire);
        // Receive-side copies drain the NIC buffer into user space.
        let rx_copy = self.params.copy_time(bytes, self.params.copies_rx);
        let arrived = if rx_copy > SimTime::ZERO {
            self.nics[dst].copy_engine.serve(rx.end, rx_copy).end
        } else {
            rx.end
        };
        ChunkTiming {
            wire_start: tx.start,
            tx_done: tx.end,
            arrived,
            tx_cpu,
            rx_cpu,
        }
    }

    /// Round-trip time of a small control message (e.g. a fetch request
    /// header) between distinct nodes.
    pub fn control_rtt(&self) -> SimTime {
        self.params.latency.scaled(2.0)
    }

    /// One-way time of a small control message.
    pub fn control_one_way(&self) -> SimTime {
        self.params.latency
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Busy time of a node's transmit channel.
    pub fn tx_busy(&self, node: usize) -> SimTime {
        self.nics[node].tx.busy_time()
    }

    /// Busy time of a node's receive channel.
    pub fn rx_busy(&self, node: usize) -> SimTime {
        self.nics[node].rx.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn single_chunk_pays_two_serializations_plus_latency() {
        let mut f = Fabric::new(2, Protocol::Tcp1GigE);
        let t = f.transfer(SimTime::ZERO, 0, 1, MB);
        let p = f.params().clone();
        let wire = p.wire_time(MB) + p.per_message_wire;
        let tx_copy = p.copy_time(MB, p.copies_tx);
        let rx_copy = p.copy_time(MB, p.copies_rx);
        let expect = tx_copy + wire + p.latency + wire + rx_copy;
        assert_eq!(t.arrived, expect);
        assert_eq!(t.tx_done, tx_copy + wire);
    }

    #[test]
    fn pipelined_chunks_sustain_goodput() {
        // With many chunks in flight, steady-state throughput approaches
        // the goodput: the N-th chunk arrives ~N wire-times after start.
        let mut f = Fabric::new(2, Protocol::Tcp10GigE);
        let n = 64u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = f.transfer(SimTime::ZERO, 0, 1, MB).arrived;
        }
        let achieved = (n * MB) as f64 / last.as_secs_f64();
        let goodput = f.params().goodput;
        // Slightly below wire rate: the copy engine costs a few percent on
        // copy-bearing protocols.
        assert!(
            achieved > goodput * 0.85,
            "achieved {achieved:.3e} vs goodput {goodput:.3e}"
        );
    }

    #[test]
    fn incast_queues_at_receiver() {
        // Many senders into one receiver: the receiver's rx channel is the
        // bottleneck, so completion scales with the number of senders.
        let mut f = Fabric::new(5, Protocol::Tcp10GigE);
        let mut last = SimTime::ZERO;
        for src in 1..5 {
            last = last.max(f.transfer(SimTime::ZERO, src, 0, 8 * MB).arrived);
        }
        let one_sender = {
            let mut g = Fabric::new(5, Protocol::Tcp10GigE);
            g.transfer(SimTime::ZERO, 1, 0, 8 * MB).arrived
        };
        // Store-and-forward pipelining absorbs part of the contention,
        // but the receiver must still be visibly the bottleneck.
        assert!(
            last.as_secs_f64() > one_sender.as_secs_f64() * 1.5,
            "incast {last} vs single {one_sender}"
        );
    }

    #[test]
    fn loopback_skips_the_wire() {
        let mut f = Fabric::new(2, Protocol::Tcp1GigE);
        let local = f.transfer(SimTime::ZERO, 0, 0, 8 * MB).arrived;
        let remote = {
            let mut g = Fabric::new(2, Protocol::Tcp1GigE);
            g.transfer(SimTime::ZERO, 0, 1, 8 * MB).arrived
        };
        assert!(local < remote);
        // Loopback must not consume NIC resources.
        assert_eq!(f.tx_busy(0), SimTime::ZERO);
        assert_eq!(f.rx_busy(0), SimTime::ZERO);
    }

    #[test]
    fn rdma_beats_ipoib_on_the_same_transfer() {
        let mut ib_tcp = Fabric::new(2, Protocol::IpoIb);
        let mut ib_rdma = Fabric::new(2, Protocol::Rdma);
        let a = ib_tcp.transfer(SimTime::ZERO, 0, 1, 64 * MB);
        let b = ib_rdma.transfer(SimTime::ZERO, 0, 1, 64 * MB);
        assert!(b.arrived < a.arrived);
        assert!(b.tx_cpu < a.tx_cpu);
        assert!(b.rx_cpu < a.rx_cpu);
    }

    #[test]
    fn oversubscribed_core_throttles_all_to_all() {
        // 4 senders to 4 distinct receivers: non-blocking completes in
        // ~one transfer time; a 4:1-oversubscribed core serializes most
        // of the aggregate through a quarter of the bandwidth.
        let run = |factor: f64| {
            let mut f = if factor > 1.0 {
                Fabric::with_oversubscription(8, Protocol::Tcp10GigE, factor)
            } else {
                Fabric::new(8, Protocol::Tcp10GigE)
            };
            let mut last = SimTime::ZERO;
            for i in 0..4 {
                for _ in 0..8 {
                    last = last.max(f.transfer(SimTime::ZERO, i, 4 + i, MB).arrived);
                }
            }
            last.as_secs_f64()
        };
        let flat = run(1.0);
        let oversub = run(8.0);
        assert!(
            oversub > flat * 2.0,
            "oversubscribed {oversub} vs non-blocking {flat}"
        );
    }

    #[test]
    fn mild_oversubscription_is_harmless_for_one_flow() {
        let mut f = Fabric::with_oversubscription(8, Protocol::Tcp10GigE, 2.0);
        let mut g = Fabric::new(8, Protocol::Tcp10GigE);
        let a = f.transfer(SimTime::ZERO, 0, 1, MB).arrived;
        let b = g.transfer(SimTime::ZERO, 0, 1, MB).arrived;
        // One flow uses 1/8 of the links; a 2:1 core (4 links' worth)
        // adds only its serialization latency.
        assert!(a.as_secs_f64() < b.as_secs_f64() * 1.5);
    }

    #[test]
    fn factor_of_one_is_non_blocking() {
        let mut f = Fabric::with_oversubscription(4, Protocol::Rdma, 1.0);
        let mut g = Fabric::new(4, Protocol::Rdma);
        assert_eq!(
            f.transfer(SimTime::ZERO, 0, 1, MB).arrived,
            g.transfer(SimTime::ZERO, 0, 1, MB).arrived
        );
    }

    #[test]
    fn accounting() {
        let mut f = Fabric::new(3, Protocol::Rdma);
        f.transfer(SimTime::ZERO, 0, 1, MB);
        f.transfer(SimTime::ZERO, 1, 2, MB);
        assert_eq!(f.bytes_moved(), 2 * MB);
        assert_eq!(f.messages(), 2);
        assert_eq!(f.nodes(), 3);
        assert!(f.tx_busy(0) > SimTime::ZERO);
        assert!(f.rx_busy(2) > SimTime::ZERO);
        assert_eq!(f.control_rtt(), f.control_one_way().scaled(2.0));
    }
}
