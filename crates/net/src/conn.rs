//! Connection management: establish on first use, cache for reuse, cap at
//! 512 live connections with LRU teardown (Sec. IV-A).
//!
//! For the RDMA-like protocols this models the Fig. 6 handshake: the client
//! allocates a queue pair and calls `rdma_connect()`; the server's network
//! event thread sees the connection request on its event channel, allocates
//! its own QP, and calls `rdma_accept()`; both sides then observe the
//! `established` event. For the socket protocols it models the TCP
//! three-way handshake plus `accept()` validation (Sec. IV-B). Either way
//! the elapsed cost is `setup_rtts` round trips and each side burns
//! `setup_cpu`.

use crate::protocol::ProtocolParams;
use jbs_des::lru::LruCache;
use jbs_des::SimTime;

/// The paper's default cap on live connections per process.
pub const DEFAULT_MAX_CONNECTIONS: usize = 512;

/// Result of asking for a connection to a peer.
#[derive(Debug, Clone, Copy)]
pub struct Acquired {
    /// When the connection is usable (immediately when reused).
    pub ready: SimTime,
    /// Whether a new connection had to be established.
    pub established: bool,
    /// CPU each endpoint must be charged for this acquire (setup, plus any
    /// LRU teardown performed to stay under the cap).
    pub cpu_each_side: SimTime,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    /// Connections established.
    pub established: u64,
    /// Acquisitions served from the cache.
    pub reused: u64,
    /// Connections torn down by the LRU policy.
    pub evicted: u64,
}

/// A cache of live connections keyed by `(local, remote)` endpoint pair.
pub struct ConnectionManager {
    params: ProtocolParams,
    cache: LruCache<(u32, u32), SimTime>, // value: time of last use
    stats: ConnStats,
}

impl ConnectionManager {
    /// A manager with the paper's 512-connection cap.
    pub fn new(params: ProtocolParams) -> Self {
        Self::with_capacity(params, DEFAULT_MAX_CONNECTIONS)
    }

    /// A manager with an explicit cap (for the connection-cache ablation).
    pub fn with_capacity(params: ProtocolParams, max_live: usize) -> Self {
        ConnectionManager {
            params,
            cache: LruCache::new(max_live),
            stats: ConnStats::default(),
        }
    }

    /// Obtain a connection from `local` to `remote` at time `now`.
    ///
    /// "The first fetching request triggers a RDMAClient to initiate the
    /// process of connection establishment" (Sec. IV-A); subsequent
    /// requests reuse the cached connection. Establishing while at the cap
    /// first tears down the least recently used connection.
    pub fn acquire(&mut self, now: SimTime, local: u32, remote: u32) -> Acquired {
        let key = (local, remote);
        if let Some(last_used) = self.cache.get_mut(&key) {
            *last_used = now; // get_mut already made the entry MRU
            self.stats.reused += 1;
            return Acquired {
                ready: now,
                established: false,
                cpu_each_side: SimTime::ZERO,
            };
        }
        let mut cpu = self.params.setup_cpu;
        if let Some(_evicted) = self.cache.insert(key, now) {
            self.stats.evicted += 1;
            cpu += self.params.teardown_cpu;
        }
        self.stats.established += 1;
        Acquired {
            ready: now + self.params.setup_elapsed(),
            established: true,
            cpu_each_side: cpu,
        }
    }

    /// Number of live connections.
    pub fn live(&self) -> usize {
        self.cache.len()
    }

    /// The configured cap.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    fn mgr(cap: usize) -> ConnectionManager {
        ConnectionManager::with_capacity(Protocol::Rdma.params(), cap)
    }

    #[test]
    fn first_use_establishes_then_reuses() {
        let mut m = mgr(512);
        let a = m.acquire(SimTime::ZERO, 0, 1);
        assert!(a.established);
        assert!(a.ready > SimTime::ZERO);
        assert!(a.cpu_each_side > SimTime::ZERO);
        let b = m.acquire(SimTime::from_secs(1), 0, 1);
        assert!(!b.established);
        assert_eq!(b.ready, SimTime::from_secs(1));
        assert_eq!(b.cpu_each_side, SimTime::ZERO);
        assert_eq!(m.stats().established, 1);
        assert_eq!(m.stats().reused, 1);
    }

    #[test]
    fn cap_enforced_with_lru_teardown() {
        let mut m = mgr(2);
        m.acquire(SimTime::ZERO, 0, 1);
        m.acquire(SimTime::ZERO, 0, 2);
        // Touch (0,1) so (0,2) becomes LRU.
        m.acquire(SimTime::from_secs(1), 0, 1);
        let a = m.acquire(SimTime::from_secs(2), 0, 3);
        assert!(a.established);
        assert_eq!(m.live(), 2);
        assert_eq!(m.stats().evicted, 1);
        // (0,2) was evicted: acquiring it again must re-establish.
        assert!(m.acquire(SimTime::from_secs(3), 0, 2).established);
        // (0,1) survived as MRU... but was just evicted by (0,2)'s insert?
        // capacity 2: after acquiring (0,3) cache = {(0,1),(0,3)}; acquiring
        // (0,2) evicts LRU (0,1).
        assert!(!m.acquire(SimTime::from_secs(4), 0, 3).established);
    }

    #[test]
    fn default_cap_is_512() {
        let m = ConnectionManager::new(Protocol::Tcp10GigE.params());
        assert_eq!(m.capacity(), DEFAULT_MAX_CONNECTIONS);
    }

    #[test]
    fn distinct_pairs_are_distinct_connections() {
        let mut m = mgr(512);
        m.acquire(SimTime::ZERO, 0, 1);
        assert!(m.acquire(SimTime::ZERO, 1, 0).established);
        assert!(m.acquire(SimTime::ZERO, 2, 1).established);
        assert_eq!(m.live(), 3);
    }

    #[test]
    fn teardown_adds_cpu() {
        let mut m = mgr(1);
        let first = m.acquire(SimTime::ZERO, 0, 1);
        let second = m.acquire(SimTime::ZERO, 0, 2); // evicts (0,1)
        assert!(second.cpu_each_side > first.cpu_each_side);
    }

    #[test]
    fn rdma_setup_slower_than_reuse_by_design() {
        let p = Protocol::Rdma.params();
        let mut m = ConnectionManager::new(p.clone());
        let a = m.acquire(SimTime::ZERO, 0, 1);
        assert_eq!(a.ready, p.setup_elapsed());
    }
}
