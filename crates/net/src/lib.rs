//! # jbs-net — links, NICs and transport-protocol models
//!
//! JBS is "a portable layer on top of any network transport protocol"
//! (Sec. III-A): the same shuffle code drives TCP/IP sockets and RDMA RC
//! queue pairs. This crate models the six protocol/network combinations in
//! the paper's Table I:
//!
//! | Test case            | Transport | Network    |
//! |----------------------|-----------|------------|
//! | TCP/IP on 1GigE      | TCP/IP    | 1GigE      |
//! | TCP/IP on 10GigE     | TCP/IP    | 10GigE     |
//! | IPoIB                | IPoIB     | InfiniBand |
//! | SDP                  | SDP       | InfiniBand |
//! | RoCE                 | RoCE      | 10GigE     |
//! | RDMA                 | RDMA      | InfiniBand |
//!
//! A protocol is a tuple of goodput, one-way latency, memory-copy count per
//! side, and per-message CPU ([`ProtocolParams`]). A node's NIC is a pair of
//! full-duplex FIFO resources ([`Nic`]); the switch is non-blocking, as the
//! paper's 108-port QDR switch and ToR Ethernet effectively were for 23
//! nodes. [`Fabric`] times chunk transfers between NICs, and
//! [`ConnectionManager`] implements the paper's connection policy: establish
//! on first use (the Fig. 6 handshake), cache for reuse, cap at 512 live
//! connections, evict LRU (Sec. IV-A).

pub mod conn;
pub mod fabric;
pub mod protocol;

pub use conn::{ConnStats, ConnectionManager};
pub use fabric::{ChunkTiming, Fabric, Nic};
pub use protocol::{Network, Protocol, ProtocolParams};
