//! Property tests of the fetch wire protocol: encode/decode round-trips
//! for every representable request and response (including the pipelined
//! request ids and the v3 integrity extension), and — the property the
//! fault-injection harness leans on — decoding NEVER panics on arbitrary
//! or truncated bytes, it returns an error.

use jbs_transport::wire::{
    FetchRequest, FetchResponse, Status, WireVersion, MAX_PAYLOAD, REQUEST_LEN, REQUEST_LEN_V3,
};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    /// Any request round-trips through the fixed-size encoding, in both
    /// dialects (the v2 frame has no flags byte, so flags stay zero).
    #[test]
    fn request_roundtrips(
        id in any::<u64>(),
        mof in any::<u64>(),
        reducer in any::<u32>(),
        offset in any::<u64>(),
        len in any::<u64>(),
        flags in any::<u8>(),
    ) {
        let req = FetchRequest { id, mof, reducer, offset, len, flags: 0 };
        let enc = req.encode();
        prop_assert_eq!(enc.len(), REQUEST_LEN);
        prop_assert_eq!(FetchRequest::decode(&enc).unwrap(), (req, WireVersion::V2));
        // And through the streaming reader.
        let mut cursor = Cursor::new(enc.to_vec());
        prop_assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), Some((req, WireVersion::V2)));
        prop_assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), None);

        // The v3 frame carries flags.
        let req3 = FetchRequest { flags, ..req };
        let enc3 = req3.encode_v3();
        prop_assert_eq!(enc3.len(), REQUEST_LEN_V3);
        prop_assert_eq!(FetchRequest::decode(&enc3).unwrap(), (req3, WireVersion::V3));
        let mut cursor = Cursor::new(enc3.to_vec());
        prop_assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), Some((req3, WireVersion::V3)));
        prop_assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), None);
    }

    /// Any response with an in-cap payload round-trips through the frame,
    /// id included — by both the plain and the vectored writer.
    #[test]
    fn response_roundtrips(
        id in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..4096),
        seg_len in any::<u64>(),
        status_pick in 0u8..5,
    ) {
        let resp = match status_pick {
            0 => FetchResponse::ok(id, payload),
            1 => FetchResponse::error(id, Status::NotFound),
            2 => FetchResponse::error(id, Status::BadRequest),
            3 => FetchResponse::ok_crc(id, payload, seg_len),
            _ => FetchResponse::busy(id, seg_len % 60_000),
        };
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = FetchResponse::read_from(&mut Cursor::new(&buf)).unwrap();
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.id, id);
        prop_assert!(back.crc_ok());
        let mut vbuf = Vec::new();
        resp.write_vectored_to(&mut vbuf).unwrap();
        prop_assert_eq!(vbuf, buf);
    }

    /// Decoding arbitrary garbage never panics — it errors or (by fluke)
    /// parses, but the process survives either way.
    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = FetchRequest::decode(&bytes);
        let _ = FetchRequest::read_from(&mut Cursor::new(bytes));
    }

    /// Reading a response frame from arbitrary garbage never panics and
    /// never allocates past the payload cap (the bytes on the reader are
    /// far fewer than MAX_PAYLOAD, so an over-cap length header must be
    /// rejected before allocation, not discovered by OOM).
    #[test]
    fn response_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(resp) = FetchResponse::read_from(&mut Cursor::new(&bytes)) {
            prop_assert!(resp.payload.len() <= MAX_PAYLOAD);
            prop_assert!(resp.payload.len() <= bytes.len());
        }
    }

    /// Every truncation of a valid request frame is a clean error, and
    /// every truncation of a valid response frame is a clean error —
    /// in both dialects.
    #[test]
    fn truncations_error_cleanly(
        id in any::<u64>(),
        mof in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1..512),
        cut_frac in 0u8..100,
        v3 in any::<bool>(),
    ) {
        let req = FetchRequest { id, mof, reducer: 1, offset: 0, len: 0, flags: 0 };
        let enc: Vec<u8> = if v3 {
            req.encode_v3().to_vec()
        } else {
            req.encode().to_vec()
        };
        let cut = (enc.len() - 1) * cut_frac as usize / 100;
        prop_assert!(FetchRequest::decode(&enc[..cut]).is_err());
        if cut > 0 {
            prop_assert!(FetchRequest::read_from(&mut Cursor::new(enc[..cut].to_vec())).is_err());
        }

        let resp = if v3 {
            FetchResponse::ok_crc(id, payload.clone(), payload.len() as u64)
        } else {
            FetchResponse::ok(id, payload)
        };
        let mut frame = Vec::new();
        resp.write_to(&mut frame).unwrap();
        let cut = (frame.len() - 1) * cut_frac as usize / 100;
        frame.truncate(cut);
        prop_assert!(FetchResponse::read_from(&mut Cursor::new(frame)).is_err());
    }

    /// Single-bit flips in a request frame either fail the magic check or
    /// decode to a *different* request — corruption is never silently the
    /// same request (headers have no unused bits the decoder ignores).
    /// With the id field this now also covers the pipelining invariant:
    /// a flipped id bit yields a request whose echo will not match the
    /// client's outstanding window.
    #[test]
    fn request_bitflips_never_alias(
        id in any::<u64>(),
        mof in any::<u64>(),
        reducer in any::<u32>(),
        offset in any::<u64>(),
        len in any::<u64>(),
        bit in 0usize..(8 * REQUEST_LEN),
    ) {
        let req = FetchRequest { id, mof, reducer, offset, len, flags: 0 };
        let mut enc = req.encode();
        enc[bit / 8] ^= 1 << (bit % 8);
        match FetchRequest::decode(&enc) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, (req, WireVersion::V2)),
        }
    }

    /// The same property for the v3 frame. A flip can land in the magic
    /// and turn "JBS3" into "JBS2" — the fields then reparse shifted —
    /// so the non-aliasing guarantee is on the (request, version) pair
    /// the decoder reports, never on the request alone.
    #[test]
    fn v3_request_bitflips_never_alias(
        id in any::<u64>(),
        mof in any::<u64>(),
        reducer in any::<u32>(),
        offset in any::<u64>(),
        len in any::<u64>(),
        flags in any::<u8>(),
        bit in 0usize..(8 * REQUEST_LEN_V3),
    ) {
        let req = FetchRequest { id, mof, reducer, offset, len, flags };
        let mut enc = req.encode_v3();
        enc[bit / 8] ^= 1 << (bit % 8);
        match FetchRequest::decode(&enc) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, (req, WireVersion::V3)),
        }
    }

    /// Single-bit flips in a response *header* never alias either: the
    /// decoder rejects the frame, or the decoded (status, id, length)
    /// triple differs from what was sent.
    #[test]
    fn response_header_bitflips_never_alias(
        id in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        bit in 0usize..(8 * 17),
    ) {
        let resp = FetchResponse::ok(id, payload);
        let mut frame = Vec::new();
        resp.write_to(&mut frame).unwrap();
        frame[bit / 8] ^= 1 << (bit % 8);
        match FetchResponse::read_from(&mut Cursor::new(&frame)) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(
                decoded.status != resp.status
                    || decoded.id != resp.id
                    || decoded.payload.len() != resp.payload.len()
            ),
        }
    }

    /// The v3 integrity guarantee the whole PR rests on: EVERY single-bit
    /// flip anywhere in an `OkCrc` frame — header, extension, or payload —
    /// is detected. Either the frame fails structurally, or the carried
    /// checksum no longer matches the payload, or the decoded metadata
    /// visibly differs; a flip can never hand the client silently-wrong
    /// bytes that pass verification.
    #[test]
    fn okcrc_bitflips_always_detected(
        id in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        seg_len in any::<u64>(),
        flip_frac in 0u32..1_000_000,
    ) {
        let resp = FetchResponse::ok_crc(id, payload, seg_len);
        let mut frame = Vec::new();
        resp.write_to(&mut frame).unwrap();
        let bit = (flip_frac as u64 * (frame.len() as u64 * 8) / 1_000_000) as usize;
        frame[bit / 8] ^= 1 << (bit % 8);
        match FetchResponse::read_from(&mut Cursor::new(&frame)) {
            Err(_) => {} // structural rejection
            Ok(decoded) => prop_assert!(
                !decoded.crc_ok()
                    || decoded.status != resp.status
                    || decoded.id != resp.id
                    || decoded.seg_len != resp.seg_len
                    || decoded.payload.len() != resp.payload.len(),
                "bit flip {} survived verification", bit
            ),
        }
    }
}
