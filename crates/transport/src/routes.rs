//! MOF → replica-set routing for the fetch path.
//!
//! The control plane (`jbs-control`) resolves where each MOF's segments
//! live — primary first, then the replicas its pipeline fan-out wrote —
//! and pushes that map here. The transport reads it in two places:
//!
//! * [`crate::sched::FetchScheduler::submit`] *proactively* rewrites an
//!   op aimed at a peer already marked unhealthy (or whose circuit
//!   breaker is open) to the first healthy untried replica, before any
//!   wire traffic;
//! * `fetch_all` *reactively* resubmits a failed op against the next
//!   replica when the failure coincides with a breaker-open or
//!   unhealthy mark — so a supplier killed mid-shuffle costs one
//!   breaker trip, not the job.
//!
//! Both paths trace `failover.redirect`, and both fire **only** behind
//! a health signal: a transient error on a healthy peer stays with that
//! peer's retry budget (`tests/chaos_cluster.rs` pins this ordering).
//!
//! The table is deliberately dumb — no liveness policy, no heartbeat
//! state. The registry owns *why* a peer is unhealthy; this owns only
//! *where else the bytes are*. Its single `routes` lock is a leaf
//! (documented in `crates/xtask/allow.toml`), never held across I/O.

use crate::sync::{lock, Mutex};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::SocketAddr;

#[derive(Default)]
struct RouteState {
    /// MOF id → replica addresses, preference order (primary first).
    replicas: HashMap<u64, Vec<SocketAddr>>,
    /// Peers the control plane currently considers unservable.
    unhealthy: HashSet<SocketAddr>,
}

/// A shared, health-aware MOF location map (see module docs).
pub struct RouteTable {
    routes: Mutex<RouteState>,
}

impl RouteTable {
    /// An empty table: every lookup misses, no peer is unhealthy.
    pub fn new() -> Self {
        RouteTable {
            routes: Mutex::new(RouteState::default()),
        }
    }

    /// Install (or replace) the replica set for `mof`, preference order.
    pub fn set_replicas(&self, mof: u64, addrs: Vec<SocketAddr>) {
        lock(&self.routes).replicas.insert(mof, addrs);
    }

    /// The stored replica set for `mof`, unfiltered (health applied by
    /// [`Self::resolve`] / [`Self::failover_target`]).
    pub fn replicas(&self, mof: u64) -> Vec<SocketAddr> {
        lock(&self.routes)
            .replicas
            .get(&mof)
            .cloned()
            .unwrap_or_default()
    }

    /// Mark a peer unservable. Returns `true` if this call changed the
    /// mark (so callers can trace the transition exactly once).
    pub fn mark_unhealthy(&self, addr: SocketAddr) -> bool {
        lock(&self.routes).unhealthy.insert(addr)
    }

    /// Clear a peer's unhealthy mark (heartbeats resumed). Returns
    /// `true` if the peer was marked.
    pub fn mark_healthy(&self, addr: SocketAddr) -> bool {
        lock(&self.routes).unhealthy.remove(&addr)
    }

    /// Whether the control plane currently marks `addr` unservable.
    pub fn is_unhealthy(&self, addr: SocketAddr) -> bool {
        lock(&self.routes).unhealthy.contains(&addr)
    }

    /// First *healthy* replica for `mof`, in preference order.
    pub fn resolve(&self, mof: u64) -> Option<SocketAddr> {
        let routes = lock(&self.routes);
        routes
            .replicas
            .get(&mof)?
            .iter()
            .find(|a| !routes.unhealthy.contains(a))
            .copied()
    }

    /// First healthy replica for `mof` not already in `tried` — the
    /// next address a failed-over fetch should aim at, or `None` when
    /// the replica set is exhausted and the failure must surface.
    pub fn failover_target(&self, mof: u64, tried: &[SocketAddr]) -> Option<SocketAddr> {
        let routes = lock(&self.routes);
        routes
            .replicas
            .get(&mof)?
            .iter()
            .find(|a| !tried.contains(a) && !routes.unhealthy.contains(a))
            .copied()
    }
}

impl Default for RouteTable {
    fn default() -> Self {
        Self::new()
    }
}

// Manual: the loom build's Mutex has no Debug, and locking inside
// Debug could observe the table mid-update anyway.
impl fmt::Debug for RouteTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouteTable").finish_non_exhaustive()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    #[test]
    fn resolve_prefers_primary_until_marked() {
        let t = RouteTable::new();
        assert_eq!(t.resolve(1), None);
        t.set_replicas(1, vec![addr(7000), addr(7001)]);
        assert_eq!(t.resolve(1), Some(addr(7000)));
        assert!(t.mark_unhealthy(addr(7000)));
        // Idempotent: the second mark reports no transition.
        assert!(!t.mark_unhealthy(addr(7000)));
        assert_eq!(t.resolve(1), Some(addr(7001)));
        assert!(t.mark_healthy(addr(7000)));
        assert_eq!(t.resolve(1), Some(addr(7000)));
    }

    #[test]
    fn failover_skips_tried_and_unhealthy() {
        let t = RouteTable::new();
        t.set_replicas(9, vec![addr(7000), addr(7001), addr(7002)]);
        assert_eq!(t.failover_target(9, &[addr(7000)]), Some(addr(7001)));
        t.mark_unhealthy(addr(7001));
        assert_eq!(t.failover_target(9, &[addr(7000)]), Some(addr(7002)));
        assert_eq!(
            t.failover_target(9, &[addr(7000), addr(7002)]),
            None,
            "replica set exhausted"
        );
        assert_eq!(t.failover_target(404, &[]), None, "unknown mof");
    }

    #[test]
    fn all_replicas_unhealthy_resolves_none() {
        let t = RouteTable::new();
        t.set_replicas(3, vec![addr(7000), addr(7001)]);
        t.mark_unhealthy(addr(7000));
        t.mark_unhealthy(addr(7001));
        assert!(t.is_unhealthy(addr(7000)));
        assert_eq!(t.resolve(3), None);
        assert_eq!(t.replicas(3).len(), 2, "set is retained, only filtered");
    }
}
