//! Typed errors for the real dataplane.
//!
//! Every connect/fetch path in this crate returns [`TransportError`]
//! instead of panicking or leaking raw `io::Error`s. The variant
//! classification is what drives recovery: [`TransportError::is_retryable`]
//! decides whether the [`crate::retry::RetryPolicy`] re-dials and
//! re-issues a request, or surfaces the failure to the merge.

use std::fmt;
use std::io;

/// Result alias for dataplane operations.
pub type Result<T> = std::result::Result<T, TransportError>;

/// A failure on the real dataplane.
#[derive(Debug)]
pub enum TransportError {
    /// Establishing a connection failed (refused, unreachable, or the
    /// dial timed out).
    Connect {
        /// Human-readable dial target.
        target: String,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// A read or write exceeded its deadline.
    Timeout {
        /// Which operation timed out.
        during: &'static str,
    },
    /// The peer dropped the connection mid-exchange (reset, broken
    /// pipe, or an unexpected EOF inside a frame).
    Reset {
        /// Which operation observed the drop.
        during: &'static str,
    },
    /// A frame arrived but failed to decode.
    Corrupt {
        /// What was wrong with the bytes.
        detail: String,
    },
    /// The supplier does not have the requested object.
    NotFound {
        /// What was missing (MOF/reducer, rkey, connection slot, ...).
        what: String,
    },
    /// The peer rejected the request as malformed.
    BadRequest {
        /// The peer's complaint.
        detail: String,
    },
    /// A one-sided read addressed bytes outside the registered region.
    OutOfBounds {
        /// The offending range.
        detail: String,
    },
    /// A fetch of one specific segment failed. `source` is the
    /// underlying failure; the context says *which* (MOF, reducer) on
    /// *which* supplier it hit, so a consolidated `fetch_all` over many
    /// suppliers reports a failure the operator can act on instead of a
    /// bare connection error.
    Segment {
        /// MOF id of the failing fetch.
        mof: u64,
        /// Reducer (partition) number of the failing fetch.
        reducer: u32,
        /// Supplier address the fetch targeted.
        peer: String,
        /// The underlying failure.
        source: Box<TransportError>,
    },
    /// The retry budget ran out; `last` is the final attempt's error.
    RetriesExhausted {
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The error of the last attempt.
        last: Box<TransportError>,
    },
    /// Any other I/O failure.
    Io {
        /// Which operation failed.
        during: &'static str,
        /// The underlying I/O failure.
        source: io::Error,
    },
}

impl TransportError {
    /// Classify an `io::Error` observed `during` some operation into
    /// the transport taxonomy.
    pub fn from_io(during: &'static str, e: io::Error) -> Self {
        match e.kind() {
            // A blocking socket with a read/write timeout surfaces the
            // deadline as WouldBlock on Unix and TimedOut on Windows.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                TransportError::Timeout { during }
            }
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof => TransportError::Reset { during },
            io::ErrorKind::InvalidData => TransportError::Corrupt {
                detail: e.to_string(),
            },
            _ => TransportError::Io { during, source: e },
        }
    }

    /// Whether a retry with a fresh connection can plausibly succeed.
    ///
    /// Transient network failures (dial errors, timeouts, resets,
    /// corrupt frames, generic I/O) are retryable; semantic failures
    /// (missing segment, malformed request, out-of-bounds read) and an
    /// already-exhausted budget are not. Segment context is transparent:
    /// it classifies as whatever it wraps.
    pub fn is_retryable(&self) -> bool {
        match self {
            TransportError::Segment { source, .. } => source.is_retryable(),
            _ => matches!(
                self,
                TransportError::Connect { .. }
                    | TransportError::Timeout { .. }
                    | TransportError::Reset { .. }
                    | TransportError::Corrupt { .. }
                    | TransportError::Io { .. }
            ),
        }
    }

    /// Whether this is (or was last caused by) a timeout.
    pub fn is_timeout(&self) -> bool {
        match self {
            TransportError::Timeout { .. } => true,
            TransportError::RetriesExhausted { last, .. } => last.is_timeout(),
            TransportError::Segment { source, .. } => source.is_timeout(),
            _ => false,
        }
    }

    /// A structural copy of this error, for fanning one connection-level
    /// failure out to every in-flight operation it killed. `io::Error`
    /// sources are flattened to their (kind, message) pair — the OS
    /// payload is not cloneable, the classification is.
    pub fn duplicate(&self) -> TransportError {
        match self {
            TransportError::Connect { target, source } => TransportError::Connect {
                target: target.clone(),
                source: io::Error::new(source.kind(), source.to_string()),
            },
            TransportError::Timeout { during } => TransportError::Timeout { during },
            TransportError::Reset { during } => TransportError::Reset { during },
            TransportError::Corrupt { detail } => TransportError::Corrupt {
                detail: detail.clone(),
            },
            TransportError::NotFound { what } => TransportError::NotFound { what: what.clone() },
            TransportError::BadRequest { detail } => TransportError::BadRequest {
                detail: detail.clone(),
            },
            TransportError::OutOfBounds { detail } => TransportError::OutOfBounds {
                detail: detail.clone(),
            },
            TransportError::Segment {
                mof,
                reducer,
                peer,
                source,
            } => TransportError::Segment {
                mof: *mof,
                reducer: *reducer,
                peer: peer.clone(),
                source: Box::new(source.duplicate()),
            },
            TransportError::RetriesExhausted { attempts, last } => {
                TransportError::RetriesExhausted {
                    attempts: *attempts,
                    last: Box::new(last.duplicate()),
                }
            }
            TransportError::Io { during, source } => TransportError::Io {
                during,
                source: io::Error::new(source.kind(), source.to_string()),
            },
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Connect { target, source } => {
                write!(f, "connect to {target} failed: {source}")
            }
            TransportError::Timeout { during } => write!(f, "timed out during {during}"),
            TransportError::Reset { during } => {
                write!(f, "connection dropped during {during}")
            }
            TransportError::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
            TransportError::NotFound { what } => write!(f, "not found: {what}"),
            TransportError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            TransportError::OutOfBounds { detail } => {
                write!(f, "out-of-bounds access: {detail}")
            }
            TransportError::Segment {
                mof,
                reducer,
                peer,
                source,
            } => {
                write!(
                    f,
                    "fetch of mof {mof} reducer {reducer} from {peer} failed: {source}"
                )
            }
            TransportError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            TransportError::Io { during, source } => {
                write!(f, "i/o error during {during}: {source}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Connect { source, .. } | TransportError::Io { source, .. } => {
                Some(source)
            }
            TransportError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            TransportError::Segment { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// The `io::ErrorKind` a transport error flattens to. Context wrappers
/// (`Segment`, `RetriesExhausted`) recurse into their cause, so callers
/// matching on kinds still see `TimedOut`/`ConnectionReset` rather than
/// `Other` after the error picked up fetch context on the way up.
fn io_kind(e: &TransportError) -> io::ErrorKind {
    match e {
        TransportError::Connect { .. } => io::ErrorKind::ConnectionRefused,
        TransportError::Timeout { .. } => io::ErrorKind::TimedOut,
        TransportError::Reset { .. } => io::ErrorKind::ConnectionReset,
        TransportError::Corrupt { .. } | TransportError::BadRequest { .. } => {
            io::ErrorKind::InvalidData
        }
        TransportError::NotFound { .. } => io::ErrorKind::NotFound,
        TransportError::OutOfBounds { .. } => io::ErrorKind::InvalidInput,
        TransportError::Segment { source, .. } => io_kind(source),
        TransportError::RetriesExhausted { last, .. } => io_kind(last),
        TransportError::Io { source, .. } => source.kind(),
    }
}

/// Lossy bridge to `io::Error` for io-trait boundaries (e.g. the
/// [`jbs_mapred::levitate::RecordStream`] implementation). The message
/// keeps the full context chain; the kind comes from the root cause.
impl From<TransportError> for io::Error {
    fn from(e: TransportError) -> io::Error {
        io::Error::new(io_kind(&e), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification() {
        let t = TransportError::from_io("read", io::Error::from(io::ErrorKind::WouldBlock));
        assert!(matches!(t, TransportError::Timeout { .. }));
        assert!(t.is_retryable() && t.is_timeout());

        let r = TransportError::from_io("read", io::Error::from(io::ErrorKind::ConnectionReset));
        assert!(matches!(r, TransportError::Reset { .. }));
        assert!(r.is_retryable());

        let c = TransportError::from_io(
            "read",
            io::Error::new(io::ErrorKind::InvalidData, "bad magic"),
        );
        assert!(matches!(c, TransportError::Corrupt { .. }));
    }

    #[test]
    fn semantic_errors_do_not_retry() {
        let nf = TransportError::NotFound {
            what: "mof 7".into(),
        };
        assert!(!nf.is_retryable());
        let bad = TransportError::BadRequest {
            detail: "magic".into(),
        };
        assert!(!bad.is_retryable());
        let exhausted = TransportError::RetriesExhausted {
            attempts: 5,
            last: Box::new(TransportError::Timeout { during: "read" }),
        };
        assert!(!exhausted.is_retryable());
        assert!(exhausted.is_timeout());
    }

    #[test]
    fn io_bridge_keeps_kinds() {
        let e: io::Error = TransportError::NotFound {
            what: "mof 1 reducer 2".into(),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::NotFound);

        let e: io::Error = TransportError::RetriesExhausted {
            attempts: 3,
            last: Box::new(TransportError::Timeout { during: "read" }),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn segment_context_is_transparent() {
        let seg = TransportError::Segment {
            mof: 7,
            reducer: 3,
            peer: "10.0.0.2:9999".into(),
            source: Box::new(TransportError::Reset {
                during: "read response",
            }),
        };
        assert!(seg.is_retryable(), "context must not mask retryability");
        let msg = seg.to_string();
        assert!(msg.contains("mof 7"), "{msg}");
        assert!(msg.contains("reducer 3"), "{msg}");
        assert!(msg.contains("10.0.0.2:9999"), "{msg}");
        let e: io::Error = seg.into();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);

        let terminal = TransportError::Segment {
            mof: 1,
            reducer: 0,
            peer: "x".into(),
            source: Box::new(TransportError::NotFound {
                what: "mof 1".into(),
            }),
        };
        assert!(!terminal.is_retryable());
    }

    #[test]
    fn duplicate_preserves_structure() {
        let e = TransportError::RetriesExhausted {
            attempts: 4,
            last: Box::new(TransportError::Connect {
                target: "host:1".into(),
                source: io::Error::from(io::ErrorKind::ConnectionRefused),
            }),
        };
        let d = e.duplicate();
        assert_eq!(d.to_string(), e.to_string());
        assert!(matches!(
            d,
            TransportError::RetriesExhausted { attempts: 4, .. }
        ));
        assert_eq!(io_kind(&d), io_kind(&e));
    }
}
