//! Typed errors for the real dataplane.
//!
//! Every connect/fetch path in this crate returns [`TransportError`]
//! instead of panicking or leaking raw `io::Error`s. The variant
//! classification is what drives recovery: [`TransportError::is_retryable`]
//! decides whether the [`crate::retry::RetryPolicy`] re-dials and
//! re-issues a request, or surfaces the failure to the merge.

use std::fmt;
use std::io;

/// Result alias for dataplane operations.
pub type Result<T> = std::result::Result<T, TransportError>;

/// A failure on the real dataplane.
#[derive(Debug)]
pub enum TransportError {
    /// Establishing a connection failed (refused, unreachable, or the
    /// dial timed out).
    Connect {
        /// Human-readable dial target.
        target: String,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// A read or write exceeded its deadline.
    Timeout {
        /// Which operation timed out.
        during: &'static str,
    },
    /// The peer dropped the connection mid-exchange (reset, broken
    /// pipe, or an unexpected EOF inside a frame).
    Reset {
        /// Which operation observed the drop.
        during: &'static str,
    },
    /// A frame arrived but failed to decode, or its payload failed the
    /// end-to-end checksum.
    Corrupt {
        /// What was wrong with the bytes.
        detail: String,
    },
    /// The stream ended before the bytes the peer promised arrived —
    /// detected by expected-length accounting against the segment
    /// length a v3 `OkCrc` frame carries, so a truncation landing
    /// exactly on a chunk boundary no longer masquerades as clean EOF.
    Truncated {
        /// Bytes received so far.
        got: u64,
        /// Bytes the segment was declared to hold.
        expected: u64,
    },
    /// The supplier is shedding load (admission control): retry after
    /// the hinted delay.
    Busy {
        /// The supplier's retry-after hint.
        retry_after: std::time::Duration,
    },
    /// The per-peer circuit breaker is open: recent consecutive
    /// failures exceeded the threshold, so requests to this peer fail
    /// fast instead of burning the retry budget. Not retryable — the
    /// breaker itself schedules the half-open probe.
    CircuitOpen {
        /// The peer whose breaker is open.
        peer: String,
    },
    /// The supplier does not have the requested object.
    NotFound {
        /// What was missing (MOF/reducer, rkey, connection slot, ...).
        what: String,
    },
    /// The peer rejected the request as malformed.
    BadRequest {
        /// The peer's complaint.
        detail: String,
    },
    /// A one-sided read addressed bytes outside the registered region.
    OutOfBounds {
        /// The offending range.
        detail: String,
    },
    /// A fetch of one specific segment failed. `source` is the
    /// underlying failure; the context says *which* (MOF, reducer) on
    /// *which* supplier it hit, so a consolidated `fetch_all` over many
    /// suppliers reports a failure the operator can act on instead of a
    /// bare connection error.
    Segment {
        /// MOF id of the failing fetch.
        mof: u64,
        /// Reducer (partition) number of the failing fetch.
        reducer: u32,
        /// Supplier address the fetch targeted.
        peer: String,
        /// The underlying failure.
        source: Box<TransportError>,
    },
    /// The retry budget ran out; `last` is the final attempt's error.
    RetriesExhausted {
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The error of the last attempt.
        last: Box<TransportError>,
    },
    /// Several independent segment fetches failed in one `fetch_all`.
    /// The consolidated report keeps every per-segment failure (each a
    /// [`TransportError::Segment`] with its own peer context) so a
    /// partial outage reads as "these peers failed" instead of one
    /// opaque first-error.
    Partial {
        /// Every failed fetch, in submission order.
        failures: Vec<TransportError>,
    },
    /// Any other I/O failure.
    Io {
        /// Which operation failed.
        during: &'static str,
        /// The underlying I/O failure.
        source: io::Error,
    },
}

impl TransportError {
    /// Classify an `io::Error` observed `during` some operation into
    /// the transport taxonomy.
    pub fn from_io(during: &'static str, e: io::Error) -> Self {
        match e.kind() {
            // A blocking socket with a read/write timeout surfaces the
            // deadline as WouldBlock on Unix and TimedOut on Windows.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                TransportError::Timeout { during }
            }
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof => TransportError::Reset { during },
            io::ErrorKind::InvalidData => TransportError::Corrupt {
                detail: e.to_string(),
            },
            _ => TransportError::Io { during, source: e },
        }
    }

    /// Whether a retry with a fresh connection can plausibly succeed.
    ///
    /// Transient network failures (dial errors, timeouts, resets,
    /// corrupt frames, truncations, overload pushback, generic I/O) are
    /// retryable; semantic failures (missing segment, malformed
    /// request, out-of-bounds read), an open circuit breaker (the
    /// breaker schedules its own probe), and an already-exhausted
    /// budget are not. Segment context is transparent: it classifies as
    /// whatever it wraps.
    pub fn is_retryable(&self) -> bool {
        match self {
            TransportError::Segment { source, .. } => source.is_retryable(),
            _ => matches!(
                self,
                TransportError::Connect { .. }
                    | TransportError::Timeout { .. }
                    | TransportError::Reset { .. }
                    | TransportError::Corrupt { .. }
                    | TransportError::Truncated { .. }
                    | TransportError::Busy { .. }
                    | TransportError::Io { .. }
            ),
        }
    }

    /// Whether this is (or was last caused by) a timeout.
    pub fn is_timeout(&self) -> bool {
        match self {
            TransportError::Timeout { .. } => true,
            TransportError::RetriesExhausted { last, .. } => last.is_timeout(),
            TransportError::Segment { source, .. } => source.is_timeout(),
            _ => false,
        }
    }

    /// A structural copy of this error, for fanning one connection-level
    /// failure out to every in-flight operation it killed. `io::Error`
    /// sources are flattened to their (kind, message) pair — the OS
    /// payload is not cloneable, the classification is.
    pub fn duplicate(&self) -> TransportError {
        match self {
            TransportError::Connect { target, source } => TransportError::Connect {
                target: target.clone(),
                source: io::Error::new(source.kind(), source.to_string()),
            },
            TransportError::Timeout { during } => TransportError::Timeout { during },
            TransportError::Reset { during } => TransportError::Reset { during },
            TransportError::Corrupt { detail } => TransportError::Corrupt {
                detail: detail.clone(),
            },
            TransportError::NotFound { what } => TransportError::NotFound { what: what.clone() },
            TransportError::BadRequest { detail } => TransportError::BadRequest {
                detail: detail.clone(),
            },
            TransportError::OutOfBounds { detail } => TransportError::OutOfBounds {
                detail: detail.clone(),
            },
            TransportError::Truncated { got, expected } => TransportError::Truncated {
                got: *got,
                expected: *expected,
            },
            TransportError::Busy { retry_after } => TransportError::Busy {
                retry_after: *retry_after,
            },
            TransportError::CircuitOpen { peer } => TransportError::CircuitOpen {
                peer: peer.clone(),
            },
            TransportError::Partial { failures } => TransportError::Partial {
                failures: failures.iter().map(TransportError::duplicate).collect(),
            },
            TransportError::Segment {
                mof,
                reducer,
                peer,
                source,
            } => TransportError::Segment {
                mof: *mof,
                reducer: *reducer,
                peer: peer.clone(),
                source: Box::new(source.duplicate()),
            },
            TransportError::RetriesExhausted { attempts, last } => {
                TransportError::RetriesExhausted {
                    attempts: *attempts,
                    last: Box::new(last.duplicate()),
                }
            }
            TransportError::Io { during, source } => TransportError::Io {
                during,
                source: io::Error::new(source.kind(), source.to_string()),
            },
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Connect { target, source } => {
                write!(f, "connect to {target} failed: {source}")
            }
            TransportError::Timeout { during } => write!(f, "timed out during {during}"),
            TransportError::Reset { during } => {
                write!(f, "connection dropped during {during}")
            }
            TransportError::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
            TransportError::NotFound { what } => write!(f, "not found: {what}"),
            TransportError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            TransportError::OutOfBounds { detail } => {
                write!(f, "out-of-bounds access: {detail}")
            }
            TransportError::Truncated { got, expected } => {
                write!(
                    f,
                    "segment truncated: got {got} of {expected} expected bytes"
                )
            }
            TransportError::Busy { retry_after } => {
                write!(
                    f,
                    "supplier busy; retry after {} ms",
                    retry_after.as_millis()
                )
            }
            TransportError::CircuitOpen { peer } => {
                write!(f, "circuit breaker open for {peer}; failing fast")
            }
            TransportError::Partial { failures } => {
                write!(f, "{} segment fetches failed: [", failures.len())?;
                for (i, e) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            TransportError::Segment {
                mof,
                reducer,
                peer,
                source,
            } => {
                write!(
                    f,
                    "fetch of mof {mof} reducer {reducer} from {peer} failed: {source}"
                )
            }
            TransportError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            TransportError::Io { during, source } => {
                write!(f, "i/o error during {during}: {source}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Connect { source, .. } | TransportError::Io { source, .. } => {
                Some(source)
            }
            TransportError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            TransportError::Segment { source, .. } => Some(source.as_ref()),
            TransportError::Partial { failures } => failures
                .first()
                .map(|e| e as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

/// The `io::ErrorKind` a transport error flattens to. Context wrappers
/// (`Segment`, `RetriesExhausted`) recurse into their cause, so callers
/// matching on kinds still see `TimedOut`/`ConnectionReset` rather than
/// `Other` after the error picked up fetch context on the way up.
fn io_kind(e: &TransportError) -> io::ErrorKind {
    match e {
        TransportError::Connect { .. } => io::ErrorKind::ConnectionRefused,
        TransportError::Timeout { .. } => io::ErrorKind::TimedOut,
        TransportError::Reset { .. } => io::ErrorKind::ConnectionReset,
        TransportError::Corrupt { .. } | TransportError::BadRequest { .. } => {
            io::ErrorKind::InvalidData
        }
        TransportError::NotFound { .. } => io::ErrorKind::NotFound,
        TransportError::OutOfBounds { .. } => io::ErrorKind::InvalidInput,
        TransportError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
        // "Try again later"; Busy is normally absorbed by the retry
        // loop long before any io::Error bridge sees it.
        TransportError::Busy { .. } => io::ErrorKind::WouldBlock,
        TransportError::CircuitOpen { .. } => io::ErrorKind::ConnectionRefused,
        TransportError::Partial { failures } => failures
            .first()
            .map(io_kind)
            .unwrap_or(io::ErrorKind::Other),
        TransportError::Segment { source, .. } => io_kind(source),
        TransportError::RetriesExhausted { last, .. } => io_kind(last),
        TransportError::Io { source, .. } => source.kind(),
    }
}

/// Lossy bridge to `io::Error` for io-trait boundaries (e.g. the
/// [`jbs_mapred::levitate::RecordStream`] implementation). The message
/// keeps the full context chain; the kind comes from the root cause.
impl From<TransportError> for io::Error {
    fn from(e: TransportError) -> io::Error {
        io::Error::new(io_kind(&e), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification() {
        let t = TransportError::from_io("read", io::Error::from(io::ErrorKind::WouldBlock));
        assert!(matches!(t, TransportError::Timeout { .. }));
        assert!(t.is_retryable() && t.is_timeout());

        let r = TransportError::from_io("read", io::Error::from(io::ErrorKind::ConnectionReset));
        assert!(matches!(r, TransportError::Reset { .. }));
        assert!(r.is_retryable());

        let c = TransportError::from_io(
            "read",
            io::Error::new(io::ErrorKind::InvalidData, "bad magic"),
        );
        assert!(matches!(c, TransportError::Corrupt { .. }));
    }

    #[test]
    fn semantic_errors_do_not_retry() {
        let nf = TransportError::NotFound {
            what: "mof 7".into(),
        };
        assert!(!nf.is_retryable());
        let bad = TransportError::BadRequest {
            detail: "magic".into(),
        };
        assert!(!bad.is_retryable());
        let exhausted = TransportError::RetriesExhausted {
            attempts: 5,
            last: Box::new(TransportError::Timeout { during: "read" }),
        };
        assert!(!exhausted.is_retryable());
        assert!(exhausted.is_timeout());
    }

    #[test]
    fn io_bridge_keeps_kinds() {
        let e: io::Error = TransportError::NotFound {
            what: "mof 1 reducer 2".into(),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::NotFound);

        let e: io::Error = TransportError::RetriesExhausted {
            attempts: 3,
            last: Box::new(TransportError::Timeout { during: "read" }),
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn segment_context_is_transparent() {
        let seg = TransportError::Segment {
            mof: 7,
            reducer: 3,
            peer: "10.0.0.2:9999".into(),
            source: Box::new(TransportError::Reset {
                during: "read response",
            }),
        };
        assert!(seg.is_retryable(), "context must not mask retryability");
        let msg = seg.to_string();
        assert!(msg.contains("mof 7"), "{msg}");
        assert!(msg.contains("reducer 3"), "{msg}");
        assert!(msg.contains("10.0.0.2:9999"), "{msg}");
        let e: io::Error = seg.into();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);

        let terminal = TransportError::Segment {
            mof: 1,
            reducer: 0,
            peer: "x".into(),
            source: Box::new(TransportError::NotFound {
                what: "mof 1".into(),
            }),
        };
        assert!(!terminal.is_retryable());
    }

    #[test]
    fn robustness_variants_classify() {
        let busy = TransportError::Busy {
            retry_after: std::time::Duration::from_millis(50),
        };
        assert!(busy.is_retryable(), "busy is explicit retry pushback");
        assert!(!busy.is_timeout());
        assert!(busy.to_string().contains("50 ms"));

        let trunc = TransportError::Truncated {
            got: 100,
            expected: 256,
        };
        assert!(trunc.is_retryable());
        let msg = trunc.to_string();
        assert!(msg.contains("100") && msg.contains("256"), "{msg}");
        let e: io::Error = trunc.into();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);

        let open = TransportError::CircuitOpen {
            peer: "10.0.0.9:4242".into(),
        };
        assert!(!open.is_retryable(), "breaker schedules its own probes");
        assert!(open.to_string().contains("10.0.0.9:4242"));

        // Segment context stays transparent over the new variants.
        let seg = TransportError::Segment {
            mof: 1,
            reducer: 2,
            peer: "p".into(),
            source: Box::new(TransportError::Busy {
                retry_after: std::time::Duration::ZERO,
            }),
        };
        assert!(seg.is_retryable());
    }

    #[test]
    fn partial_reports_every_failure() {
        let seg = |mof: u64, peer: &str| TransportError::Segment {
            mof,
            reducer: 0,
            peer: peer.into(),
            source: Box::new(TransportError::Reset { during: "read" }),
        };
        let partial = TransportError::Partial {
            failures: vec![seg(3, "hostA:1"), seg(9, "hostB:2")],
        };
        assert!(!partial.is_retryable());
        let msg = partial.to_string();
        assert!(msg.contains("2 segment fetches failed"), "{msg}");
        assert!(msg.contains("hostA:1") && msg.contains("hostB:2"), "{msg}");
        assert!(msg.contains("mof 3") && msg.contains("mof 9"), "{msg}");
        let d = partial.duplicate();
        assert_eq!(d.to_string(), msg);
        let e: io::Error = partial.into();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn duplicate_preserves_structure() {
        let e = TransportError::RetriesExhausted {
            attempts: 4,
            last: Box::new(TransportError::Connect {
                target: "host:1".into(),
                source: io::Error::from(io::ErrorKind::ConnectionRefused),
            }),
        };
        let d = e.duplicate();
        assert_eq!(d.to_string(), e.to_string());
        assert!(matches!(
            d,
            TransportError::RetriesExhausted { attempts: 4, .. }
        ));
        assert_eq!(io_kind(&d), io_kind(&e));
    }
}
