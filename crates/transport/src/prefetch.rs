//! The MOFSupplier's disk-prefetch queue: stage requests grouped by MOF,
//! ordered by segment offset within a group, served round-robin across
//! groups (the paper's Fig. 5 discipline).
//!
//! Grouping by MOF turns interleaved chunk traffic from many reducers
//! into long sequential runs per file; offset order within a group keeps
//! each run monotonic; round-robin across groups keeps one hot MOF from
//! starving the others. The queue itself is a passive kernel — the
//! server owns the single disk thread that pops from it (see
//! [`crate::server`]), and connection threads push:
//!
//! * **synchronous jobs** carry a reply channel; the connection thread
//!   blocks on it because the client is waiting for these exact bytes
//!   (a DataCache miss);
//! * **asynchronous jobs** have no reply; they are the run-ahead reads
//!   queued from the hit path so the disk works *while* the network
//!   transmits already-staged bytes.
//!
//! Locking: the single `jobs` mutex is held only to push or pop one job
//! — never across disk I/O or a reply send. In the documented order it
//! sits before `store` (the disk thread pops, then reads the store).

use crate::sync::{lock, wait, Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::sync::mpsc;

/// What the disk thread sends back on a synchronous job's reply channel:
/// the served payload, `None` for an unknown MOF/reducer, or the store's
/// I/O error.
pub(crate) type StageReply = io::Result<Option<Vec<u8>>>;

/// Who (if anyone) is waiting for a job's bytes, and how to reach them.
pub(crate) enum Reply {
    /// Pure run-ahead: stage only, nobody waits.
    None,
    /// Threaded miss path: the connection thread blocks on this channel
    /// for exactly these bytes.
    Channel(mpsc::Sender<StageReply>),
    /// Reactor path: nobody blocks. The disk thread builds the complete
    /// response frame and delivers it to the connection's reactor
    /// completion queue (see [`crate::reactor::JobTicket`]), then wakes
    /// the reactor's poll loop.
    Reactor(crate::reactor::JobTicket),
}

impl std::fmt::Debug for Reply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reply::None => f.write_str("None"),
            Reply::Channel(_) => f.write_str("Channel"),
            Reply::Reactor(t) => write!(f, "Reactor(seq={})", t.seq),
        }
    }
}

/// One stage request.
#[derive(Debug)]
pub(crate) struct StageJob {
    /// MOF id (the grouping key).
    pub(crate) mof: u64,
    /// Reducer (partition) number.
    pub(crate) reducer: u32,
    /// Absolute segment offset the read-ahead starts at.
    pub(crate) offset: u64,
    /// Bytes the waiting request wants served back (0 for pure
    /// run-ahead jobs, which only stage).
    pub(crate) want: u64,
    /// Who is waiting for the bytes, if anyone.
    pub(crate) reply: Reply,
}

/// Result of a pop.
pub(crate) enum Pop<T> {
    /// The next job under the round-robin discipline.
    Item(T),
    /// Nothing queued right now; the queue is still open.
    Empty,
    /// The queue was closed; no job will ever appear again.
    Closed,
}

struct GroupedJobs {
    /// Per-MOF queues, each kept in ascending-offset order.
    groups: BTreeMap<u64, VecDeque<StageJob>>,
    /// Round-robin rotation of group keys with pending jobs.
    rotation: VecDeque<u64>,
    closed: bool,
    len: usize,
    peak: usize,
}

/// The grouped, round-robin-served prefetch queue.
pub(crate) struct PrefetchQueue {
    jobs: Mutex<GroupedJobs>,
    /// Wakes blocked [`Self::pop_wait`] callers on push and close, so a
    /// disk-worker pool can sleep on the queue itself without an
    /// external tick channel.
    cv: Condvar,
}

impl PrefetchQueue {
    /// An empty, open queue.
    pub(crate) fn new() -> Self {
        PrefetchQueue {
            jobs: Mutex::new(GroupedJobs {
                groups: BTreeMap::new(),
                rotation: VecDeque::new(),
                closed: false,
                len: 0,
                peak: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queue a job into its MOF group at its offset-ordered position.
    /// Returns the job back if the queue is already closed (the caller
    /// fails its reply instead of losing it silently).
    pub(crate) fn push(&self, job: StageJob) -> Result<(), StageJob> {
        let mut jobs = lock(&self.jobs);
        if jobs.closed {
            return Err(job);
        }
        let mof = job.mof;
        let first_for_mof = {
            let group = jobs.groups.entry(mof).or_default();
            let first = group.is_empty();
            // Ascending segment offset within the group: the disk sees
            // each MOF as a monotonic sequential run.
            let at = group.partition_point(|j| j.offset <= job.offset);
            group.insert(at, job);
            first
        };
        if first_for_mof {
            jobs.rotation.push_back(mof);
        }
        jobs.len += 1;
        jobs.peak = jobs.peak.max(jobs.len);
        self.cv.notify_one();
        Ok(())
    }

    /// Take the next job: the head of the next group in the round-robin
    /// rotation. A group with remaining jobs goes to the rotation's
    /// back, so MOFs are served fairly rather than drained one by one.
    /// (Production pops through [`Self::pop_wait`]; the non-blocking
    /// form keeps the discipline's unit tests deterministic.)
    #[cfg(test)]
    pub(crate) fn try_pop(&self) -> Pop<StageJob> {
        Self::pop_next(&mut lock(&self.jobs))
    }

    /// [`Self::try_pop`], but block on the queue's condvar while it is
    /// empty: returns `Pop::Item` or `Pop::Closed`, never `Pop::Empty`.
    /// The disk-worker pool parks here between jobs.
    pub(crate) fn pop_wait(&self) -> Pop<StageJob> {
        let mut jobs = lock(&self.jobs);
        loop {
            match Self::pop_next(&mut jobs) {
                Pop::Empty => jobs = wait(&self.cv, jobs),
                done => return done,
            }
        }
    }

    fn pop_next(jobs: &mut GroupedJobs) -> Pop<StageJob> {
        match jobs.rotation.pop_front() {
            Some(mof) => {
                let (job, left) = match jobs.groups.get_mut(&mof) {
                    Some(group) => (group.pop_front(), group.len()),
                    None => (None, 0),
                };
                if left > 0 {
                    jobs.rotation.push_back(mof);
                } else {
                    jobs.groups.remove(&mof);
                }
                match job {
                    Some(job) => {
                        jobs.len = jobs.len.saturating_sub(1);
                        Pop::Item(job)
                    }
                    // A rotation key without jobs cannot happen (keys are
                    // enqueued only with their first job), but degrade to
                    // Empty rather than trusting the invariant with I/O.
                    None => Pop::Empty,
                }
            }
            None if jobs.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }

    /// Close the queue and drain everything still pending, so the caller
    /// can fail synchronous jobs' replies. Pushes after this are refused,
    /// and every blocked [`Self::pop_wait`] wakes to see `Pop::Closed`.
    pub(crate) fn close(&self) -> Vec<StageJob> {
        let mut jobs = lock(&self.jobs);
        jobs.closed = true;
        jobs.rotation.clear();
        jobs.len = 0;
        let groups = std::mem::take(&mut jobs.groups);
        self.cv.notify_all();
        groups.into_values().flatten().collect()
    }

    /// Jobs currently queued.
    pub(crate) fn len(&self) -> usize {
        lock(&self.jobs).len
    }

    /// High-water mark of [`Self::len`] over the queue's lifetime.
    pub(crate) fn peak(&self) -> usize {
        lock(&self.jobs).peak
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn job(mof: u64, offset: u64) -> StageJob {
        StageJob {
            mof,
            reducer: 0,
            offset,
            want: 0,
            reply: Reply::None,
        }
    }

    fn pop(q: &PrefetchQueue) -> (u64, u64) {
        match q.try_pop() {
            Pop::Item(j) => (j.mof, j.offset),
            Pop::Empty => panic!("queue unexpectedly empty"),
            Pop::Closed => panic!("queue unexpectedly closed"),
        }
    }

    #[test]
    fn round_robin_across_mofs_offset_order_within() {
        let q = PrefetchQueue::new();
        // MOF 1 jobs arrive out of offset order; MOF 2 interleaves.
        q.push(job(1, 200)).unwrap();
        q.push(job(2, 50)).unwrap();
        q.push(job(1, 100)).unwrap();
        q.push(job(2, 150)).unwrap();
        q.push(job(1, 300)).unwrap();
        assert_eq!(q.len(), 5);
        // Rotation starts with MOF 1 (first pushed), then alternates;
        // within each MOF, offsets come out ascending.
        assert_eq!(pop(&q), (1, 100));
        assert_eq!(pop(&q), (2, 50));
        assert_eq!(pop(&q), (1, 200));
        assert_eq!(pop(&q), (2, 150));
        assert_eq!(pop(&q), (1, 300));
        assert!(matches!(q.try_pop(), Pop::Empty));
        assert_eq!(q.peak(), 5);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn one_hot_mof_does_not_starve_others() {
        let q = PrefetchQueue::new();
        for off in 0..8u64 {
            q.push(job(7, off * 100)).unwrap();
        }
        q.push(job(9, 0)).unwrap();
        // The lone MOF-9 job is served second, not ninth.
        assert_eq!(pop(&q).0, 7);
        assert_eq!(pop(&q).0, 9);
    }

    #[test]
    fn close_drains_and_refuses() {
        let q = PrefetchQueue::new();
        q.push(job(1, 0)).unwrap();
        q.push(job(2, 0)).unwrap();
        let drained = q.close();
        assert_eq!(drained.len(), 2);
        assert!(matches!(q.try_pop(), Pop::Closed));
        assert!(q.push(job(3, 0)).is_err(), "closed queue refuses pushes");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn equal_offsets_keep_arrival_order() {
        let q = PrefetchQueue::new();
        let mut a = job(1, 100);
        a.reducer = 1;
        let mut b = job(1, 100);
        b.reducer = 2;
        q.push(a).unwrap();
        q.push(b).unwrap();
        let first = match q.try_pop() {
            Pop::Item(j) => j.reducer,
            _ => panic!(),
        };
        assert_eq!(first, 1, "stable order for equal offsets");
    }
}
