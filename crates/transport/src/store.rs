//! On-disk MOF store: real files in the real MOF/index formats.

use jbs_mapred::merge::{sort_run, Record};
use jbs_mapred::mof::{MofIndex, MofWriter};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory of MOFs, as one node's TaskTracker local storage.
pub struct MofStore {
    dir: PathBuf,
    indexes: HashMap<u64, MofIndex>,
    owns_dir: bool,
}

impl MofStore {
    /// Create a store in a fresh temporary directory.
    pub fn temp() -> io::Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "jbs-mofstore-{}-{}",
            std::process::id(),
            STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        Ok(MofStore {
            dir,
            indexes: HashMap::new(),
            owns_dir: true,
        })
    }

    /// Open (or create) a store in an existing directory.
    pub fn at(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(MofStore {
            dir: dir.to_path_buf(),
            indexes: HashMap::new(),
            owns_dir: false,
        })
    }

    fn data_path(&self, mof: u64) -> PathBuf {
        self.dir.join(format!("file-{mof}.out"))
    }

    fn index_path(&self, mof: u64) -> PathBuf {
        self.dir.join(format!("file-{mof}.out.index"))
    }

    /// Write a MOF from records, partitioning each record with `partition`
    /// into `partitions` sorted segments (exactly what a MapTask's
    /// sort/spill produces). Records within each segment are key-sorted.
    pub fn write_mof<P>(
        &mut self,
        mof: u64,
        records: Vec<Record>,
        partitions: usize,
        partition: P,
    ) -> io::Result<()>
    where
        P: Fn(&[u8]) -> usize,
    {
        let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); partitions];
        for (k, v) in records {
            let p = partition(&k);
            let bucket = buckets.get_mut(p).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("partition {p} out of range (have {partitions})"),
                )
            })?;
            bucket.push((k, v));
        }
        let mut writer = MofWriter::new();
        for bucket in &mut buckets {
            sort_run(bucket);
            writer.begin_segment();
            for (k, v) in bucket.iter() {
                writer.append(k, v);
            }
            writer.end_segment();
        }
        let (data, index) = writer.finish();
        fs::write(self.data_path(mof), &data)?;
        fs::write(self.index_path(mof), index.to_bytes())?;
        self.indexes.insert(mof, index);
        Ok(())
    }

    /// Look up (loading and caching if needed) the index of `mof`.
    pub fn index(&mut self, mof: u64) -> io::Result<&MofIndex> {
        if !self.indexes.contains_key(&mof) {
            let bytes = fs::read(self.index_path(mof))?;
            let index = MofIndex::from_bytes(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            self.indexes.insert(mof, index);
        }
        self.indexes
            .get(&mof)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("index for mof {mof}")))
    }

    /// Read `[offset, offset+len)` of reducer `reducer`'s segment in `mof`
    /// (`len == 0` reads to the segment end). Returns `None` for an
    /// unknown MOF/reducer.
    pub fn read_segment_range(
        &mut self,
        mof: u64,
        reducer: u32,
        offset: u64,
        len: u64,
    ) -> io::Result<Option<Vec<u8>>> {
        let entry = match self.index(mof) {
            Ok(ix) => match ix.entry(reducer as usize) {
                Some(e) => e,
                None => return Ok(None),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if offset >= entry.part_len {
            return Ok(Some(Vec::new()));
        }
        let want = if len == 0 {
            entry.part_len - offset
        } else {
            len.min(entry.part_len - offset)
        };
        use std::io::{Read, Seek, SeekFrom};
        let mut f = fs::File::open(self.data_path(mof))?;
        f.seek(SeekFrom::Start(entry.offset + offset))?;
        let mut buf = vec![0u8; want as usize];
        f.read_exact(&mut buf)?;
        Ok(Some(buf))
    }

    /// MOF ids present in the in-memory index map.
    pub fn mofs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.indexes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for MofStore {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbs_mapred::mof::SegmentReader;

    fn rec(k: &str, v: &str) -> Record {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn write_and_read_back_segments() {
        let mut store = MofStore::temp().unwrap();
        store
            .write_mof(
                0,
                vec![rec("b", "2"), rec("a", "1"), rec("c", "3")],
                2,
                |k| usize::from(k[0] % 2 == 0), // 'b' -> 1, 'a','c' -> 0
            )
            .unwrap();
        let seg0 = store.read_segment_range(0, 0, 0, 0).unwrap().unwrap();
        let recs: Vec<_> = SegmentReader::new(&seg0).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, b"a"); // sorted within the segment
        assert_eq!(recs[1].0, b"c");
        let seg1 = store.read_segment_range(0, 1, 0, 0).unwrap().unwrap();
        assert_eq!(SegmentReader::new(&seg1).count(), 1);
    }

    #[test]
    fn range_reads_are_exact_slices() {
        let mut store = MofStore::temp().unwrap();
        store
            .write_mof(1, vec![rec("key", "0123456789")], 1, |_| 0)
            .unwrap();
        let whole = store.read_segment_range(1, 0, 0, 0).unwrap().unwrap();
        let first = store.read_segment_range(1, 0, 0, 5).unwrap().unwrap();
        let rest = store.read_segment_range(1, 0, 5, 0).unwrap().unwrap();
        assert_eq!(first.len(), 5);
        assert_eq!([first.as_slice(), rest.as_slice()].concat(), whole);
        // Past the end: empty.
        let past = store
            .read_segment_range(1, 0, whole.len() as u64 + 10, 0)
            .unwrap()
            .unwrap();
        assert!(past.is_empty());
    }

    #[test]
    fn unknown_mof_or_reducer_is_none() {
        let mut store = MofStore::temp().unwrap();
        store.write_mof(5, vec![rec("k", "v")], 1, |_| 0).unwrap();
        assert!(store.read_segment_range(99, 0, 0, 0).unwrap().is_none());
        assert!(store.read_segment_range(5, 7, 0, 0).unwrap().is_none());
    }

    #[test]
    fn index_survives_reopen() {
        let mut store = MofStore::temp().unwrap();
        store.write_mof(3, vec![rec("k", "v")], 2, |_| 1).unwrap();
        let dir = store.dir().to_path_buf();
        store.owns_dir = false; // keep the files
        drop(store);
        let mut reopened = MofStore::at(&dir).unwrap();
        let seg = reopened.read_segment_range(3, 1, 0, 0).unwrap().unwrap();
        assert!(SegmentReader::new(&seg).count() == 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn temp_dir_cleanup_on_drop() {
        let store = MofStore::temp().unwrap();
        let dir = store.dir().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }
}
