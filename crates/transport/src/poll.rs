//! Readiness polling over raw fds — the thin unsafe shim under the
//! reactor.
//!
//! The no-deps policy rules out `mio` and the `libc` crate, but std on
//! unix already links the platform libc, so the one syscall the event
//! loop needs is a single hand-declared `extern "C"` away: `poll(2)`.
//! It is chosen over `epoll` deliberately — the supplier's fd set is
//! small (admitted connections are capped by admission control) and
//! rebuilt each iteration from the connection slab anyway, so the
//! O(n) scan poll performs is the same scan the reactor does to find
//! its state machines, without epoll's three extra syscalls of
//! registration bookkeeping or its Linux-only surface.
//!
//! This is the **only** module besides `verbs.rs` allowed to contain
//! `unsafe` (the `cargo xtask analyze` hygiene fence enforces it), and
//! it keeps the surface minimal: one `#[repr(C)]` struct matching the
//! kernel ABI, one EINTR-retrying safe wrapper, and a [`Waker`] built
//! on an ordinary nonblocking `UnixStream` pair so cross-thread wakes
//! need no unsafe at all.

#![allow(unsafe_code)]

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// Readiness flags, matching `<poll.h>` on every platform std supports
/// (the values are identical across Linux, the BSDs, and macOS).
pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;
pub(crate) const POLLERR: i16 = 0x008;
pub(crate) const POLLHUP: i16 = 0x010;
pub(crate) const POLLNVAL: i16 = 0x020;

/// One fd's interest + readiness, layout-compatible with the kernel's
/// `struct pollfd` (three naturally-aligned fields, no padding).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    pub(crate) fd: i32,
    pub(crate) events: i16,
    pub(crate) revents: i16,
}

impl PollFd {
    pub(crate) fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    pub(crate) fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

extern "C" {
    /// `int poll(struct pollfd *fds, nfds_t nfds, int timeout);`
    /// `nfds_t` is `unsigned long` on the platforms std supports.
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Block until at least one fd in `fds` is ready or `timeout_ms`
/// elapses (`-1` blocks indefinitely, `0` polls). Returns the number
/// of entries with nonzero `revents`; retries transparently on EINTR.
pub(crate) fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively-borrowed slice of
        // `#[repr(C)]` structs layout-identical to `struct pollfd`;
        // the kernel reads `fds.len()` entries and writes only the
        // `revents` field of each. The pointer outlives the call and
        // no Rust alias exists while the syscall runs.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Cross-thread wakeup for a poll loop: a nonblocking socketpair whose
/// read end sits in the poll set. [`Waker::wake`] writes one byte (a
/// full pipe means a wake is already pending — dropped by design), and
/// the loop [`Waker::drain`]s after each readiness report so one byte
/// never wakes it twice.
pub(crate) struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    pub(crate) fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd to register with `POLLIN` interest.
    pub(crate) fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Make the owning poll loop's next (or current) `sys_poll` return.
    /// Infallible by contract: a WouldBlock here means the buffer is
    /// full of earlier wake bytes, so the loop is already waking.
    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }

    /// Consume all pending wake bytes. Called by the loop after
    /// readiness; nonblocking, so it returns as soon as the buffer is
    /// empty.
    pub(crate) fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return, // peer closed: nothing more to drain
                Ok(_) => continue,
                Err(_) => return, // WouldBlock (or EINTR): drained enough
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn poll_reports_readable_after_write() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports nothing.
        let n = sys_poll(&mut fds, 0).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
        (&a).write_all(&[7]).expect("write");
        let n = sys_poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable() || fds[0].revents & POLLOUT != 0);
    }

    #[test]
    fn poll_reports_writable_socket() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = sys_poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn poll_reports_hup_on_peer_close() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = sys_poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        // Closed peer surfaces as HUP and/or IN (EOF readable); either
        // way the reactor's `readable()` predicate fires.
        assert!(fds[0].readable());
    }

    #[test]
    fn waker_wakes_and_drains() {
        let w = Waker::new().expect("waker");
        let mut fds = [PollFd::new(w.fd(), POLLIN)];
        assert_eq!(sys_poll(&mut fds, 0).expect("poll"), 0);
        w.wake();
        w.wake(); // coalesces: both bytes drain in one pass
        assert_eq!(sys_poll(&mut fds, 1000).expect("poll"), 1);
        assert!(fds[0].readable());
        w.drain();
        fds[0].revents = 0;
        assert_eq!(
            sys_poll(&mut fds, 0).expect("poll"),
            0,
            "drained waker is quiet"
        );
    }

    #[test]
    fn waker_wake_from_other_thread() {
        let w = std::sync::Arc::new(Waker::new().expect("waker"));
        let w2 = std::sync::Arc::clone(&w);
        let h = std::thread::spawn(move || w2.wake());
        let mut fds = [PollFd::new(w.fd(), POLLIN)];
        let n = sys_poll(&mut fds, 5000).expect("poll");
        assert_eq!(n, 1);
        h.join().expect("waker thread panicked");
    }
}
