//! A reusable byte-buffer pool for the dataplane hot path.
//!
//! Every chunk served by the supplier used to allocate a fresh `Vec<u8>`
//! (copy out of the staged range, hand to the frame writer, drop). At
//! 128 KB per chunk and thousands of chunks per shuffle that is real
//! allocator pressure on the serving threads. [`BufPool`] recycles those
//! vectors: a bounded free list of cleared buffers, LIFO so the hottest
//! (cache-warm, fully grown) buffer is reused first.
//!
//! Correctness over cleverness: a buffer is **cleared before it is
//! pooled**, so `get` can never observe a previous payload's bytes —
//! the recycle-after-send race is modeled under loom below.
//!
//! Locking: the single `bufs` mutex is held only to pop or push one
//! `Vec` — never across I/O, staging, or another lock. In the documented
//! order it sits after `staged` (the serve path hits the stage cache and
//! then recycles buffers) and before `stats`.

use crate::sync::{lock, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing pool effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// `get` calls served from the free list.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back into the pool.
    pub returns: u64,
    /// Buffers dropped because the pool was full (or not worth keeping).
    pub dropped: u64,
}

impl BufPoolStats {
    /// Fraction of `get` calls served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LIFO free list of cleared `Vec<u8>` buffers.
pub(crate) struct BufPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    dropped: AtomicU64,
    /// Handout/recycle instants (`buf.get`/`buf.put`); disabled by
    /// default — the loom models construct via [`BufPool::new`] so the
    /// model checker never sees the recorder's (std) mutex.
    trace: jbs_obs::Trace,
}

impl BufPool {
    /// A pool holding at most `cap` idle buffers, tracing disabled.
    /// Production constructs via [`BufPool::with_trace`]; this is the
    /// entry point the unit tests and loom models use.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(cap: usize) -> Self {
        Self::with_trace(cap, jbs_obs::Trace::disabled())
    }

    /// A pool that records `buf.get`/`buf.put` instants to `trace`.
    pub(crate) fn with_trace(cap: usize, trace: jbs_obs::Trace) -> Self {
        BufPool {
            bufs: Mutex::new(Vec::new()),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            trace,
        }
    }

    /// An empty buffer — recycled if one is pooled, freshly allocated
    /// otherwise. The returned buffer is always empty (never stale).
    pub(crate) fn get(&self) -> Vec<u8> {
        let recycled = lock(&self.bufs).pop();
        match recycled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.trace
                    .instant("buf.get", jbs_obs::Entity::pool(0), 1, buf.capacity() as u64);
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.trace
                    .instant("buf.get", jbs_obs::Entity::pool(0), 0, 0);
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool. Cleared here — before it becomes
    /// visible to any `get` — so pooled bytes can never leak across
    /// uses. Buffers that never grew carry no capacity worth keeping.
    pub(crate) fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.trace
                .instant("buf.put", jbs_obs::Entity::pool(0), 0, 0);
            return;
        }
        let cap_bytes = buf.capacity() as u64;
        let mut bufs = lock(&self.bufs);
        if bufs.len() < self.cap {
            bufs.push(buf);
            drop(bufs);
            self.returns.fetch_add(1, Ordering::Relaxed);
            self.trace
                .instant("buf.put", jbs_obs::Entity::pool(0), 1, cap_bytes);
        } else {
            drop(bufs);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.trace
                .instant("buf.put", jbs_obs::Entity::pool(0), 0, cap_bytes);
        }
    }

    /// Copy out the counters.
    pub(crate) fn stats(&self) -> BufPoolStats {
        BufPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Bounded model checks of the pool. Build and run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use std::sync::Arc;

    /// The recycle-after-send race: one thread returns a buffer still
    /// holding a just-sent payload while another gets a buffer for the
    /// next response. In every interleaving the getter sees an *empty*
    /// buffer — recycled or fresh, never one with stale payload bytes.
    #[test]
    fn loom_recycled_buffer_is_never_stale() {
        loom::model(|| {
            let pool = Arc::new(BufPool::new(4));
            let p2 = Arc::clone(&pool);
            let h = loom::thread::spawn(move || {
                p2.put(vec![0xDE, 0xAD, 0xBE, 0xEF]);
            });
            let got = pool.get();
            assert!(got.is_empty(), "stale bytes leaked: {got:?}");
            if h.join().is_err() {
                panic!("returner panicked");
            }
            // After both, the returned buffer (if not handed out above)
            // is pooled and still empty.
            assert!(pool.get().is_empty());
        });
    }

    /// One pooled buffer, two concurrent getters: the free-listed buffer
    /// is handed out at most once (no double handout), and every get is
    /// accounted as exactly one hit or miss.
    #[test]
    fn loom_no_double_handout() {
        loom::model(|| {
            let pool = Arc::new(BufPool::new(4));
            pool.put(vec![1, 2, 3]); // one recycled buffer with capacity
            let p2 = Arc::clone(&pool);
            let h = loom::thread::spawn(move || p2.get());
            let a = pool.get();
            let b = match h.join() {
                Ok(b) => b,
                Err(_) => panic!("getter panicked"),
            };
            let s = pool.stats();
            assert_eq!(s.hits + s.misses, 2);
            assert!(s.hits <= 1, "one pooled buffer handed out twice");
            // Exactly one of the two gets can carry recycled capacity.
            assert!(a.capacity() == 0 || b.capacity() == 0);
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_capacity() {
        let pool = BufPool::new(2);
        let mut buf = pool.get();
        assert_eq!(pool.stats().misses, 1);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let cap = buf.capacity();
        pool.put(buf);
        let again = pool.get();
        assert!(again.is_empty(), "recycled buffer must be cleared");
        assert_eq!(again.capacity(), cap, "capacity survives recycling");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufPool::new(1);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8)); // over cap: dropped
        let s = pool.stats();
        assert_eq!(s.returns, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn capacityless_buffers_are_not_pooled() {
        let pool = BufPool::new(4);
        pool.put(Vec::new());
        assert_eq!(pool.stats().returns, 0);
        assert_eq!(pool.stats().dropped, 1);
        assert_eq!(pool.get().capacity(), 0);
        assert_eq!(pool.stats().misses, 1);
    }
}
