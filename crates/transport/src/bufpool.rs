//! A reusable byte-buffer pool plus refcounted slab leases for the
//! zero-copy dataplane.
//!
//! Every chunk served by the supplier used to allocate a fresh `Vec<u8>`
//! (copy out of the staged range, hand to the frame writer, drop). At
//! 128 KB per chunk and thousands of chunks per shuffle that is real
//! allocator pressure on the serving threads. [`BufPool`] recycles those
//! vectors: a bounded free list of cleared buffers, LIFO so the hottest
//! (cache-warm, fully grown) buffer is reused first.
//!
//! The event-loop server goes one step further: a staged buffer is
//! wrapped in a [`Lease`] — an `Arc` over the bytes plus a handle back
//! to its pool — and the *same allocation* is pinned by the DataCache
//! and by any in-flight vectored transmit at once. No copy happens
//! between the cache and the socket; when the last lease drops, the
//! buffer returns to the free list. The threaded path keeps its
//! copy-out (`hit_into`) shape, which is exactly the baseline the
//! `copies_per_byte` bench metric compares against.
//!
//! Correctness over cleverness: a buffer is **cleared before it is
//! pooled**, so `get` can never observe a previous payload's bytes —
//! the recycle-after-send and concurrent-lease-drop races are modeled
//! under loom below.
//!
//! Backpressure is observable rather than silent: the pool tracks how
//! many buffers are out (`outstanding`), and a `get` that misses while
//! demand already exceeds the configured slab records a `bufpool_waits`
//! stat and a `pool.exhausted` trace instant. The pool itself never
//! blocks — the signal is for the operator, not the hot path.
//!
//! Locking: the single `bufs` mutex is held only to pop or push one
//! `Vec` — never across I/O, staging, or another lock. In the documented
//! order it sits after `staged` (the serve path hits the stage cache and
//! then recycles buffers) and before `stats`.

use crate::sync::{lock, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing pool effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// `get` calls served from the free list.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back into the pool.
    pub returns: u64,
    /// Buffers dropped because the pool was full (or not worth keeping).
    pub dropped: u64,
    /// `get` misses that struck while the slab was already exhausted
    /// (outstanding ≥ cap): the backpressure signal. The pool never
    /// blocks; this counts how often a caller *would have* waited.
    pub waits: u64,
    /// Buffers currently handed out (gets minus returns-or-drops).
    pub outstanding: u64,
}

impl BufPoolStats {
    /// Fraction of `get` calls served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct PoolInner {
    bufs: Mutex<Vec<Vec<u8>>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    dropped: AtomicU64,
    waits: AtomicU64,
    outstanding: AtomicU64,
    /// Handout/recycle instants (`buf.get`/`buf.put`/`pool.exhausted`);
    /// disabled by default — the loom models construct via
    /// [`BufPool::new`] so the model checker never sees the recorder's
    /// (std) mutex.
    trace: jbs_obs::Trace,
}

/// A bounded LIFO free list of cleared `Vec<u8>` buffers. Cloning
/// clones the *handle*; all clones share one free list, which is what
/// lets a [`Lease`] carry its way home from any thread.
#[derive(Clone)]
pub(crate) struct BufPool {
    inner: Arc<PoolInner>,
}

impl BufPool {
    /// A pool holding at most `cap` idle buffers, tracing disabled.
    /// Production constructs via [`BufPool::with_trace`]; this is the
    /// entry point the unit tests and loom models use.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(cap: usize) -> Self {
        Self::with_trace(cap, jbs_obs::Trace::disabled())
    }

    /// A pool that records `buf.get`/`buf.put` instants to `trace`.
    pub(crate) fn with_trace(cap: usize, trace: jbs_obs::Trace) -> Self {
        BufPool {
            inner: Arc::new(PoolInner {
                bufs: Mutex::new(Vec::new()),
                cap,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                waits: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
                trace,
            }),
        }
    }

    /// An empty buffer — recycled if one is pooled, freshly allocated
    /// otherwise. The returned buffer is always empty (never stale).
    /// A miss while the slab is already fully out records the
    /// exhaustion signal (`waits` stat + `pool.exhausted` instant)
    /// before allocating; the call itself never blocks.
    pub(crate) fn get(&self) -> Vec<u8> {
        let recycled = lock(&self.inner.bufs).pop();
        let out = self.inner.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        match recycled {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .trace
                    .instant("buf.get", jbs_obs::Entity::pool(0), 1, buf.capacity() as u64);
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                if out > self.inner.cap as u64 {
                    self.inner.waits.fetch_add(1, Ordering::Relaxed);
                    self.inner.trace.instant(
                        "pool.exhausted",
                        jbs_obs::Entity::pool(0),
                        out,
                        self.inner.cap as u64,
                    );
                }
                self.inner
                    .trace
                    .instant("buf.get", jbs_obs::Entity::pool(0), 0, 0);
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool. Cleared here — before it becomes
    /// visible to any `get` — so pooled bytes can never leak across
    /// uses. Buffers that never grew carry no capacity worth keeping.
    pub(crate) fn put(&self, mut buf: Vec<u8>) {
        // Saturating: a detached buffer returned by a lease that never
        // came from `get` must not underflow the gauge.
        let _ = self
            .inner
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        buf.clear();
        if buf.capacity() == 0 {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            self.inner
                .trace
                .instant("buf.put", jbs_obs::Entity::pool(0), 0, 0);
            return;
        }
        let cap_bytes = buf.capacity() as u64;
        let mut bufs = lock(&self.inner.bufs);
        if bufs.len() < self.inner.cap {
            bufs.push(buf);
            drop(bufs);
            self.inner.returns.fetch_add(1, Ordering::Relaxed);
            self.inner
                .trace
                .instant("buf.put", jbs_obs::Entity::pool(0), 1, cap_bytes);
        } else {
            drop(bufs);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            self.inner
                .trace
                .instant("buf.put", jbs_obs::Entity::pool(0), 0, cap_bytes);
        }
    }

    /// Wrap `buf` in a refcounted lease over this pool: clones pin the
    /// same allocation, and the last drop returns it to the free list.
    pub(crate) fn lease(&self, buf: Vec<u8>) -> Lease {
        Lease {
            bytes: Some(Arc::new(buf)),
            pool: Some(self.clone()),
        }
    }

    /// Copy out the counters.
    pub(crate) fn stats(&self) -> BufPoolStats {
        BufPoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            returns: self.inner.returns.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            waits: self.inner.waits.load(Ordering::Relaxed),
            outstanding: self.inner.outstanding.load(Ordering::Relaxed),
        }
    }
}

/// A refcounted pin over one pooled buffer: the DataCache holds one
/// lease, every in-flight vectored transmit of the same bytes holds
/// another, and the *last* drop recycles the allocation through its
/// [`BufPool`] — zero copies in between. A lease made with
/// [`Lease::detached`] (bytes that never came from a pool, e.g. the
/// hybrid store's memory tier) simply frees on last drop.
///
/// Reclaim is best-effort by design: if two clones race their final
/// drops, `Arc::try_unwrap` can fail in both and the buffer is freed
/// instead of pooled — a missed recycle, never a double return and
/// never a dangling lease (the loom model below pins this down).
pub(crate) struct Lease {
    bytes: Option<Arc<Vec<u8>>>,
    pool: Option<BufPool>,
}

impl Lease {
    /// A lease over bytes that belong to no pool: dropped, not
    /// recycled, when the last clone goes.
    pub(crate) fn detached(buf: Vec<u8>) -> Lease {
        Lease {
            bytes: Some(Arc::new(buf)),
            pool: None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub(crate) fn as_slice(&self) -> &[u8] {
        match &self.bytes {
            Some(b) => b.as_slice(),
            // Unreachable in practice: `bytes` is only taken in Drop.
            None => &[],
        }
    }

    /// Unwrap to the owned buffer if this is the only lease, else copy.
    /// For callers that must hand ownership across an API needing a
    /// `Vec<u8>`; the serve paths themselves never call it (the reactor
    /// copies explicitly on its corrupt-fault path instead).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn into_vec(mut self) -> Vec<u8> {
        match self.bytes.take() {
            Some(arc) => match Arc::try_unwrap(arc) {
                Ok(buf) => buf,
                Err(shared) => shared.as_slice().to_vec(),
            },
            None => Vec::new(),
        }
    }
}

impl Clone for Lease {
    fn clone(&self) -> Self {
        Lease {
            bytes: self.bytes.clone(),
            pool: self.pool.clone(),
        }
    }
}

impl std::ops::Deref for Lease {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("len", &self.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if let Some(arc) = self.bytes.take() {
            if let Ok(buf) = Arc::try_unwrap(arc) {
                if let Some(pool) = &self.pool {
                    pool.put(buf);
                }
            }
        }
    }
}

/// Bounded model checks of the pool. Build and run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    /// The recycle-after-send race: one thread returns a buffer still
    /// holding a just-sent payload while another gets a buffer for the
    /// next response. In every interleaving the getter sees an *empty*
    /// buffer — recycled or fresh, never one with stale payload bytes.
    #[test]
    fn loom_recycled_buffer_is_never_stale() {
        loom::model(|| {
            let pool = BufPool::new(4);
            let p2 = pool.clone();
            let h = loom::thread::spawn(move || {
                p2.put(vec![0xDE, 0xAD, 0xBE, 0xEF]);
            });
            let got = pool.get();
            assert!(got.is_empty(), "stale bytes leaked: {got:?}");
            if h.join().is_err() {
                panic!("returner panicked");
            }
            // After both, the returned buffer (if not handed out above)
            // is pooled and still empty.
            assert!(pool.get().is_empty());
        });
    }

    /// One pooled buffer, two concurrent getters: the free-listed buffer
    /// is handed out at most once (no double handout), and every get is
    /// accounted as exactly one hit or miss.
    #[test]
    fn loom_no_double_handout() {
        loom::model(|| {
            let pool = BufPool::new(4);
            pool.put(vec![1, 2, 3]); // one recycled buffer with capacity
            let p2 = pool.clone();
            let h = loom::thread::spawn(move || p2.get());
            let a = pool.get();
            let b = match h.join() {
                Ok(b) => b,
                Err(_) => panic!("getter panicked"),
            };
            let s = pool.stats();
            assert_eq!(s.hits + s.misses, 2);
            assert!(s.hits <= 1, "one pooled buffer handed out twice");
            // Exactly one of the two gets can carry recycled capacity.
            assert!(a.capacity() == 0 || b.capacity() == 0);
        });
    }

    /// The concurrent last-drop race (satellite model): the DataCache's
    /// lease and an in-flight transmit's clone of it drop on different
    /// threads. In every interleaving the buffer is returned to the
    /// pool **at most once** (`returns + dropped ≤ 1`), and a get after
    /// both drops never sees the payload bytes — eviction racing a
    /// partial-write's pin can lose a recycle, never duplicate one.
    #[test]
    fn loom_concurrent_lease_drop_returns_at_most_once() {
        loom::model(|| {
            let pool = BufPool::new(4);
            let cache_side = pool.lease(vec![9, 9, 9]);
            let xmit_side = cache_side.clone();
            let h = loom::thread::spawn(move || drop(xmit_side));
            drop(cache_side);
            if h.join().is_err() {
                panic!("xmit-side drop panicked");
            }
            let s = pool.stats();
            assert!(
                s.returns + s.dropped <= 1,
                "buffer returned twice: {s:?}"
            );
            assert!(pool.get().is_empty(), "stale payload leaked");
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_capacity() {
        let pool = BufPool::new(2);
        let mut buf = pool.get();
        assert_eq!(pool.stats().misses, 1);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let cap = buf.capacity();
        pool.put(buf);
        let again = pool.get();
        assert!(again.is_empty(), "recycled buffer must be cleared");
        assert_eq!(again.capacity(), cap, "capacity survives recycling");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufPool::new(1);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8)); // over cap: dropped
        let s = pool.stats();
        assert_eq!(s.returns, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn capacityless_buffers_are_not_pooled() {
        let pool = BufPool::new(4);
        pool.put(Vec::new());
        assert_eq!(pool.stats().returns, 0);
        assert_eq!(pool.stats().dropped, 1);
        assert_eq!(pool.get().capacity(), 0);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn exhaustion_is_counted_not_blocking() {
        let trace = jbs_obs::Trace::recording(64);
        let pool = BufPool::with_trace(1, trace.clone());
        let a = pool.get(); // outstanding 1 == cap, free list empty
        let b = pool.get(); // outstanding 2 > cap: exhausted signal
        let s = pool.stats();
        assert_eq!(s.waits, 1, "second get should record a wait");
        assert_eq!(s.outstanding, 2);
        assert_eq!(trace.query().count("pool.exhausted"), 1);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn last_lease_drop_recycles_the_buffer() {
        let pool = BufPool::new(4);
        let mut buf = pool.get();
        buf.extend_from_slice(b"payload");
        let cap = buf.capacity();
        let lease = pool.lease(buf);
        let clone = lease.clone();
        assert_eq!(&lease[..], b"payload");
        drop(lease);
        // A clone still pins the bytes: nothing returned yet.
        assert_eq!(pool.stats().returns, 0);
        assert_eq!(&clone[..], b"payload");
        drop(clone);
        assert_eq!(pool.stats().returns, 1);
        let recycled = pool.get();
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), cap, "same allocation came home");
    }

    #[test]
    fn detached_lease_never_touches_the_pool() {
        let pool = BufPool::new(4);
        let lease = Lease::detached(vec![1, 2, 3]);
        assert_eq!(lease.len(), 3);
        drop(lease);
        assert_eq!(pool.stats().returns, 0);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn into_vec_unwraps_sole_lease_and_copies_shared() {
        let pool = BufPool::new(4);
        let lease = pool.lease(vec![5, 6, 7]);
        let v = lease.into_vec(); // sole lease: no copy, no pool return
        assert_eq!(v, vec![5, 6, 7]);
        assert_eq!(pool.stats().returns, 0);

        let lease = pool.lease(vec![8, 9]);
        let clone = lease.clone();
        let copied = lease.into_vec(); // shared: copies
        assert_eq!(copied, vec![8, 9]);
        assert_eq!(&clone[..], &[8, 9]);
        drop(clone); // last lease: recycles
        assert_eq!(pool.stats().returns, 1);
    }
}
